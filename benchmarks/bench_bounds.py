"""Benchmark gate for the composite lower bound (``combined`` cost).

Runs serial A* twice per instance — guided by the paper's §3.1 bound
(``paper``) and by the composite ``max(paper, load)`` bound
(``combined``, see ``repro/search/costs.py``) — over the §4.1 random
graphs at v ∈ {16, 18, 20}, CCR ∈ {0.1, 1.0, 10.0}, on a 2-PE
fully-connected homogeneous target (the processor-scarce regime where
machine capacity binds; with a PE per task the load bound degenerates,
see ``select_cost``).  Appends one entry to ``BENCH_bounds.json`` at
the repository root.

Measured claims (all deterministic — expansion counts are
machine-independent, so the gate reproduces exactly anywhere):

* **Gate: mean expansion reduction ≥ 2x** over the rows where the
  ``combined`` search proves optimality.  Rows where ``paper`` trips
  the expansion budget while ``combined`` proves count their ratio as
  the conservative lower bound ``budget / combined_expansions``; rows
  where ``combined`` itself trips the budget are excluded (no
  completed search to compare) but still reported.
* **Proven-equal makespans**: wherever both searches prove optimality
  the returned makespans must be exactly equal (§4.1 weights are
  integers, so float equality is well-defined); where only
  ``combined`` proves, its makespan must not exceed ``paper``'s best
  incumbent.
* **Fixed-task-order ablation rows**: A* with
  ``PruningConfig.with_fixed_order()`` vs. the paper's full pruning
  set on one §4.1 instance plus structured layered instances where the
  ready set actually forms a chain, reporting the
  ``fixed_order_skips`` counter and asserting identical makespans.

Wall-clock seconds ride along in every row for the honest trade-off
story: the composite bound pays O(P log P) per evaluation, so on rows
it cannot tighten (CCR 10) it is pure overhead — exactly the paper's
cheap-h argument, now with the capacity bound on the right side of it.

Usage::

    PYTHONPATH=src python benchmarks/bench_bounds.py [--smoke]
        [--budget N] [--out PATH]

``--smoke`` runs a single small instance with a small budget (seconds,
for CI) and skips the ≥ 2x gate — the machinery, report format, and
makespan-equality assertions still execute.  Exits non-zero on any
gate miss.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graph.taskgraph import TaskGraph  # noqa: E402
from repro.search.astar import astar_schedule  # noqa: E402
from repro.search.pruning import PruningConfig  # noqa: E402
from repro.system.processors import ProcessorSystem  # noqa: E402
from repro.util.timing import Budget  # noqa: E402
from repro.workloads.suite import paper_suite  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_bounds.json"

#: Acceptance floor on the mean expansion reduction (combined vs paper).
GATE_MEAN_REDUCTION = 2.0
#: Dual-processor target: the capacity-bound regime (and the small end
#: of the 2-8 PE range the duplicate-free state-space papers sweep).
PES = 2

FULL_SIZES = (16, 18, 20)
FULL_CCRS = (0.1, 1.0, 10.0)
FULL_BUDGET = 500_000

SMOKE_SIZES = (16,)
SMOKE_CCRS = (1.0,)
SMOKE_BUDGET = 50_000


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _measure(graph, system, *, cost, budget, pruning=None):
    t0 = time.perf_counter()
    res = astar_schedule(
        graph, system, cost=cost, pruning=pruning,
        budget=Budget(max_expanded=budget),
    )
    return {
        "makespan": res.length,
        "expanded": res.stats.states_expanded,
        "proven": res.optimal,
        "seconds": round(time.perf_counter() - t0, 3),
        "fixed_order_skips": res.stats.pruning.fixed_order_skips,
    }


def run_cost_rows(sizes, ccrs, budget) -> list[dict]:
    """paper-vs-combined A* over the §4.1 sweep on the 2-PE target."""
    system = ProcessorSystem.fully_connected(PES)
    rows = []
    for size in sizes:
        for ccr in ccrs:
            inst = paper_suite(sizes=(size,), ccrs=(ccr,)).instances[0]
            paper = _measure(inst.graph, system, cost="paper", budget=budget)
            combined = _measure(
                inst.graph, system, cost="combined", budget=budget
            )
            row = {
                "instance": f"v{size}-ccr{ccr}",
                "v": size,
                "ccr": ccr,
                "paper": paper,
                "combined": combined,
            }
            if combined["proven"]:
                # paper's count is exact when proven, else the budget —
                # a conservative lower bound on the true ratio.
                row["ratio"] = round(
                    paper["expanded"] / combined["expanded"], 3
                )
                row["ratio_capped"] = not paper["proven"]
                row["in_gate"] = True
            else:
                row["ratio"] = None
                row["ratio_capped"] = False
                row["in_gate"] = False
            rows.append(row)
    return rows


def _structured_cases() -> list[tuple[str, TaskGraph, ProcessorSystem]]:
    """Deterministic instances whose ready sets form FTO chains."""
    system = ProcessorSystem.fully_connected(PES)
    # Sized so the no-FTO baseline still proves optimality within the
    # full-mode budget (the ratio needs two completed searches).
    independent = TaskGraph(
        [(i * 7) % 11 + 3 for i in range(11)], {}, name="independent-11"
    )
    # Fork-join: one source fanning out to 8 middles joining into one
    # sink; costs patterned so the chain order is non-trivial.
    mids = range(1, 9)
    weights = [4] + [(i * 5) % 9 + 2 for i in mids] + [3]
    edges = {}
    for i in mids:
        edges[(0, i)] = (i * 3) % 7
        edges[(i, 9)] = 6 - (i * 3) % 7
    forkjoin = TaskGraph(weights, edges, name="forkjoin-10")
    return [
        ("independent-11", independent, system),
        ("forkjoin-10", forkjoin, system),
    ]


def run_fto_rows(sizes, ccrs, budget) -> list[dict]:
    """Fixed-task-order ablation: full pruning vs full+FTO, combined
    cost, on structured chains plus the first §4.1 sweep point."""
    cases = _structured_cases()
    inst = paper_suite(sizes=sizes[:1], ccrs=ccrs[:1]).instances[0]
    cases.append((
        f"v{sizes[0]}-ccr{ccrs[0]}", inst.graph,
        ProcessorSystem.fully_connected(PES),
    ))
    rows = []
    for name, graph, system in cases:
        base = _measure(graph, system, cost="combined", budget=budget)
        fto = _measure(
            graph, system, cost="combined", budget=budget,
            pruning=PruningConfig.with_fixed_order(),
        )
        rows.append({
            "instance": name,
            "base": base,
            "fto": fto,
            "fixed_order_skips": fto["fixed_order_skips"],
        })
    return rows


def evaluate(cost_rows, fto_rows, *, smoke: bool) -> list[str]:
    """Gate checks; returns a list of failure messages (empty = pass)."""
    failures: list[str] = []
    for row in cost_rows:
        p, c = row["paper"], row["combined"]
        if p["proven"] and c["proven"] and p["makespan"] != c["makespan"]:
            failures.append(
                f"{row['instance']}: proven makespans differ "
                f"(paper {p['makespan']} != combined {c['makespan']})"
            )
        if c["proven"] and not p["proven"] and c["makespan"] > p["makespan"]:
            failures.append(
                f"{row['instance']}: combined proved {c['makespan']} worse "
                f"than paper's incumbent {p['makespan']}"
            )
    gate_rows = [r for r in cost_rows if r["in_gate"]]
    if not gate_rows:
        failures.append("no instance completed under the combined bound")
        return failures
    mean_reduction = sum(r["ratio"] for r in gate_rows) / len(gate_rows)
    if not smoke and mean_reduction < GATE_MEAN_REDUCTION:
        failures.append(
            f"mean expansion reduction {mean_reduction:.2f}x < "
            f"{GATE_MEAN_REDUCTION}x floor"
        )
    for row in fto_rows:
        if row["base"]["proven"] and row["fto"]["proven"] and (
            row["base"]["makespan"] != row["fto"]["makespan"]
        ):
            failures.append(
                f"{row['instance']}: fixed-task-order changed the optimal "
                f"makespan ({row['base']['makespan']} -> "
                f"{row['fto']['makespan']})"
            )
    if not any(row["fixed_order_skips"] > 0 for row in fto_rows):
        failures.append("fixed-task-order rule never fired on any row")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one small instance, small budget, no 2x gate "
                             "(CI mode)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-search expansion budget")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help="results file (JSON array)")
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    ccrs = SMOKE_CCRS if args.smoke else FULL_CCRS
    budget = args.budget or (SMOKE_BUDGET if args.smoke else FULL_BUDGET)

    cost_rows = run_cost_rows(sizes, ccrs, budget)
    fto_rows = run_fto_rows(sizes, ccrs, budget)
    gate_rows = [r for r in cost_rows if r["in_gate"]]
    mean_reduction = (
        sum(r["ratio"] for r in gate_rows) / len(gate_rows)
        if gate_rows else None
    )
    failures = evaluate(cost_rows, fto_rows, smoke=args.smoke)

    entry = {
        "bench": "bounds",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "smoke": args.smoke,
        "config": {
            "pes": PES, "sizes": list(sizes), "ccrs": list(ccrs),
            "budget": budget,
        },
        "rows": cost_rows,
        "fto_rows": fto_rows,
        "mean_reduction": (
            round(mean_reduction, 3) if mean_reduction is not None else None
        ),
        "gate": GATE_MEAN_REDUCTION,
        "pass": not failures,
    }
    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    for row in cost_rows:
        p, c = row["paper"], row["combined"]
        ratio = (
            f"{row['ratio']:>7.2f}x{'+' if row['ratio_capped'] else ' '}"
            if row["ratio"] is not None else "      --"
        )
        print(
            f"{row['instance']:>14}: paper {p['expanded']:>8,} exp "
            f"({p['seconds']:>7.2f}s, {'proven' if p['proven'] else 'budget'})"
            f"  combined {c['expanded']:>8,} exp "
            f"({c['seconds']:>7.2f}s, {'proven' if c['proven'] else 'budget'})"
            f"  reduction {ratio}"
        )
    for row in fto_rows:
        b, f = row["base"], row["fto"]
        print(
            f"{row['instance']:>14}: fto {b['expanded']:>8,} -> "
            f"{f['expanded']:>8,} exp, {row['fixed_order_skips']:,} skips, "
            f"makespan {b['makespan']:g} -> {f['makespan']:g}"
        )
    if mean_reduction is not None:
        print(f"mean expansion reduction: {mean_reduction:.2f}x "
              f"(gate {GATE_MEAN_REDUCTION}x{', smoke: not enforced' if args.smoke else ''})")
    print(f"appended entry #{len(existing)} to {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
