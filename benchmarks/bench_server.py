"""Benchmark: solver-daemon sustained throughput, cold vs. warm.

Drives a real :class:`~repro.service.server.SolverServer` (background
thread, real worker-process pool, real HTTP) with a **200-request mixed
stream**: requests drawn with repetition from a pool of unique
§4.1-style instances, arriving in **duplicate bursts** (each unique's
repeats cluster in time — the thundering-herd shape that makes
in-flight dedupe matter, and the traffic the daemon exists for).  It
measures:

* **cold** — fresh server, empty cache: unique instances run the
  portfolio on the persistent pool; repeats hit the warming cache or
  dedupe onto in-flight twins;
* **warm** — the same 200 requests again: everything is answered from
  the result cache (the ≥ 10x acceptance gate);
* **per-request dispatch** — the same cold stream under the same
  8-way client concurrency, served the naive way: every request is its
  own ``run_batch`` call on its own transient worker pool (the
  per-call pool lifecycle a one-shot invocation pays on every request;
  the daemon pays it once), with a shared in-memory result cache but
  **no in-flight dedupe** — duplicate requests that arrive while their
  twin is still being solved are solved again.  The daemon's cold
  throughput must beat this (the persistent-pool acceptance gate); the
  report also records how many redundant solves the naive side paid.
  An informational sequential in-process variant (no pool, no
  concurrency) is recorded as the single-core floor.

Run directly for a human-readable table (also appends an entry to
``BENCH_server.json`` at the repo root and exits non-zero when either
gate fails, making it usable as a CI perf gate)::

    PYTHONPATH=src python benchmarks/bench_server.py [--requests 200]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.service.batch import BatchItem, run_batch
from repro.service.cache import ResultCache
from repro.service.client import ServerClient
from repro.service.server import SolverServer
from repro.system.processors import ProcessorSystem

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_server.json"

#: Acceptance gates (ISSUE 4): warm sustained throughput >= 10x cold,
#: and persistent-pool serving beats per-request run_batch dispatch.
WARM_SPEEDUP_FLOOR = 10.0

#: The mixed-suite shape: unique (v, ccr, seed) coordinates requests
#: are drawn from, spanning the paper's CCR decades.
UNIQUE_COORDS = [
    (v, ccr, seed)
    for v in (9, 10, 11, 12)
    for ccr in (0.1, 1.0, 10.0)
    for seed in (1, 2)
]
DEADLINE_SECONDS = 5.0
MAX_EXPANSIONS = 50_000
CLIENT_THREADS = 8


def build_stream(requests: int, *, seed: int = 73) -> list[BatchItem]:
    """The mixed stream: unique instances repeated in duplicate bursts.

    Every unique appears at least once; the remaining requests are
    distributed at random.  Each unique's occurrences are contiguous
    (a burst) and the bursts are shuffled — duplicate arrivals cluster
    in time, so under concurrent clients the duplicates of a burst are
    in flight *together*.  A deduping server solves each burst once; a
    per-request dispatcher re-solves whatever lands before its twin's
    result is cached.
    """
    uniques = [
        BatchItem(
            name=f"v{v}-ccr{ccr}-s{s}",
            graph=paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=s)),
            system=ProcessorSystem.fully_connected(4),
        )
        for v, ccr, s in UNIQUE_COORDS
    ]
    rng = random.Random(seed)
    counts = {item.name: 1 for item in uniques}
    for _ in range(requests - len(uniques)):
        counts[rng.choice(uniques).name] += 1
    bursts = [[item] * counts[item.name] for item in uniques]
    rng.shuffle(bursts)
    return [item for burst in bursts for item in burst][:requests]


def _serve_stream(
    client: ServerClient, stream: list[BatchItem], threads: int
) -> dict[str, float]:
    """Push the stream through the daemon from ``threads`` clients."""
    index = {"next": 0}
    lock = threading.Lock()
    failures: list[str] = []

    def worker() -> None:
        while True:
            with lock:
                i = index["next"]
                if i >= len(stream):
                    return
                index["next"] = i + 1
            item = stream[i]
            try:
                client.solve(
                    item.graph, item.system, name=item.name,
                    deadline=DEADLINE_SECONDS, max_expansions=MAX_EXPANSIONS,
                )
            except Exception as exc:  # noqa: BLE001 - a failed request
                # must fail the gate, not silently kill this thread.
                with lock:
                    failures.append(f"{item.name}: {exc}")

    t0 = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - t0
    if failures:
        raise RuntimeError(f"{len(failures)} requests failed: {failures[:3]}")
    return {
        "requests": len(stream),
        "wall_seconds": wall,
        "requests_per_second": len(stream) / wall,
    }


def _quantile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1)))
    return sorted_vals[idx]


def _soak_with_worker_kills(
    client: ServerClient, server: SolverServer, stream: list[BatchItem],
    threads: int, *, kill_interval: float = 1.0,
) -> dict[str, object]:
    """The fault-injection soak: drive the stream while a killer thread
    SIGKILLs a live pool worker every ``kill_interval`` seconds.

    Measures what an operator cares about under churn: **availability**
    (fraction of requests answered — degraded answers count, errors and
    rejections do not) and the **latency tail** (p50/p99), since every
    kill costs a pool rebuild and a list-schedule fallback for the
    victim job.  See the "Failure model" section of ``DESIGN.md``.
    """
    latencies: list[float] = []
    counts = {"answered": 0, "degraded": 0, "errors": 0}
    index = {"next": 0}
    lock = threading.Lock()
    stop = threading.Event()
    kills = [0]

    def killer() -> None:
        import signal

        while not stop.wait(kill_interval):
            executor = server.manager.pool.executor
            procs = list(getattr(executor, "_processes", {}).values())
            if not procs:
                continue
            try:
                os.kill(procs[0].pid, signal.SIGKILL)
                kills[0] += 1
            except (ProcessLookupError, OSError, AttributeError):
                pass  # lost the race with a rebuild — fine

    def worker() -> None:
        while True:
            with lock:
                i = index["next"]
                if i >= len(stream):
                    return
                index["next"] = i + 1
            item = stream[i]
            t0 = time.perf_counter()
            try:
                out = client.solve(
                    item.graph, item.system, name=item.name,
                    deadline=DEADLINE_SECONDS, max_expansions=MAX_EXPANSIONS,
                )
            except Exception:  # noqa: BLE001 - an unanswered request is
                # exactly what availability measures; count, don't crash.
                with lock:
                    counts["errors"] += 1
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                counts["answered"] += 1
                if out.get("result", {}).get("certificate") == "degraded":
                    counts["degraded"] += 1

    reaper = threading.Thread(target=killer, daemon=True)
    reaper.start()
    t0 = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - t0
    stop.set()
    reaper.join(timeout=10)
    latencies.sort()
    return {
        "requests": len(stream),
        "wall_seconds": wall,
        "requests_per_second": len(stream) / wall,
        "worker_kills": kills[0],
        "availability": counts["answered"] / len(stream),
        "answered": counts["answered"],
        "degraded": counts["degraded"],
        "errors": counts["errors"],
        "p50_seconds": _quantile(latencies, 0.50),
        "p99_seconds": _quantile(latencies, 0.99),
    }


def run_server_bench(
    *, requests: int = 200, solver_workers: int = 2,
    client_threads: int = CLIENT_THREADS,
) -> dict[str, object]:
    """Cold + warm daemon passes plus the per-request dispatch baseline."""
    stream = build_stream(requests)

    server = SolverServer(
        port=0, solver_workers=solver_workers,
        queue_limit=max(64, requests),
        deadline=DEADLINE_SECONDS, max_expansions=MAX_EXPANSIONS,
    )
    thread = server.serve_in_thread()
    client = ServerClient(port=server.port, timeout=600)
    try:
        cold = _serve_stream(client, stream, client_threads)
        warm = _serve_stream(client, stream, client_threads)
        # Fault-injection soak: fresh (uncached) instances so the pool
        # is genuinely busy while the killer thread takes workers down.
        soak_stream = [
            BatchItem(
                name=f"soak-v{v}-ccr{ccr}-s{s}",
                graph=paper_random_graph(
                    PaperGraphSpec(num_nodes=v, ccr=ccr, seed=s + 100)
                ),
                system=ProcessorSystem.fully_connected(4),
            )
            for v, ccr, s in UNIQUE_COORDS
        ]
        soak = _soak_with_worker_kills(
            client, server, soak_stream, client_threads
        )
        metrics = client.metrics()
    finally:
        server.shutdown()
        thread.join(timeout=300)

    # Baseline A (the gate): the same stream at the same client
    # concurrency, but every request is an independent run_batch call
    # on its own transient pool.  A shared (in-memory) cache is the
    # only cross-request state — there is no in-flight dedupe, so
    # duplicates arriving while their twin is mid-solve are re-solved,
    # and every request pays the per-call pool lifecycle.
    from repro.parallel.mp_backend import SolverPool

    cache = ResultCache()
    index = {"next": 0}
    lock = threading.Lock()
    solved_counts: list[int] = []

    def dispatch_worker() -> None:
        while True:
            with lock:
                i = index["next"]
                if i >= len(stream):
                    return
                index["next"] = i + 1
            item = stream[i]
            with SolverPool(solver_workers) as transient:
                report = run_batch(
                    [item], cache=cache, pool=transient,
                    deadline=DEADLINE_SECONDS,
                    max_expansions=MAX_EXPANSIONS,
                )
            with lock:
                solved_counts.append(report.solved)

    t0 = time.perf_counter()
    dispatchers = [
        threading.Thread(target=dispatch_worker) for _ in range(client_threads)
    ]
    for t in dispatchers:
        t.start()
    for t in dispatchers:
        t.join()
    per_request_wall = time.perf_counter() - t0
    per_request = {
        "requests": len(stream),
        "wall_seconds": per_request_wall,
        "requests_per_second": len(stream) / per_request_wall,
        "solved": sum(solved_counts),
        "redundant_solves": sum(solved_counts) - len(UNIQUE_COORDS),
    }

    # Baseline B (informational): plain in-process run_batch per
    # request — no pool, no HTTP; the single-core floor.
    with tempfile.TemporaryDirectory() as tmp:
        with ResultCache(Path(tmp) / "in_process.db") as cache:
            t0 = time.perf_counter()
            for item in stream:
                run_batch(
                    [item], cache=cache,
                    deadline=DEADLINE_SECONDS, max_expansions=MAX_EXPANSIONS,
                )
            in_process_wall = time.perf_counter() - t0
    in_process = {
        "requests": len(stream),
        "wall_seconds": in_process_wall,
        "requests_per_second": len(stream) / in_process_wall,
    }

    warm_speedup = warm["requests_per_second"] / cold["requests_per_second"]
    pool_advantage = (
        cold["requests_per_second"] / per_request["requests_per_second"]
    )
    return {
        "requests": requests,
        "unique_instances": len(UNIQUE_COORDS),
        "solver_workers": solver_workers,
        "client_threads": client_threads,
        "cpu_count": os.cpu_count(),
        "deadline_seconds": DEADLINE_SECONDS,
        "max_expansions": MAX_EXPANSIONS,
        "passes": [
            {"pass": "cold", **cold},
            {"pass": "warm", **warm},
            {"pass": "fault_soak", **soak},
            {"pass": "per_request_run_batch", **per_request},
            {"pass": "in_process_run_batch", **in_process},
        ],
        "cold_requests_per_second": cold["requests_per_second"],
        "warm_requests_per_second": warm["requests_per_second"],
        "per_request_requests_per_second": per_request["requests_per_second"],
        "in_process_requests_per_second": in_process["requests_per_second"],
        "warm_speedup": warm_speedup,
        "persistent_pool_advantage": pool_advantage,
        "soak_availability": soak["availability"],
        "soak_p99_seconds": soak["p99_seconds"],
        "soak_worker_kills": soak["worker_kills"],
        "soak_degraded": soak["degraded"],
        "server_jobs": metrics["jobs"],
        "server_failures": metrics.get("failures", {}),
        "server_engines": metrics["engines"],
    }


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--solver-workers", type=int, default=2)
    parser.add_argument("--client-threads", type=int, default=CLIENT_THREADS)
    parser.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    report = run_server_bench(
        requests=args.requests, solver_workers=args.solver_workers,
        client_threads=args.client_threads,
    )

    from repro.util.tables import render_table

    rows = [
        [p["pass"], p["requests"], p["wall_seconds"], p["requests_per_second"]]
        for p in report["passes"]
    ]
    print(render_table(
        ["pass", "requests", "seconds", "req/s"],
        rows, title="solver daemon sustained throughput", float_fmt="{:.3f}",
    ))
    print(f"\nwarm-cache speedup        : {report['warm_speedup']:.1f}x "
          f"(floor {WARM_SPEEDUP_FLOOR}x)")
    print(f"persistent-pool advantage : "
          f"{report['persistent_pool_advantage']:.2f}x over per-request "
          f"run_batch (floor 1x)")
    naive = report["passes"][3]
    print(f"naive redundant solves    : {naive['redundant_solves']} "
          f"(daemon: 0 — in-flight dedupe)")
    print(f"fault soak                : availability "
          f"{report['soak_availability']:.3f} across "
          f"{report['soak_worker_kills']} worker kill(s), "
          f"{report['soak_degraded']} degraded answer(s), "
          f"p99 {report['soak_p99_seconds']:.3f}s")

    entry = {
        "bench": "server",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        **report,
    }
    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    failed = False
    if report["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        print("FAIL: warm-cache speedup below the acceptance floor",
              file=sys.stderr)
        failed = True
    if report["persistent_pool_advantage"] <= 1.0:
        print("FAIL: persistent-pool serving did not beat per-request "
              "run_batch dispatch", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
