"""Benchmark E7: optimal vs heuristic scheduling on application kernels.

Regular kernel structure exercises the pruning rules differently from
§4.1 random graphs — FFT stages are full of Definition-3 equivalences,
wavefronts are chain-heavy.  This bench measures search effort and the
heuristic gap per kernel family.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.heuristics.listsched import list_schedule
from repro.search.astar import astar_schedule
from repro.util.tables import render_table
from repro.workloads.kernels import kernel_suite


def test_kernel_report(benchmark, bench_config, results_dir):
    suite = kernel_suite(scales=(1, 2), ccrs=(0.1, 1.0))

    def run():
        rows = []
        for inst in suite:
            result = astar_schedule(
                inst.graph, inst.system, budget=bench_config.budget()
            )
            heuristic = list_schedule(inst.graph, inst.system)
            gap = (
                100.0 * (heuristic.length - result.length) / result.length
                if result.length > 0
                else 0.0
            )
            rows.append([
                inst.graph.name,
                inst.graph.num_nodes,
                result.length,
                "yes" if result.optimal else "budget",
                result.stats.states_expanded,
                result.stats.pruning.equivalence_skips,
                f"+{gap:.1f}%",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["kernel", "tasks", "optimal", "proven", "expanded",
         "equiv. skips", "heuristic gap"],
        rows,
        title="Kernel workloads — optimal scheduling effort and heuristic gap",
        float_fmt="{:g}",
    )
    save_report(results_dir, "kernels.txt", text)
    # Regularity claim: FFT instances trigger node-equivalence pruning.
    fft_rows = [r for r in rows if str(r[0]).startswith("fft")]
    assert any(r[5] > 0 for r in fft_rows)
