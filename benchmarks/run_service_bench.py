"""Append service-layer benchmark results to ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py [--workers N]

Runs :mod:`benchmarks.bench_service` (cold + warm pass over the §4.1
suite against one result cache) and appends one entry to the
``BENCH_service.json`` array at the repository root, accumulating a
machine-readable throughput trajectory across PRs.

Exits non-zero when the warm-cache speedup falls below the 10x
acceptance floor of the service-layer PR, making the script usable as a
CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_service import run_suite_bench  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_service.json"
SPEEDUP_FLOOR = 10.0  # acceptance criterion: warm cache vs cold batch


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="OS processes for the solve fan-out")
    parser.add_argument("--deadline", type=float, default=5.0,
                        help="per-instance wall-clock budget (seconds)")
    parser.add_argument("--max-expansions", type=int, default=50_000)
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help="results file (JSON array)")
    args = parser.parse_args(argv)

    report = run_suite_bench(
        workers=args.workers,
        deadline=args.deadline,
        max_expansions=args.max_expansions,
    )
    entry = {
        "bench": "service_batch",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        **report,
    }

    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    speedup = report["warm_speedup"]
    print(f"cold: {report['cold_instances_per_second']:.2f} inst/s, "
          f"warm: {report['warm_instances_per_second']:.2f} inst/s, "
          f"speedup {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)")
    if speedup < SPEEDUP_FLOOR:
        print("FAIL: warm-cache speedup below the acceptance floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
