"""HDA* vs serial A* on the §4.1 suite -> ``BENCH_hda.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hda.py [--workers N]

Runs serial A* and the multiprocess HDA* engine over a fixed set of
§4.1 suite instances, verifies the makespans are identical and proven
on both sides, and appends one entry to the ``BENCH_hda.json`` array at
the repository root.  Exits non-zero unless at least one instance shows
the >= 2x wall-clock speedup acceptance floor with identical
proven-optimal makespan.

Reading the numbers honestly: the entry records ``cpu_count``.  On a
multi-core host the hash-distributed search adds core-parallel speedup
on top of what is reported here; on a single-core host (CI containers)
worker processes time-slice one core, and any speedup comes purely
from the HDA* engine's *algorithmic* advantage — its shared-incumbent
pruning discards ``f >= U`` ties, so instances whose list-schedule
bound is already optimal are proven by quiescence without the goal-
plateau exploration serial A* pays (see DESIGN.md).  Instances where
real search dominates (``ccr10-v16`` below) then show the transfer
overhead instead; both kinds are in the set so the trajectory is
meaningful on any hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.parallel.hda import hda_astar_schedule
from repro.search.astar import astar_schedule
from repro.util.timing import Budget
from repro.workloads.suite import paper_suite

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_hda.json"
SPEEDUP_FLOOR = 2.0  # acceptance criterion at 4 workers

#: (ccr, size) suite points: two where the incumbent-pruning proof
#: dominates, one where real distributed search dominates.
BENCH_POINTS = ((0.1, 18), (0.1, 20), (10.0, 16))


def run_hda_bench(
    *, workers: int = 4, budget_seconds: float = 300.0
) -> dict:
    """Serial-vs-HDA sweep; returns the machine-readable report."""
    suite = paper_suite()
    rows = []
    for ccr, size in BENCH_POINTS:
        inst = suite.get(ccr, size)
        t0 = time.perf_counter()
        serial = astar_schedule(
            inst.graph, inst.system, budget=Budget(max_seconds=budget_seconds)
        )
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = hda_astar_schedule(
            inst.graph, inst.system, workers=workers,
            budget=Budget(max_seconds=budget_seconds),
        )
        parallel_s = time.perf_counter() - t0
        rows.append(
            {
                "instance": f"v{size}-ccr{ccr}",
                "serial_seconds": serial_s,
                "hda_seconds": parallel_s,
                "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
                "serial_makespan": serial.length,
                "hda_makespan": parallel.length,
                "serial_proven": serial.optimal,
                "hda_proven": parallel.optimal,
                "identical": parallel.length == serial.length,
                "serial_expanded": serial.stats.states_expanded,
                "hda_expanded": parallel.stats.states_expanded,
            }
        )
    qualifying = [
        r for r in rows
        if r["identical"] and r["serial_proven"] and r["hda_proven"]
    ]
    best = max((r["speedup"] for r in qualifying), default=0.0)
    return {
        "suite": "paper-4.1-default",
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "budget_seconds": budget_seconds,
        "instances": rows,
        "best_proven_identical_speedup": best,
    }


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--budget", type=float, default=300.0,
                        help="per-search wall-clock cap (seconds)")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help="results file (JSON array)")
    args = parser.parse_args(argv)

    report = run_hda_bench(workers=args.workers, budget_seconds=args.budget)
    entry = {
        "bench": "hda_vs_serial",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        **report,
    }

    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    for row in report["instances"]:
        print(f"{row['instance']}: serial {row['serial_seconds']:.2f}s, "
              f"hda({args.workers}w) {row['hda_seconds']:.2f}s, "
              f"speedup {row['speedup']:.2f}x, identical={row['identical']}, "
              f"proven={row['serial_proven'] and row['hda_proven']}")
    best = report["best_proven_identical_speedup"]
    print(f"best proven-identical speedup: {best:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x, cpus={report['cpu_count']})")
    if best < SPEEDUP_FLOOR:
        print("FAIL: no instance met the speedup acceptance floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
