"""Benchmark regenerating **Table 1**: serial algorithm comparison.

Paper shape asserted:

* the full-pruning A* never does more work than the no-pruning A*;
* Chen & Yu is the slowest per cost evaluation (its path-matching
  underestimate is the expensive part);
* all engines that prove optimality agree on the schedule length.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.baselines.chen_yu import chen_yu_schedule
from repro.experiments.table1 import run_table1
from repro.search.astar import astar_schedule
from repro.search.pruning import PruningConfig
from repro.workloads.suite import paper_suite


@pytest.fixture(scope="module")
def table1_result(bench_suite, bench_config):
    return run_table1(bench_suite, bench_config)


def test_table1_report(benchmark, bench_suite, bench_config, results_dir):
    """Regenerate Table 1 (all three CCR sets) and save the report."""
    result = benchmark.pedantic(
        run_table1, args=(bench_suite, bench_config), rounds=1, iterations=1
    )
    text = result.render() + "\n\n" + result.render_work()
    save_report(results_dir, "table1.txt", text)
    for row in result.rows:
        if row.all_proven:
            assert row.all_agree
            assert row.astar_full_expanded <= row.astar_nopruning_expanded


@pytest.mark.parametrize("algorithm", ["chen-yu", "astar-noprune", "astar-full"])
def test_table1_single_cell(benchmark, bench_config, algorithm):
    """Per-algorithm timing on the v=10, CCR=1.0 instance (one cell)."""
    inst = paper_suite(sizes=(10,), ccrs=(1.0,)).instances[0]

    def run():
        if algorithm == "chen-yu":
            return chen_yu_schedule(inst.graph, inst.system, budget=bench_config.budget())
        pruning = (
            PruningConfig.none() if algorithm == "astar-noprune" else PruningConfig.all()
        )
        return astar_schedule(
            inst.graph, inst.system, pruning=pruning, budget=bench_config.budget()
        )

    result = benchmark(run)
    assert result.schedule is not None
