"""Micro-benchmarks of the performance-critical components.

These watch for regressions in the inner loops the experiment wall-clock
depends on: state expansion, level computation, cost evaluation, graph
generation, and the simulated parallel machine.
"""

from __future__ import annotations

import pytest

from repro.baselines.chen_yu import ChenYuCost
from repro.graph.analysis import _levels_cache, compute_levels
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.schedule.partial import PartialSchedule
from repro.search.astar import astar_schedule
from repro.search.costs import ImprovedCost, PaperCost
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem
from repro.workloads.suite import paper_target_system


@pytest.fixture(scope="module")
def medium_graph():
    return paper_random_graph(PaperGraphSpec(num_nodes=20, ccr=1.0, seed=77))


@pytest.fixture(scope="module")
def medium_system(medium_graph):
    return paper_target_system(medium_graph.num_nodes)


def test_bench_compute_levels(benchmark, medium_graph):
    def run():
        _levels_cache.clear()  # defeat memoization: measure the real cost
        return compute_levels(medium_graph)

    levels = benchmark(run)
    assert levels.cp_length > 0


def test_bench_generator(benchmark):
    spec = PaperGraphSpec(num_nodes=32, ccr=1.0, seed=5)
    graph = benchmark(paper_random_graph, spec)
    assert graph.num_nodes == 32


def test_bench_state_extend(benchmark, medium_graph, medium_system):
    root = PartialSchedule.empty(medium_graph, medium_system)

    def run():
        ps = root
        for node in medium_graph.topological_order:
            ps = ps.extend(node, node % 4)
        return ps

    ps = benchmark(run)
    assert ps.is_complete()


def test_bench_expansion(benchmark, medium_graph, medium_system):
    expander = StateExpander(medium_graph, medium_system, PruningConfig.all())
    ps = PartialSchedule.empty(medium_graph, medium_system).extend(0, 0)

    children = benchmark(lambda: list(expander.children(ps)))
    assert children


def test_bench_paper_cost_eval(benchmark, medium_graph, medium_system):
    cost = PaperCost(medium_graph, medium_system)
    ps = PartialSchedule.empty(medium_graph, medium_system).extend(0, 0)
    h = benchmark(cost.h, ps)
    assert h >= 0


def test_bench_improved_cost_eval(benchmark, medium_graph, medium_system):
    cost = ImprovedCost(medium_graph, medium_system)
    ps = PartialSchedule.empty(medium_graph, medium_system).extend(0, 0)
    h = benchmark(cost.h, ps)
    assert h >= 0


def test_bench_chen_yu_cost_eval(benchmark, medium_graph, medium_system):
    """The Table-1 per-state cost gap: compare with the two above."""
    cost = ChenYuCost(medium_graph, medium_system)
    ps = PartialSchedule.empty(medium_graph, medium_system).extend(0, 0)
    h = benchmark(cost.h, ps)
    assert h >= 0


def test_bench_serial_astar_small(benchmark):
    graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=9))
    system = ProcessorSystem.fully_connected(10)
    result = benchmark(astar_schedule, graph, system)
    assert result.optimal


def test_bench_parallel_simulator(benchmark):
    graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=9))
    system = ProcessorSystem.fully_connected(10)
    spec = MachineSpec(num_ppes=8)
    par = benchmark(parallel_astar_schedule, graph, system, spec)
    assert par.result.optimal
