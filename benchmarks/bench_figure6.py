"""Benchmark regenerating **Figure 6**: parallel A* speedups.

Paper shape asserted (loosely — budget-capped points are excluded):

* speedup grows with the PPE count;
* speedup is sub-linear (≤ q);
* exact runs agree with the serial optimum.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.experiments.figure6 import run_figure6
from repro.experiments.runner import OptimumCache
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.workloads.suite import paper_suite


def test_figure6_report(benchmark, bench_suite, bench_config, results_dir):
    """Regenerate the three speedup plots of Figure 6 and save them."""
    cache = OptimumCache(config=bench_config)
    result = benchmark.pedantic(
        run_figure6, args=(bench_suite, bench_config, cache), rounds=1, iterations=1
    )
    save_report(results_dir, "figure6.txt", result.render())

    from repro.util.stats import geometric_mean

    exact_points = [p for p in result.points if p.exact]
    for p in exact_points:
        # Mostly sub-linear; bounded-above loosely because parallel
        # best-first search exhibits documented *acceleration anomalies*
        # (Lai & Sahni): a different exploration order can find and
        # prove the goal with less total work than the serial order,
        # giving occasional super-linear points.
        assert p.speedup <= 2 * p.num_ppes + 1, (
            f"implausible speedup {p.speedup} on {p.num_ppes} PPEs"
        )
    # Aggregate trend: more PPEs help on (geometric) average, even though
    # individual small-instance curves wobble exactly as the paper's do.
    qs = sorted({p.num_ppes for p in exact_points})
    if len(qs) >= 2:
        lo = [p.speedup for p in exact_points if p.num_ppes == qs[0]]
        hi = [p.speedup for p in exact_points if p.num_ppes == qs[-1]]
        if lo and hi:
            assert geometric_mean(hi) >= geometric_mean(lo) * 0.8


@pytest.mark.parametrize("q", [2, 4, 8, 16])
def test_figure6_single_point(benchmark, bench_config, q):
    """One speedup point (v=10, CCR=1.0) per PPE count."""
    inst = paper_suite(sizes=(10,), ccrs=(1.0,)).instances[0]
    spec = MachineSpec(num_ppes=q, topology="mesh")

    def run():
        return parallel_astar_schedule(
            inst.graph, inst.system, spec, budget=bench_config.budget()
        )

    par = benchmark(run)
    assert par.schedule is not None
