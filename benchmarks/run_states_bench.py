"""Append state-microbenchmark results to ``BENCH_states.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_states_bench.py [--limit N] [--repeats R]

Runs :mod:`benchmarks.bench_states_micro` and appends one entry to the
``BENCH_states.json`` array at the repository root, so successive PRs
accumulate a machine-readable perf trajectory to regress against.  Each
entry records the per-size states/second of both state representations,
the delta/tuple speedup, and the interpreter version; ``git_rev`` is
filled in when the working tree is a git checkout.

Exits non-zero when the 100-node speedup falls below the 3x acceptance
floor established by the delta-state PR, making the script usable as a
CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_states_micro import run_suite  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_states.json"
SPEEDUP_FLOOR = 3.0  # acceptance criterion on the 100-node instance


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=20_000,
                        help="states generated per measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per cell")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help="results file (JSON array)")
    args = parser.parse_args(argv)

    report = run_suite(limit=args.limit, repeats=args.repeats)
    entry = {
        "bench": "states_micro",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        **report,
    }

    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    for v, cell in report["sizes"].items():
        print(
            f"v={v:>3}: delta {cell['delta']['states_per_sec']:>12,.0f}/s  "
            f"tuple {cell['tuple']['states_per_sec']:>12,.0f}/s  "
            f"speedup {cell['speedup']:.2f}x"
        )
    print(f"appended entry #{len(existing)} to {args.out}")

    speedup_100 = report["sizes"]["100"]["speedup"]
    if speedup_100 < SPEEDUP_FLOOR:
        print(
            f"FAIL: 100-node speedup {speedup_100:.2f}x < {SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
