"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artefact (table or figure) on
a scaled-down default sweep that completes in minutes on a laptop, and
writes its rendered report to ``benchmarks/results/``.  Environment
knobs:

``REPRO_BENCH_SIZES``
    Comma-separated graph sizes (default ``10,12,14``).
``REPRO_BENCH_FULL``
    When set to ``1``, run the paper's full 10…32 sweep (hours).
``REPRO_BENCH_MAX_EXPANSIONS`` / ``REPRO_BENCH_MAX_SECONDS``
    Per-search budgets (defaults 50 000 / 15 s).  Searches that trip a
    budget are reported with ``proven=False`` — EXPERIMENTS.md records
    which points ran to proven optimality.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.workloads.suite import PAPER_CCRS, paper_suite

RESULTS_DIR = Path(__file__).parent / "results"


def bench_sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SIZES")
    if raw:
        return tuple(int(x) for x in raw.split(","))
    return (10, 12, 14)


def bench_full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL") == "1"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        max_expansions=int(os.environ.get("REPRO_BENCH_MAX_EXPANSIONS", 40_000)),
        max_seconds=float(os.environ.get("REPRO_BENCH_MAX_SECONDS", 10.0)),
    )


@pytest.fixture(scope="session")
def bench_suite():
    return paper_suite(ccrs=PAPER_CCRS, sizes=bench_sizes(), full=bench_full())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, text: str) -> None:
    """Write a rendered artefact and echo it to stdout."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
