"""Benchmark: Aε* vs weighted A* — two bounded-suboptimality mechanisms.

An extension the paper leaves open: it adopts Pearl & Kim's FOCAL
machinery for Aε*; weighted A* achieves the same ``(1+ε)`` guarantee by
inflating ``h``.  This bench runs both on the same instances and
reports length, deviation and work side by side.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.search.astar import astar_schedule
from repro.search.focal import focal_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.util.tables import render_table
from repro.workloads.suite import paper_suite


def test_approx_comparison_report(benchmark, bench_config, results_dir):
    suite = paper_suite(sizes=(10, 12), ccrs=(1.0, 10.0))

    def run():
        rows = []
        for inst in suite:
            exact = astar_schedule(
                inst.graph, inst.system, budget=bench_config.budget()
            )
            for eps in (0.2, 0.5):
                focal = focal_schedule(
                    inst.graph, inst.system, eps, budget=bench_config.budget()
                )
                wastar = weighted_astar_schedule(
                    inst.graph, inst.system, eps, budget=bench_config.budget()
                )
                rows.append(
                    [
                        f"v={inst.size} ccr={inst.ccr}",
                        eps,
                        exact.length,
                        focal.length,
                        focal.stats.states_expanded,
                        wastar.length,
                        wastar.stats.states_expanded,
                        exact.optimal,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["instance", "ε", "optimal", "Aε* len", "Aε* exp",
         "WA* len", "WA* exp", "opt proven"],
        rows,
        title="Bounded suboptimality: Aε* (FOCAL) vs weighted A*",
        float_fmt="{:g}",
    )
    save_report(results_dir, "approx_comparison.txt", text)
    for row in rows:
        _inst, eps, opt, flen, _fe, wlen, _we, proven = row
        if proven:
            assert flen <= (1 + eps) * opt + 1e-9
            assert wlen <= (1 + eps) * opt + 1e-9


@pytest.mark.parametrize("engine", ["focal", "wastar"])
def test_approx_single_point(benchmark, bench_config, engine):
    inst = paper_suite(sizes=(12,), ccrs=(10.0,)).instances[0]
    fn = focal_schedule if engine == "focal" else weighted_astar_schedule

    def run():
        return fn(inst.graph, inst.system, 0.5, budget=bench_config.budget())

    result = benchmark(run)
    assert result.schedule is not None
