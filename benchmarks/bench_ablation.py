"""Benchmark for experiment E4: per-rule pruning and cost-function ablation.

The paper only reports the aggregate ~20% saving of its pruning rules
(Table 1's two A* columns); this bench isolates each rule and compares
the three cost functions — the design-choice evidence DESIGN.md calls
out.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.experiments.ablation import ABLATION_VARIANTS, run_ablation
from repro.search.astar import astar_schedule
from repro.util.tables import render_table
from repro.workloads.suite import paper_suite


def test_ablation_report(benchmark, bench_config, results_dir):
    """Per-rule ablation on small instances of all three CCR sets."""
    suite = paper_suite(sizes=(10, 12), ccrs=(0.1, 1.0, 10.0))
    result = benchmark.pedantic(
        run_ablation, args=(suite, bench_config), rounds=1, iterations=1
    )
    save_report(results_dir, "ablation.txt", result.render())
    assert result.lengths_consistent()
    by_variant: dict[str, int] = {}
    for row in result.rows:
        by_variant[row.variant] = by_variant.get(row.variant, 0) + row.expanded
    assert by_variant["full"] <= by_variant["none"]


def test_cost_function_report(benchmark, bench_config, results_dir):
    """Cost-function comparison (paper vs improved vs zero)."""
    suite = paper_suite(sizes=(10, 12), ccrs=(1.0,))

    costs = ("zero", "paper", "improved", "load", "combined")

    def run():
        rows = []
        for inst in suite:
            for cost in costs:
                res = astar_schedule(
                    inst.graph, inst.system, cost=cost, budget=bench_config.budget()
                )
                rows.append(
                    [f"v={inst.size}", cost, res.stats.states_expanded,
                     res.stats.wall_seconds, res.length, res.optimal]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["instance", "cost fn", "expanded", "seconds", "length", "proven"],
        rows,
        title="Cost-function ablation (A*, full pruning)",
    )
    save_report(results_dir, "cost_ablation.txt", text)
    # Tighter admissible bounds expand no more states (per instance).
    for i in range(0, len(rows), len(costs)):
        by_cost = {r[1]: r for r in rows[i : i + len(costs)]}
        zero, paper = by_cost["zero"], by_cost["paper"]
        improved, combined = by_cost["improved"], by_cost["combined"]
        if zero[5] and paper[5]:
            assert paper[2] <= zero[2]
        if paper[5] and improved[5]:
            assert improved[2] <= paper[2]
        if paper[5] and combined[5]:
            assert combined[2] <= paper[2]


def test_fixed_order_ablation(benchmark, bench_config, results_dir):
    """The fixed-task-order rule vs. the paper's full pruning set, on
    the §4.1 instances plus structured layers where the rule fires."""
    from repro.graph.taskgraph import TaskGraph
    from repro.search.pruning import PruningConfig
    from repro.system.processors import ProcessorSystem

    suite = paper_suite(sizes=(10, 12), ccrs=(1.0,))
    cases = [
        (f"v{inst.size}-ccr{inst.ccr}", inst.graph, inst.system)
        for inst in suite
    ]
    cases.append((
        "independent-12",
        TaskGraph([(i % 5) + 2 for i in range(12)], {}, name="independent-12"),
        ProcessorSystem.fully_connected(2),
    ))

    def run():
        rows = []
        for name, graph, system in cases:
            base = astar_schedule(graph, system, budget=bench_config.budget())
            fto = astar_schedule(
                graph, system, pruning=PruningConfig.with_fixed_order(),
                budget=bench_config.budget(),
            )
            rows.append([
                name, base.stats.states_expanded, fto.stats.states_expanded,
                fto.stats.pruning.fixed_order_skips, base.length, fto.length,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["instance", "expanded", "expanded(fto)", "fto skips",
         "length", "length(fto)"],
        rows,
        title="Fixed-task-order ablation (A*)",
    )
    save_report(results_dir, "fto_ablation.txt", text)
    for row in rows:
        assert row[4] == row[5]          # optimality preserved
        assert row[2] <= row[1]          # never more expansions
    # The rule demonstrably fires on the structured instance.
    assert rows[-1][3] > 0


@pytest.mark.parametrize("variant", ["none", "full", "only-upper-bound"])
def test_ablation_single_variant(benchmark, bench_config, variant):
    inst = paper_suite(sizes=(10,), ccrs=(1.0,)).instances[0]

    def run():
        return astar_schedule(
            inst.graph,
            inst.system,
            pruning=ABLATION_VARIANTS[variant],
            budget=bench_config.budget(),
        )

    result = benchmark(run)
    assert result.schedule is not None
