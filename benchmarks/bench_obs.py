"""Benchmark gate for the search-probe instrumentation overhead.

PR 7 added a convergence probe to every engine hot loop: one
``if probe is not None`` branch per expansion when disabled
(``repro/obs/probe.py``).  This bench measures what that branch costs
on a deterministic, budget-stopped serial A* run and gates it.

Method
------
Two searches over the identical instance and expansion budget:

* **reference** — a line-for-line replica of the A* hot loop *without*
  the probe branch, defined in this file.  It replays exactly the same
  expansions (the search is deterministic: heap order is
  ``(f, h, seq)`` and the budget stops on an expansion count), which
  the bench asserts by comparing expansion/generation counters and the
  returned makespan against the library engine.
* **disabled** — ``astar_schedule(probe=None)``: the shipped code with
  the instrumentation present but switched off.

Both are timed as the min over ``--repeats`` runs (min, not mean: the
lower envelope is the code's actual cost; everything above it is
scheduler noise).  An **enabled** row (``probe=SearchProbe()`` at the
default 4096-expansion interval) rides along for the honest
what-it-costs-when-on story; it is reported, not gated.

* **Gate: disabled overhead ≤ 3%** relative to the reference loop, on
  a run of ≥ 100k expansions.

Appends one entry to ``BENCH_obs.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--smoke]
        [--repeats N] [--out PATH]

``--smoke`` shrinks the budget (seconds, for CI) and skips the 3%
gate — wall-clock ratios on a short run are scheduler noise — but the
replica-equivalence assertions still run.  Exits non-zero on any gate
miss or replica divergence.
"""

from __future__ import annotations

import argparse
import heapq
import json
import math
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.heuristics.listsched import fast_upper_bound_schedule  # noqa: E402
from repro.obs.probe import SearchProbe  # noqa: E402
from repro.schedule.partial import PartialSchedule  # noqa: E402
from repro.search.astar import astar_schedule  # noqa: E402
from repro.search.costs import make_cost_function  # noqa: E402
from repro.search.dedup import SignatureSet  # noqa: E402
from repro.search.expansion import StateExpander  # noqa: E402
from repro.search.pruning import PruningConfig  # noqa: E402
from repro.search.result import SearchStats  # noqa: E402
from repro.system.processors import ProcessorSystem  # noqa: E402
from repro.util import tolerance as tol  # noqa: E402
from repro.util.timing import Budget  # noqa: E402
from repro.workloads.suite import paper_suite  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_obs.json"

#: Acceptance ceiling on the disabled-probe overhead (percent).
GATE_MAX_OVERHEAD_PCT = 3.0
#: The gate instance must run at least this many expansions.
GATE_MIN_EXPANSIONS = 100_000

#: Gate instance: the §4.1 v=30, CCR=1.0 point on 2 PEs under the paper
#: bound — reliably budget-stopped (the search space dwarfs the budget),
#: so the run is deterministic and exactly FULL_BUDGET expansions long.
V, CCR, PES, COST = 30, 1.0, 2, "paper"
FULL_BUDGET = 150_000
SMOKE_BUDGET = 4_000
DEFAULT_REPEATS = 3


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _reference_astar(graph, system, *, cost: str, max_expanded: int):
    """The A* hot loop with no probe branch: the pre-instrumentation
    baseline, kept line-for-line in step with ``astar_schedule`` (minus
    probe/trace).  Returns ``(stats, best_length)``."""
    pruning = PruningConfig.all()
    cost_fn = make_cost_function(cost, graph, system)
    budget = Budget(max_expanded=max_expanded)
    budget.start()

    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)
    fallback = fast_upper_bound_schedule(graph, system)
    upper = fallback.length

    root = PartialSchedule.empty(graph, system)
    open_heap = [(0.0, 0.0, 0, root)]
    seq = 1
    seen = SignatureSet(verify=pruning.verify_signatures)
    seen.add(root.dedup_key, lambda: root.signature)
    incumbent = None
    lower = 0.0

    while open_heap:
        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(open_heap) + len(seen)):
            best = incumbent if incumbent is not None else fallback
            stats.cost_evaluations = cost_fn.evaluations
            return stats, best.length
        f, h, _s, state = heapq.heappop(open_heap)
        if f > lower:
            lower = f
        if state.is_complete():
            stats.states_expanded += 1
            stats.cost_evaluations = cost_fn.evaluations
            return stats, state.to_schedule().length
        stats.states_expanded += 1
        for child in expander.children(state, seen):
            ch = cost_fn.h(child)
            cf = child.makespan + ch
            if tol.gt(cf, upper):
                stats.pruning.upper_bound_cuts += 1
                continue
            stats.states_generated += 1
            if child.is_complete():
                if incumbent is None or child.makespan < incumbent.length:
                    incumbent = child.to_schedule()
                    if incumbent.length < upper:
                        upper = incumbent.length
            heapq.heappush(open_heap, (cf, ch, seq, child))
            seq += 1
        if len(open_heap) > stats.max_open_size:
            stats.max_open_size = len(open_heap)

    best = incumbent if incumbent is not None else fallback
    stats.cost_evaluations = cost_fn.evaluations
    return stats, best.length


def _time_min(fn, repeats: int) -> tuple[float, object]:
    best_t, last = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        last = fn()
        best_t = min(best_t, time.perf_counter() - t0)
    return best_t, last


def run(budget: int, repeats: int) -> dict:
    inst = paper_suite(sizes=(V,), ccrs=(CCR,)).instances[0]
    system = ProcessorSystem.fully_connected(PES)

    ref_t, (ref_stats, ref_len) = _time_min(
        lambda: _reference_astar(
            inst.graph, system, cost=COST, max_expanded=budget
        ),
        repeats,
    )
    dis_t, dis_res = _time_min(
        lambda: astar_schedule(
            inst.graph, system, cost=COST,
            budget=Budget(max_expanded=budget), probe=None,
        ),
        repeats,
    )
    en_t, en_res = _time_min(
        lambda: astar_schedule(
            inst.graph, system, cost=COST,
            budget=Budget(max_expanded=budget), probe=SearchProbe(),
        ),
        repeats,
    )
    return {
        "instance": f"v{V}-ccr{CCR}-pes{PES}-{COST}",
        "budget": budget,
        "repeats": repeats,
        "reference": {
            "seconds": round(ref_t, 4),
            "expanded": ref_stats.states_expanded,
            "generated": ref_stats.states_generated,
            "makespan": ref_len,
        },
        "disabled": {
            "seconds": round(dis_t, 4),
            "expanded": dis_res.stats.states_expanded,
            "generated": dis_res.stats.states_generated,
            "makespan": dis_res.length,
        },
        "enabled": {
            "seconds": round(en_t, 4),
            "expanded": en_res.stats.states_expanded,
            "samples": len(en_res.timeline),
            "makespan": en_res.length,
        },
        "disabled_overhead_pct": round((dis_t - ref_t) / ref_t * 100, 2),
        "enabled_overhead_pct": round((en_t - ref_t) / ref_t * 100, 2),
    }


def evaluate(row: dict, *, smoke: bool) -> list[str]:
    """Gate checks; returns failure messages (empty = pass)."""
    failures: list[str] = []
    ref, dis = row["reference"], row["disabled"]
    for key in ("expanded", "generated", "makespan"):
        if ref[key] != dis[key]:
            failures.append(
                f"replica diverged from astar_schedule on {key}: "
                f"{ref[key]} != {dis[key]} (the baseline is not measuring "
                f"the same search)"
            )
    if dis["makespan"] != row["enabled"]["makespan"]:
        failures.append(
            "enabling the probe changed the result makespan "
            f"({dis['makespan']} -> {row['enabled']['makespan']})"
        )
    if smoke:
        return failures
    if dis["expanded"] < GATE_MIN_EXPANSIONS:
        failures.append(
            f"gate run expanded only {dis['expanded']:,} states "
            f"(< {GATE_MIN_EXPANSIONS:,})"
        )
    if row["disabled_overhead_pct"] > GATE_MAX_OVERHEAD_PCT:
        failures.append(
            f"disabled-probe overhead {row['disabled_overhead_pct']:.2f}% "
            f"> {GATE_MAX_OVERHEAD_PCT}% ceiling"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small budget, no 3% gate (CI mode); the "
                             "replica-equivalence assertions still run")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions (min is reported)")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help="results file (JSON array)")
    args = parser.parse_args(argv)

    budget = SMOKE_BUDGET if args.smoke else FULL_BUDGET
    repeats = args.repeats or (1 if args.smoke else DEFAULT_REPEATS)

    row = run(budget, repeats)
    failures = evaluate(row, smoke=args.smoke)

    entry = {
        "bench": "obs",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "smoke": args.smoke,
        "row": row,
        "gate_max_overhead_pct": GATE_MAX_OVERHEAD_PCT,
        "pass": not failures,
    }
    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    print(
        f"{row['instance']}: {row['disabled']['expanded']:,} expansions\n"
        f"  reference (no probe code) {row['reference']['seconds']:.4f}s\n"
        f"  disabled  (probe=None)    {row['disabled']['seconds']:.4f}s "
        f"({row['disabled_overhead_pct']:+.2f}%)\n"
        f"  enabled   (every=4096)    {row['enabled']['seconds']:.4f}s "
        f"({row['enabled_overhead_pct']:+.2f}%, "
        f"{row['enabled']['samples']} samples)"
    )
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate: PASS" + (" (smoke mode, overhead gate skipped)"
                          if args.smoke else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
