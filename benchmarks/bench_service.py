"""Benchmark: batch-serving throughput and cache-hit speedup.

Serves the §4.1 suite through the service front-end twice against one
persistent result cache:

* **cold** — empty cache: every unique fingerprint runs the portfolio
  ladder (budgeted, so the sweep terminates on any machine);
* **warm** — same requests again: everything must come from the cache.

Reported per pass: wall seconds, instances/second, solved / cache-hit /
deduped counts; plus the warm/cold speedup — the number the acceptance
gate in ``run_service_bench.py`` checks (≥ 10x).

Run directly for a human-readable table::

    PYTHONPATH=src python benchmarks/bench_service.py

or use ``benchmarks/run_service_bench.py`` to append machine-readable
results to ``BENCH_service.json``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.service.batch import items_from_suite, run_batch
from repro.service.cache import ResultCache

__all__ = ["run_suite_bench"]

#: Per-instance budgets keeping the cold pass to tens of seconds.
DEADLINE_SECONDS = 5.0
MAX_EXPANSIONS = 50_000


def _pass_row(label: str, report) -> dict[str, float]:
    return {
        "pass": label,
        "instances": len(report.outcomes),
        "wall_seconds": report.wall_seconds,
        "instances_per_second": report.instances_per_second,
        "solved": report.solved,
        "cache_hits": report.cache_hits,
        "deduped": report.deduped,
        "proven": sum(1 for o in report.outcomes if o.certificate == "proven"),
    }


def run_suite_bench(
    *,
    workers: int = 1,
    deadline: float = DEADLINE_SECONDS,
    max_expansions: int = MAX_EXPANSIONS,
    cache_path: str | Path | None = None,
) -> dict[str, object]:
    """Cold + warm pass over the §4.1 suite; returns the report dict."""
    items = items_from_suite()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(cache_path) if cache_path else Path(tmp) / "bench_cache.db"
        with ResultCache(path) as cache:
            cold = run_batch(
                items, cache=cache, workers=workers,
                deadline=deadline, max_expansions=max_expansions,
            )
            warm = run_batch(items, cache=cache, workers=workers)
            counters = cache.counters()
    speedup = cold.wall_seconds / max(warm.wall_seconds, 1e-9)
    return {
        "suite": "paper-4.1-default",
        "workers": workers,
        "deadline_seconds": deadline,
        "max_expansions": max_expansions,
        "passes": [_pass_row("cold", cold), _pass_row("warm", warm)],
        "cold_instances_per_second": cold.instances_per_second,
        "warm_instances_per_second": warm.instances_per_second,
        "warm_speedup": speedup,
        "cache_counters": counters,
    }


def main() -> None:
    from repro.util.tables import render_table

    report = run_suite_bench()
    rows = [
        [
            p["pass"], p["instances"], p["wall_seconds"],
            p["instances_per_second"], p["solved"], p["cache_hits"],
            p["proven"],
        ]
        for p in report["passes"]
    ]
    print(render_table(
        ["pass", "instances", "seconds", "inst/s", "solved", "hits", "proven"],
        rows,
        title="service batch throughput (§4.1 suite)",
        float_fmt="{:.3f}",
    ))
    print(f"\nwarm-cache speedup: {report['warm_speedup']:.1f}x")


if __name__ == "__main__":
    main()
