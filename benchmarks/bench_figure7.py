"""Benchmark regenerating **Figure 7**: parallel Aε* deviation/time ratio.

Paper shape asserted:

* every returned schedule is within the (1+ε) guarantee (Theorem 2);
* the measured deviations stay far below the guarantee on average;
* larger ε never increases the mean time ratio.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.experiments.figure7 import run_figure7
from repro.experiments.runner import OptimumCache
from repro.search.focal import focal_schedule
from repro.workloads.suite import paper_suite


def test_figure7_report(benchmark, bench_suite, bench_config, results_dir):
    """Regenerate Figure 7's four plots (16 simulated PPEs) and save them."""
    cache = OptimumCache(config=bench_config)
    result = benchmark.pedantic(
        run_figure7,
        args=(bench_suite, bench_config, cache),
        kwargs={"num_ppes": 16},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, "figure7.txt", result.render())

    proven = [p for p in result.points if p.proven]
    assert proven, "no point completed within the benchmark budget"
    assert all(p.within_bound for p in proven)
    for eps in (0.2, 0.5):
        deviations = [p.deviation_pct for p in proven if p.epsilon == eps]
        if deviations:
            # Far below the guarantee on average (paper: "the actual
            # percentage deviations from optimal are not as great as the
            # approximation factor").
            assert sum(deviations) / len(deviations) <= 100 * eps * 0.8

    mean_ratio = {
        eps: sum(p.time_ratio for p in proven if p.epsilon == eps)
        / max(1, sum(1 for p in proven if p.epsilon == eps))
        for eps in (0.2, 0.5)
    }
    assert mean_ratio[0.5] <= mean_ratio[0.2] * 1.25  # looser ε is not slower


@pytest.mark.parametrize("eps", [0.2, 0.5])
def test_figure7_serial_focal_point(benchmark, bench_config, eps):
    """Serial Aε* timing on the v=12, CCR=1.0 instance."""
    inst = paper_suite(sizes=(12,), ccrs=(1.0,)).instances[0]

    def run():
        return focal_schedule(
            inst.graph, inst.system, eps, budget=bench_config.budget()
        )

    result = benchmark(run)
    assert result.schedule is not None
