"""Benchmark: fleet routing — warm-throughput scaling and kill soak.

Drives the real topology from ``repro route``: ``repro serve`` shard
*subprocesses* behind an in-process :class:`ShardRouter`, measured two
ways:

* **scaling** — the same warm working set served by 1 shard vs. 4.
  Each shard keeps ``--cache-capacity`` results hot in its in-memory
  LRU; the working set of unique instances is bigger than one shard's
  capacity, so a single shard thrashes (every cycle re-solves what the
  last cycle evicted) while four shards partition the fingerprint
  space into segments that each fit.  On this single-core box the
  ≥ 2.5x acceptance gate is aggregate *cache* capacity, not aggregate
  CPU — the report records ``cpu_count`` so nobody mistakes one for
  the other; on a multi-core box the same harness also captures the
  CPU side.
* **kill soak** — 4 shards over one ``shared:`` SQLite store, a mixed
  request stream, and a killer thread SIGKILLing a random shard every
  second (respawning it on its old port after a beat).  Measures what
  the runbook alarms on: **availability** (answered / total, gate
  ≥ 0.99), **zero lost accepted jobs** (no request the fleet accepted
  may go unanswered or hang), and the p50/p99 latency tail.

Run directly for a human-readable table (also appends an entry to
``BENCH_router.json`` at the repo root and exits non-zero when a gate
fails, making it usable as a CI perf gate)::

    PYTHONPATH=src python benchmarks/bench_router.py [--smoke]

``--smoke`` shrinks every knob so the whole file runs in well under a
minute and skips gate enforcement — it proves the harness, not the
numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.service.client import ServerClient
from repro.service.fleet import spawn_fleet
from repro.service.router import Shard, ShardRouter
from repro.system.processors import ProcessorSystem

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_router.json"

#: Acceptance gates (ISSUE 10): warm throughput at 4 shards >= 2.5x a
#: single shard, and >= 99% of requests answered under repeated shard
#: SIGKILLs with zero lost accepted jobs.
SCALING_FLOOR = 2.5
AVAILABILITY_FLOOR = 0.99

DEADLINE_SECONDS = 5.0
MAX_EXPANSIONS = 50_000
CLIENT_THREADS = 8
PES = 3

#: Per-shard hot-result capacity for the scaling passes.  The working
#: set below is ~3x this, so one shard cannot hold it but a 4-shard
#: partition can (each segment lands well under capacity).
CACHE_CAPACITY = 12


def build_working_set(uniques: int) -> list:
    """Distinct §4.1-style instances, small enough to re-solve fast."""
    coords = [
        (v, ccr, seed)
        for v in (9, 10)
        for ccr in (0.1, 1.0)
        for seed in range(1, uniques // 4 + 2)
    ]
    return [
        paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=s))
        for v, ccr, s in coords[:uniques]
    ]


class _Fleet:
    """Shard subprocesses + in-process router, torn down in order."""

    def __init__(self, count: int, **spawn_kwargs):
        spawn_kwargs.setdefault("solver_workers", 1)
        spawn_kwargs.setdefault("queue_limit", 128)
        spawn_kwargs.setdefault("max_expansions", MAX_EXPANSIONS)
        self.procs = spawn_fleet(count, **spawn_kwargs)
        self.router = ShardRouter(
            [Shard(p.name, p.host, p.port) for p in self.procs],
            port=0,
            probe_interval=0.2,
            reset_timeout=0.2,
            max_reset_timeout=2.0,
        )
        self.thread = self.router.serve_in_thread()
        self.client = ServerClient(
            port=self.router.port, timeout=120, retries=5, backoff=0.1
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.router.shutdown()
        self.thread.join(timeout=60)
        for proc in self.procs:
            proc.terminate()


def _drive(client: ServerClient, system: ProcessorSystem, jobs: list,
           threads: int) -> dict[str, object]:
    """Push ``jobs`` (graphs) through the router from client threads."""
    latencies: list[float] = []
    counts = {"answered": 0, "errors": 0}
    index = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                i = index["next"]
                if i >= len(jobs):
                    return
                index["next"] = i + 1
            t0 = time.perf_counter()
            try:
                client.solve(
                    jobs[i], system,
                    deadline=DEADLINE_SECONDS, max_expansions=MAX_EXPANSIONS,
                )
            except Exception:  # noqa: BLE001 - an unanswered request is
                # exactly what availability measures; count, don't crash.
                with lock:
                    counts["errors"] += 1
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                counts["answered"] += 1
                latencies.append(elapsed)

    t0 = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - t0
    latencies.sort()
    return {
        "requests": len(jobs),
        "wall_seconds": wall,
        "requests_per_second": len(jobs) / wall,
        "answered": counts["answered"],
        "errors": counts["errors"],
        "availability": counts["answered"] / len(jobs) if jobs else 1.0,
        "p50_seconds": _quantile(latencies, 0.50),
        "p99_seconds": _quantile(latencies, 0.99),
    }


def _quantile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1)))
    return sorted_vals[idx]


def run_scaling_pass(
    shards: int, working_set: list, system: ProcessorSystem, *,
    cycles: int, threads: int,
) -> dict[str, object]:
    """Prime the fleet with the working set, then measure warm cycles.

    The measured pass replays the working set ``cycles`` times in
    order — the cyclic-reuse pattern that defeats an undersized LRU
    (capacity < set size means each access evicts a soon-needed entry)
    and rewards a partition whose segments fit.
    """
    with _Fleet(shards, cache_capacity=CACHE_CAPACITY) as fleet:
        prime = _drive(fleet.client, system, list(working_set), threads)
        warm = _drive(
            fleet.client, system, list(working_set) * cycles, threads
        )
        hits = sum(
            s["cache_hits"]
            for s in _shard_job_counters(fleet.procs).values()
        )
    if prime["errors"] or warm["errors"]:
        raise RuntimeError(
            f"{prime['errors'] + warm['errors']} requests failed during "
            f"the {shards}-shard scaling pass"
        )
    return {
        "shards": shards,
        "prime_seconds": prime["wall_seconds"],
        "cache_hits": hits,
        **{k: warm[k] for k in (
            "requests", "wall_seconds", "requests_per_second",
            "p50_seconds", "p99_seconds",
        )},
    }


def _shard_job_counters(procs) -> dict[str, dict]:
    out = {}
    for proc in procs:
        if not proc.alive:
            continue
        try:
            out[proc.name] = ServerClient(
                port=proc.port, timeout=10).metrics()["jobs"]
        except Exception:  # noqa: BLE001 - a shard dying between the
            # liveness check and the scrape only costs this data point.
            continue
    return out


def run_kill_soak(
    working_set: list, system: ProcessorSystem, *, requests: int,
    threads: int, kill_interval: float, seed: int = 73,
) -> dict[str, object]:
    """4 shards, shared store, random SIGKILL + respawn every interval."""
    rng = random.Random(seed)
    jobs = [rng.choice(working_set) for _ in range(requests)]
    kills = [0]
    stop = threading.Event()

    with tempfile.TemporaryDirectory() as tmp:
        store = f"shared:{Path(tmp) / 'fleet.db'}"
        with _Fleet(4, cache=store) as fleet:

            def killer() -> None:
                while not stop.wait(kill_interval):
                    i = rng.randrange(len(fleet.procs))
                    victim = fleet.procs[i]
                    if not victim.alive:
                        continue
                    victim.kill()
                    kills[0] += 1
                    if stop.wait(kill_interval / 2):
                        return
                    try:
                        fleet.procs[i] = victim.respawn()
                    except RuntimeError:
                        pass  # port still settling — the next round
                        # finds the shard dead and moves on.

            reaper = threading.Thread(target=killer, daemon=True)
            reaper.start()
            try:
                soak = _drive(fleet.client, system, jobs, threads)
            finally:
                stop.set()
                reaper.join(timeout=60)

            # Zero lost accepted jobs: once the stream ends, every
            # surviving shard must drain to an empty queue with its
            # accepted ledger balanced — nothing hung, nothing dropped.
            lost = 0
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                counters = _shard_job_counters(fleet.procs)
                lost = sum(
                    jobs_["accepted"] - jobs_["completed"] - jobs_["failed"]
                    for jobs_ in counters.values()
                )
                if lost == 0:
                    break
                time.sleep(0.25)
            router_metrics = fleet.router.metrics()

    return {
        **soak,
        "shard_kills": kills[0],
        "lost_accepted_jobs": lost,
        "router_failovers": router_metrics["routing"]["failovers"],
        "router_unroutable": router_metrics["routing"]["no_shard"],
    }


def run_router_bench(*, smoke: bool = False) -> dict[str, object]:
    uniques = 8 if smoke else 32
    cycles = 1 if smoke else 3
    soak_requests = 16 if smoke else 320
    kill_interval = 2.0 if smoke else 0.6

    working_set = build_working_set(uniques)
    system = ProcessorSystem.fully_connected(PES)

    passes = [
        run_scaling_pass(
            shards, working_set, system,
            cycles=cycles, threads=CLIENT_THREADS,
        )
        for shards in (1, 4)
    ]
    soak = run_kill_soak(
        working_set, system, requests=soak_requests,
        threads=CLIENT_THREADS, kill_interval=kill_interval,
    )

    single, quad = passes
    scaling = (
        quad["requests_per_second"] / single["requests_per_second"]
        if single["requests_per_second"] else 0.0
    )
    import os

    return {
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "unique_instances": uniques,
        "cache_capacity_per_shard": CACHE_CAPACITY,
        "warm_cycles": cycles,
        "client_threads": CLIENT_THREADS,
        "deadline_seconds": DEADLINE_SECONDS,
        "max_expansions": MAX_EXPANSIONS,
        "scaling_mechanism": (
            "aggregate cache capacity (single-core host: the 4-shard "
            "win is the keyspace partition fitting per-shard LRUs, "
            "not parallel CPU)"
            if (os.cpu_count() or 1) <= 2 else "cache capacity + CPU"
        ),
        "passes": [
            {"pass": f"warm_{p['shards']}_shard", **p} for p in passes
        ] + [{"pass": "kill_soak", **soak}],
        "warm_1shard_requests_per_second": single["requests_per_second"],
        "warm_4shard_requests_per_second": quad["requests_per_second"],
        "warm_scaling_4x": scaling,
        "soak_availability": soak["availability"],
        "soak_errors": soak["errors"],
        "soak_lost_accepted_jobs": soak["lost_accepted_jobs"],
        "soak_shard_kills": soak["shard_kills"],
        "soak_p50_seconds": soak["p50_seconds"],
        "soak_p99_seconds": soak["p99_seconds"],
    }


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, no gate enforcement")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    report = run_router_bench(smoke=args.smoke)

    from repro.util.tables import render_table

    rows = [
        [p["pass"], p["requests"], p["wall_seconds"],
         p["requests_per_second"], p["p50_seconds"], p["p99_seconds"]]
        for p in report["passes"]
    ]
    print(render_table(
        ["pass", "requests", "seconds", "req/s", "p50", "p99"],
        rows, title="fleet routing: scaling and kill soak",
        float_fmt="{:.3f}",
    ))
    print(f"\nwarm scaling 1 -> 4 shards : "
          f"{report['warm_scaling_4x']:.2f}x (floor {SCALING_FLOOR}x; "
          f"{report['scaling_mechanism']})")
    print(f"kill-soak availability     : "
          f"{report['soak_availability']:.3f} across "
          f"{report['soak_shard_kills']} shard SIGKILL(s) "
          f"(floor {AVAILABILITY_FLOOR})")
    print(f"lost accepted jobs         : "
          f"{report['soak_lost_accepted_jobs']} (must be 0); "
          f"{report['soak_errors']} unanswered request(s)")

    entry = {
        "bench": "router",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        **report,
    }
    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    if args.smoke:
        return 0
    failed = False
    if report["warm_scaling_4x"] < SCALING_FLOOR:
        print("FAIL: 4-shard warm throughput below the scaling floor",
              file=sys.stderr)
        failed = True
    if report["soak_availability"] < AVAILABILITY_FLOOR:
        print("FAIL: kill-soak availability below the floor",
              file=sys.stderr)
        failed = True
    if report["soak_lost_accepted_jobs"] != 0:
        print("FAIL: accepted jobs were lost during the kill soak",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
