"""Microbenchmark: search-state generation throughput.

Measures states generated per second for the exact per-candidate hot
path of every engine — EST + duplicate-key preview
(``child_signature``), CLOSED-set probe, and child construction
(``extend``) — on layered random instances of 20/50/100 nodes, for both
state representations:

* ``delta`` — the production delta-encoded states with incremental
  Zobrist signatures (:class:`repro.schedule.partial.PartialSchedule`);
* ``tuple`` — the pre-refactor fully-materialized reference states
  (:class:`repro.schedule.partial_reference.ReferencePartialSchedule`).

The driver is a depth-first walk with duplicate detection, i.e. the
same candidate stream a B&B engine would push, minus cost evaluation —
isolating the state-layer cost the delta refactor targets.

Run directly for a human-readable table::

    PYTHONPATH=src python benchmarks/bench_states_micro.py

or use ``benchmarks/run_states_bench.py`` to append machine-readable
results (and the 100-node speedup gate) to ``BENCH_states.json``.
"""

from __future__ import annotations

import time

from repro.graph.generators.layered import layered_random_graph
from repro.graph.taskgraph import TaskGraph
from repro.schedule.partial import PartialSchedule
from repro.schedule.partial_reference import ReferencePartialSchedule
from repro.search.dedup import SignatureSet
from repro.system.processors import ProcessorSystem

__all__ = [
    "INSTANCE_SIZES",
    "make_instance",
    "generate_states",
    "measure",
    "run_suite",
]

#: (label, num_layers, width) — v = layers × width.
INSTANCE_SIZES: tuple[tuple[int, int, int], ...] = (
    (20, 5, 4),
    (50, 10, 5),
    (100, 20, 5),
)

STATE_CLASSES = {
    "delta": PartialSchedule,
    "tuple": ReferencePartialSchedule,
}


def make_instance(
    num_layers: int, width: int, num_pes: int = 4, seed: int = 7
) -> tuple[TaskGraph, ProcessorSystem]:
    """Deterministic layered instance used by every measurement."""
    graph = layered_random_graph(
        num_layers, width, edge_prob=0.5, skip_prob=0.1, ccr=1.0, seed=seed
    )
    return graph, ProcessorSystem.fully_connected(num_pes)


def generate_states(
    graph: TaskGraph,
    system: ProcessorSystem,
    state_cls: type,
    limit: int,
) -> int:
    """Depth-first candidate generation with duplicate detection.

    Every candidate pays exactly one ``child_signature`` (EST + key
    preview) and one CLOSED probe; every survivor additionally pays one
    ``extend``.  Returns the number of states constructed.
    """
    num_pes = system.num_pes
    root = state_cls.empty(graph, system)
    seen = SignatureSet()
    seen.add(root.dedup_key)
    stack = [root]
    generated = 0
    while stack and generated < limit:
        state = stack.pop()
        for node in state.ready_nodes():
            for pe in range(num_pes):
                key, start = state.child_signature(node, pe)
                if seen.check_add(key):
                    continue
                stack.append(state.extend(node, pe, _start=start, _sig=key))
                generated += 1
                if generated >= limit:
                    return generated
    return generated


def measure(
    graph: TaskGraph,
    system: ProcessorSystem,
    state_cls: type,
    *,
    limit: int = 20_000,
    repeats: int = 3,
) -> dict:
    """Best-of-``repeats`` states/second for one representation."""
    best = 0.0
    generated = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        generated = generate_states(graph, system, state_cls, limit)
        elapsed = time.perf_counter() - t0
        rate = generated / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return {"states": generated, "states_per_sec": round(best, 1)}


def run_suite(*, limit: int = 20_000, repeats: int = 3, num_pes: int = 4) -> dict:
    """Measure every (size × representation) cell.

    Returns ``{"sizes": {v: {"delta": {...}, "tuple": {...},
    "speedup": float}}, ...}`` — the shape ``run_states_bench.py``
    appends to ``BENCH_states.json``.
    """
    sizes: dict[str, dict] = {}
    for v, layers, width in INSTANCE_SIZES:
        graph, system = make_instance(layers, width, num_pes=num_pes)
        assert graph.num_nodes == v
        cell: dict[str, object] = {}
        for name, cls in STATE_CLASSES.items():
            cell[name] = measure(graph, system, cls, limit=limit, repeats=repeats)
        cell["speedup"] = round(
            cell["delta"]["states_per_sec"] / cell["tuple"]["states_per_sec"], 2
        )
        sizes[str(v)] = cell
    return {"num_pes": num_pes, "limit": limit, "repeats": repeats, "sizes": sizes}


def _render(report: dict) -> str:
    lines = [
        "state-generation microbenchmark (extend + signature + duplicate probe)",
        f"{'v':>5} {'delta states/s':>16} {'tuple states/s':>16} {'speedup':>9}",
    ]
    for v, cell in report["sizes"].items():
        lines.append(
            f"{v:>5} {cell['delta']['states_per_sec']:>16,.0f} "
            f"{cell['tuple']['states_per_sec']:>16,.0f} "
            f"{cell['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(_render(run_suite()))
