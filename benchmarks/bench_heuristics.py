"""Benchmark for experiment E5: heuristic deviation from optimal.

The measurement the paper's introduction motivates: with optima in hand,
how far are the polynomial list-scheduling heuristics from optimal?
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.experiments.heuristics import run_heuristic_comparison
from repro.experiments.runner import OptimumCache


def test_heuristic_deviation_report(benchmark, bench_suite, bench_config, results_dir):
    cache = OptimumCache(config=bench_config)
    result = benchmark.pedantic(
        run_heuristic_comparison,
        args=(bench_suite, bench_config, cache),
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, "heuristics.txt", result.render())
    for row in result.rows:
        if row.optimal_proven:
            assert row.deviation_pct >= -1e-9
