"""Benchmark gate for the preprocessing pass (equivalence merging).

Takes the §4.1 random graphs at v ∈ {12, 14, 16}, CCR ∈ {0.1, 1.0, 10.0}
and plants three *near-interchangeable* clones of one task: each clone
copies the target's weight and in/out edges exactly, then receives a
redundant transitive shortcut from a grandparent with a *different*
(provably removable) cost.  The raw graph therefore contains no
Definition-3 equivalence group at all — the shortcut costs split the
clones — while the preprocessed graph removes the shortcuts and merges
target plus clones into one class.  That is precisely the compounding
effect the pass exists for: transitive reduction unlocking equivalence
pruning that the in-search rule cannot see.

Both arms search the *same* cloned instance with serial A* on a 2-PE
fully-connected homogeneous target:

* **off** — ``PruningConfig.all()`` on the raw cloned graph;
* **on** — ``preprocess_instance`` then A* on the reduced graph with
  the implied pruning overrides (root symmetry), schedule restored to
  raw node space.

Measured claims (deterministic expansion counts, reproduce anywhere):

* **Gate: mean expansion reduction ≥ 1.5x** over rows where the
  preprocessed search proves optimality.  Rows where the baseline trips
  the budget while the treatment proves count ``budget / on_expanded``
  as a conservative lower bound; rows where the treatment itself trips
  are excluded from the gate but still reported.
* **Proven-equal makespans**: wherever both arms prove, the restored
  makespan must exactly equal the baseline's (integer §4.1 weights).
* **The merge must actually happen**: every row reports
  ``preprocess_edges_removed``/``preprocess_equivalence_groups``, and
  the run fails if no row merged a class.

Usage::

    PYTHONPATH=src python benchmarks/bench_preprocess.py [--smoke]
        [--budget N] [--out PATH]

``--smoke`` runs the single v=16/CCR=1.0 row with a small budget and
skips the ≥ 1.5x gate (CI mode).  Exits non-zero on any gate miss.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graph.taskgraph import TaskGraph  # noqa: E402
from repro.schedule.preprocess import preprocess_instance  # noqa: E402
from repro.search.astar import astar_schedule  # noqa: E402
from repro.search.pruning import PruningConfig  # noqa: E402
from repro.system.processors import ProcessorSystem  # noqa: E402
from repro.util.timing import Budget  # noqa: E402
from repro.workloads.suite import paper_suite  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_preprocess.json"

#: Acceptance floor on the mean expansion reduction (preprocess on/off).
GATE_MEAN_REDUCTION = 1.5
PES = 2
CLONES = 3

FULL_SIZES = (12, 14, 16)
FULL_CCRS = (0.1, 1.0, 10.0)
FULL_BUDGET = 500_000

SMOKE_SIZES = (16,)
SMOKE_CCRS = (1.0,)
SMOKE_BUDGET = 50_000


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _clone_with_shortcuts(base: TaskGraph, clones: int = CLONES) -> TaskGraph:
    """Append near-interchangeable clones of one task.

    Picks the first ``a -> p -> t`` grandparent chain with no direct
    ``(a, t)`` edge; clone ``i`` copies ``t`` exactly and adds the
    shortcut ``(a, clone_i)`` with cost ``i`` — distinct per clone (so
    the raw graph has no equivalence group) yet always removable, since
    ``i < clones <= w(p) + min(c(a, p), c(p, t))`` for the paper's
    integer weights (>= 1).

    Raises
    ------
    ValueError
        When the base graph has no usable grandparent chain.
    """
    edges = base.edges
    for t in range(base.num_nodes):
        for p in base.preds(t):
            for a in base.preds(p):
                if (a, t) in edges:
                    continue
                bound = base.weight(p) + min(
                    edges[(a, p)], edges[(p, t)]
                )
                if clones - 1 <= bound:
                    v = base.num_nodes
                    weights = list(base.weights) + [base.weight(t)] * clones
                    new_edges = dict(edges)
                    for i in range(clones):
                        c = v + i
                        for pred, cost in base.pred_edges(t):
                            new_edges[(pred, c)] = cost
                        for succ, cost in base.succ_edges(t):
                            new_edges[(c, succ)] = cost
                        new_edges[(a, c)] = float(i)
                    return TaskGraph(
                        weights, new_edges, name=f"{base.name}+clones"
                    )
    raise ValueError(f"{base.name}: no grandparent chain for clone planting")


def _measure_off(graph, system, *, budget):
    t0 = time.perf_counter()
    res = astar_schedule(
        graph, system, pruning=PruningConfig.all(),
        budget=Budget(max_expanded=budget),
    )
    return {
        "makespan": res.length,
        "expanded": res.stats.states_expanded,
        "proven": res.optimal,
        "seconds": round(time.perf_counter() - t0, 3),
        "equivalence_skips": res.stats.pruning.equivalence_skips,
    }


def _measure_on(graph, system, *, budget):
    t0 = time.perf_counter()
    pre = preprocess_instance(graph, system)
    res = astar_schedule(
        pre.graph, system,
        pruning=PruningConfig(**pre.pruning_overrides()),
        budget=Budget(max_expanded=budget),
    )
    restored = pre.restore(res.schedule) if res.schedule is not None else None
    return {
        "makespan": restored.length if restored is not None else None,
        "expanded": res.stats.states_expanded,
        "proven": res.optimal,
        "seconds": round(time.perf_counter() - t0, 3),
        "equivalence_skips": res.stats.pruning.equivalence_skips,
        "symmetry_skips": res.stats.pruning.symmetry_skips,
        **pre.stats,
    }


def run_rows(sizes, ccrs, budget) -> list[dict]:
    system = ProcessorSystem.fully_connected(PES)
    rows = []
    for size in sizes:
        for ccr in ccrs:
            inst = paper_suite(sizes=(size,), ccrs=(ccr,)).instances[0]
            graph = _clone_with_shortcuts(inst.graph)
            off = _measure_off(graph, system, budget=budget)
            on = _measure_on(graph, system, budget=budget)
            row = {
                "instance": f"v{size}-ccr{ccr}",
                "v": graph.num_nodes,
                "ccr": ccr,
                "off": off,
                "on": on,
            }
            if on["proven"]:
                row["ratio"] = round(off["expanded"] / on["expanded"], 3)
                row["ratio_capped"] = not off["proven"]
                row["in_gate"] = True
            else:
                row["ratio"] = None
                row["ratio_capped"] = False
                row["in_gate"] = False
            rows.append(row)
    return rows


def evaluate(rows, *, smoke: bool) -> list[str]:
    """Gate checks; returns a list of failure messages (empty = pass)."""
    failures: list[str] = []
    for row in rows:
        off, on = row["off"], row["on"]
        if off["proven"] and on["proven"] and off["makespan"] != on["makespan"]:
            failures.append(
                f"{row['instance']}: proven makespans differ "
                f"(off {off['makespan']} != on {on['makespan']})"
            )
        if on["proven"] and not off["proven"] and (
            on["makespan"] > off["makespan"]
        ):
            failures.append(
                f"{row['instance']}: preprocessed search proved "
                f"{on['makespan']} worse than baseline incumbent "
                f"{off['makespan']}"
            )
    if not any(
        row["on"]["preprocess_equivalence_groups"] > 0 for row in rows
    ):
        failures.append("preprocessing never merged an equivalence class")
    gate_rows = [r for r in rows if r["in_gate"]]
    if not gate_rows:
        failures.append("no instance completed under preprocessing")
        return failures
    mean_reduction = sum(r["ratio"] for r in gate_rows) / len(gate_rows)
    if not smoke and mean_reduction < GATE_MEAN_REDUCTION:
        failures.append(
            f"mean expansion reduction {mean_reduction:.2f}x < "
            f"{GATE_MEAN_REDUCTION}x floor"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one small instance, small budget, no 1.5x "
                             "gate (CI mode)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-search expansion budget")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help="results file (JSON array)")
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    ccrs = SMOKE_CCRS if args.smoke else FULL_CCRS
    budget = args.budget or (SMOKE_BUDGET if args.smoke else FULL_BUDGET)

    rows = run_rows(sizes, ccrs, budget)
    gate_rows = [r for r in rows if r["in_gate"]]
    mean_reduction = (
        sum(r["ratio"] for r in gate_rows) / len(gate_rows)
        if gate_rows else None
    )
    failures = evaluate(rows, smoke=args.smoke)

    entry = {
        "bench": "preprocess",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "smoke": args.smoke,
        "config": {
            "pes": PES, "clones": CLONES, "sizes": list(sizes),
            "ccrs": list(ccrs), "budget": budget,
        },
        "rows": rows,
        "mean_reduction": (
            round(mean_reduction, 3) if mean_reduction is not None else None
        ),
        "gate": GATE_MEAN_REDUCTION,
        "pass": not failures,
    }
    existing: list = []
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} is not valid JSON; starting fresh",
                  file=sys.stderr)
    existing.append(entry)
    args.out.write_text(json.dumps(existing, indent=2) + "\n")

    for row in rows:
        off, on = row["off"], row["on"]
        ratio = (
            f"{row['ratio']:>7.2f}x{'+' if row['ratio_capped'] else ' '}"
            if row["ratio"] is not None else "      --"
        )
        print(
            f"{row['instance']:>14}: off {off['expanded']:>8,} exp "
            f"({'proven' if off['proven'] else 'budget'})"
            f"  on {on['expanded']:>8,} exp "
            f"({'proven' if on['proven'] else 'budget'}, "
            f"{on['preprocess_edges_removed']} edges removed, "
            f"{on['preprocess_equivalence_groups']} groups)"
            f"  reduction {ratio}"
        )
    if mean_reduction is not None:
        print(f"mean expansion reduction: {mean_reduction:.2f}x "
              f"(gate {GATE_MEAN_REDUCTION}x"
              f"{', smoke: not enforced' if args.smoke else ''})")
    print(f"appended entry #{len(existing)} to {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
