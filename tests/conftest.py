"""Shared fixtures for the test suite, plus a hand-rolled per-test
wall-clock alarm (``@pytest.mark.timeout(seconds)``).

The chaos suite (tests/chaos/) exercises hang scenarios — a wedged
cache, a stalled worker — where the failure mode *is* a test that never
returns.  pytest-timeout is not part of this environment's toolchain,
so the marker is implemented here with ``signal.setitimer``: the alarm
fires in the main thread, interrupting the blocked test with a clear
diagnostic instead of wedging CI.  Limits: main-thread tests on
platforms with SIGALRM (the marker is a no-op elsewhere — tests still
pass, they just lose the hang guard).  If the real pytest-timeout
plugin is ever installed, it takes over and this shim stands down.
"""

from __future__ import annotations

import signal

import pytest

from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.system.processors import ProcessorSystem

_HAS_ALARM = hasattr(signal, "SIGALRM")


def _timeout_plugin_active(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or not marker.args
        or not _HAS_ALARM
        or _timeout_plugin_active(item.config)
    ):
        yield
        return
    seconds = float(marker.args[0])

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s timeout marker (hung?)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def fig1_graph():
    """The paper's Figure-1(a) example DAG."""
    return paper_example_dag()


@pytest.fixture
def fig1_system():
    """The paper's Figure-1(b) 3-processor ring."""
    return paper_example_system()


@pytest.fixture
def clique2():
    """Two fully-connected homogeneous PEs."""
    return ProcessorSystem.fully_connected(2)


@pytest.fixture
def clique3():
    """Three fully-connected homogeneous PEs."""
    return ProcessorSystem.fully_connected(3)


@pytest.fixture
def small_random_graphs():
    """A deterministic batch of small §4.1 random graphs (≤ 8 nodes)."""
    return [
        paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        for v, ccr, seed in [
            (5, 0.5, 1),
            (6, 1.0, 2),
            (7, 2.0, 3),
            (8, 0.1, 4),
            (8, 10.0, 5),
            (6, 5.0, 6),
        ]
    ]
