"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.system.processors import ProcessorSystem


@pytest.fixture
def fig1_graph():
    """The paper's Figure-1(a) example DAG."""
    return paper_example_dag()


@pytest.fixture
def fig1_system():
    """The paper's Figure-1(b) 3-processor ring."""
    return paper_example_system()


@pytest.fixture
def clique2():
    """Two fully-connected homogeneous PEs."""
    return ProcessorSystem.fully_connected(2)


@pytest.fixture
def clique3():
    """Three fully-connected homogeneous PEs."""
    return ProcessorSystem.fully_connected(3)


@pytest.fixture
def small_random_graphs():
    """A deterministic batch of small §4.1 random graphs (≤ 8 nodes)."""
    return [
        paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        for v, ccr, seed in [
            (5, 0.5, 1),
            (6, 1.0, 2),
            (7, 2.0, 3),
            (8, 0.1, 4),
            (8, 10.0, 5),
            (6, 5.0, 6),
        ]
    ]
