"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("example", "table1", "figure6", "figure7", "generate"):
            args = parser.parse_args([cmd] if cmd in ("example",) else [cmd])
            assert args.command == cmd


class TestExample:
    def test_runs_and_prints_14(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "14" in out
        assert "b-level" in out
        assert "GOAL" in out


class TestGenerate:
    def test_emits_valid_json(self, capsys):
        assert main(["generate", "--nodes", "12", "--ccr", "0.5", "--seed", "9"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["weights"]) == 12


class TestSchedule:
    def test_astar_on_generated_file(self, tmp_path, capsys):
        main(["generate", "--nodes", "8", "--seed", "1"])
        data = capsys.readouterr().out
        path = tmp_path / "g.json"
        path.write_text(data)
        assert main(["schedule", str(path), "--pes", "3"]) == 0
        out = capsys.readouterr().out
        assert "optimal: True" in out
        assert "length:" in out

    @pytest.mark.parametrize("algo", ["bnb", "focal", "list"])
    def test_other_algorithms(self, algo, tmp_path, capsys):
        main(["generate", "--nodes", "6", "--seed", "2"])
        data = capsys.readouterr().out
        path = tmp_path / "g.json"
        path.write_text(data)
        assert main(["schedule", str(path), "--pes", "2", "--algorithm", algo]) == 0

    def test_cost_and_pruning_flags(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        main(["generate", "--nodes", "8", "--seed", "3"])
        path.write_text(capsys.readouterr().out)
        for cost in ("combined", "load"):
            assert main(["schedule", str(path), "--pes", "2",
                         "--cost", cost]) == 0
            assert "optimal: True" in capsys.readouterr().out
        assert main(["schedule", str(path), "--pes", "2",
                     "--pruning", "fixed-order"]) == 0
        assert "optimal: True" in capsys.readouterr().out
        assert main(["solve", str(path), "--pes", "2",
                     "--cost", "combined"]) == 0
        assert "certificate: proven" in capsys.readouterr().out

    def test_cost_choices_match_registry(self):
        """The parser's literal cost list must track the registry —
        a newly registered cost function must be reachable from the
        CLI, and a removed one must not linger in the choices."""
        from repro.cli import _COST_NAMES
        from repro.search.costs import COST_FUNCTIONS

        assert sorted(_COST_NAMES) == sorted(COST_FUNCTIONS)


class TestExperimentCommands:
    @pytest.mark.slow
    def test_table1_tiny(self, capsys):
        code = main([
            "table1", "--sizes", "10", "--ccrs", "1.0",
            "--max-expansions", "20000", "--max-seconds", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure6_tiny(self, capsys):
        code = main([
            "figure6", "--sizes", "10", "--ccrs", "10.0",
            "--max-expansions", "20000", "--max-seconds", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "16 PPEs" in out

    def test_figure7_tiny(self, capsys):
        code = main([
            "figure7", "--sizes", "10", "--ccrs", "1.0",
            "--max-expansions", "20000", "--max-seconds", "10",
        ])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_heuristics_tiny(self, capsys):
        code = main([
            "heuristics", "--sizes", "10", "--ccrs", "1.0",
            "--max-expansions", "20000", "--max-seconds", "10",
        ])
        assert code == 0
        assert "deviation" in capsys.readouterr().out
