"""Exhaustive-oracle test tier.

Every preprocessing transformation in :mod:`repro.schedule.preprocess`
claims *semantic equivalence*: the reduced instance has exactly the
optimal makespan of the original, and every schedule of the reduced
instance maps back to a feasible original-space schedule of the same
length.  This tier checks each claim against the strongest ground truth
available — exhaustive enumeration of the scheduling space — on
instances small enough (v <= 7 plus clones) for that enumeration to be
tractable.  A transformation whose proof breaks shows up here as a hard
makespan discrepancy, not a statistical regression.

``exhaustive_optimal`` is the shared oracle; ``test_counterexamples``
pins the instances where a *plausible-but-wrong* variant of each rule
changes the optimum, so the gates that keep those variants out stay
load-bearing.
"""

from repro.graph.taskgraph import TaskGraph
from repro.search.enumerate import enumerate_optimal
from repro.system.processors import ProcessorSystem

__all__ = ["exhaustive_optimal"]


def exhaustive_optimal(graph: TaskGraph, system: ProcessorSystem) -> float:
    """Exhaustively-enumerated optimal makespan (the ground truth).

    A thin wrapper over :func:`repro.search.enumerate.enumerate_optimal`
    so every oracle test states its ground truth the same way; keeps the
    enumerator's instance-size limits (v <= 12 with dedup).
    """
    return enumerate_optimal(graph, system).length
