"""Pinned counterexamples: the instances that keep the gates honest.

Each fixture below is a graph/system pair where a *plausible-but-wrong*
variant of a preprocessing rule changes the exhaustively-enumerated
optimum.  They were found by property search while designing the pass
and are pinned here (in the style of
``tests/search/test_fixed_order.py``) so the self-gates that exclude
those variants stay load-bearing:

* chain contraction on p > 1 is NOT makespan-preserving — not with
  zero communication, not with communication large enough to force
  colocation, not even with a PE per task.  The failure mode is always
  PE-occupancy pressure: the optimal schedule splits or delays the
  chain so another task can use the processor, and contraction forces
  the chain contiguous.
* transitive-edge removal is NOT sound under distance-scaled links:
  the direct edge pays hop-scaled cost while the relay path pays
  shorter hops, so the witness inequality no longer implies the
  constraint.
* Definition-3 equivalence must compare edge *costs*, not just edge
  sets: siblings differing in a single communication cost are not
  interchangeable.
"""

import pytest

from repro.graph.taskgraph import TaskGraph
from repro.schedule.preprocess import (
    _contract,
    node_equivalence_classes,
    preprocess_instance,
    removable_transitive_edges,
)
from repro.schedule.validate import validate_schedule
from repro.search.astar import astar_schedule
from repro.search.pruning import PruningConfig
from repro.system import topology as topo
from repro.system.processors import ProcessorSystem
from tests.oracle import exhaustive_optimal


def _assert_contraction_hazard(graph, system, optimum):
    """Contracting the graph's chains must RAISE the optimum here, and
    the pass must therefore keep the graph intact (p > 1), exposing the
    contraction only as a ChainPlan upper-bound probe."""
    assert exhaustive_optimal(graph, system) == pytest.approx(optimum)
    contracted, _blocks = _contract(graph)
    assert contracted.num_nodes < graph.num_nodes
    assert exhaustive_optimal(contracted, system) > optimum + 1e-9

    pre = preprocess_instance(graph, system)
    assert pre.graph.num_nodes == graph.num_nodes
    assert pre.chain_plan is not None
    probe = astar_schedule(pre.chain_plan.graph, system)
    unfolded = pre.chain_plan.unfold(probe.schedule, pre.graph)
    validate_schedule(unfolded)
    assert unfolded.length >= optimum - 1e-9


class TestChainContractionHazards:
    def test_basic_occupancy_pressure(self):
        """Chain 0 -> 2 (comm 0): optimally task 2 waits while PE runs
        task 4's predecessors; contraction forces it contiguous with 0
        and the optimum rises from 7 to 8."""
        graph = TaskGraph(
            [4, 3, 2, 2, 1],
            {(0, 2): 0, (1, 4): 4, (2, 4): 2},
            name="contract-basic",
        )
        _assert_contraction_hazard(graph, ProcessorSystem.fully_connected(2), 7.0)

    def test_zero_communication_is_not_a_fix(self):
        """A tempting gate — "contract only zero-cost links" — still
        fails: the chain member must be interleaved with other work."""
        graph = TaskGraph(
            [2, 4, 3, 2, 1, 3],
            {(0, 3): 0, (1, 4): 0, (1, 5): 0, (2, 4): 4, (2, 5): 0, (3, 4): 4},
            name="contract-zero-comm",
        )
        _assert_contraction_hazard(graph, ProcessorSystem.fully_connected(3), 7.0)

    def test_large_communication_is_not_a_fix(self):
        """Another tempting gate — "contract when the link cost exceeds
        the member's weight, so they colocate anyway" — also fails:
        colocated is not the same as contiguous."""
        graph = TaskGraph(
            [2, 1, 1, 4, 2],
            {(0, 4): 0, (1, 2): 1, (2, 4): 1},
            name="contract-heavy-comm",
        )
        _assert_contraction_hazard(graph, ProcessorSystem.fully_connected(2), 5.0)

    def test_spare_pe_per_task_is_not_a_fix(self):
        """Even with more PEs than tasks the hazard survives — the chain
        tail must sometimes start late to receive a remote message, and
        contiguity forbids the gap."""
        graph = TaskGraph(
            [1, 1, 1, 1, 1, 3],
            {(0, 1): 4, (0, 2): 4, (0, 3): 0, (0, 5): 0, (2, 3): 2, (3, 4): 0},
            name="contract-many-pes",
        )
        _assert_contraction_hazard(graph, ProcessorSystem.fully_connected(6), 4.0)

    def test_forced_colocation_is_not_a_fix(self):
        """Communication larger than the total work forces the pair onto
        one PE in every optimal schedule — and contraction still loses,
        because the pair need not be back-to-back."""
        graph = TaskGraph(
            [3, 1, 4, 2, 4, 4],
            {(0, 5): 18, (1, 2): 1, (1, 3): 2, (2, 4): 4, (3, 4): 0},
            name="contract-colocated",
        )
        _assert_contraction_hazard(graph, ProcessorSystem.fully_connected(2), 9.0)

    def test_contraction_changes_what_removal_does_not(self):
        """The minimal split fixture: transitive removal has nothing to
        remove (no transitive edge exists), yet contracting the lone
        chain 2 -> 3 (comm 0) raises the optimum from 5 to 6 — the two
        reductions are independent hazards and must be gated
        independently."""
        graph = TaskGraph([2, 4, 1, 3], {(2, 3): 0}, name="contract-only")
        system = ProcessorSystem.fully_connected(2)
        assert removable_transitive_edges(graph, system) == ()
        _assert_contraction_hazard(graph, system, 5.0)

    def test_single_pe_contracts_exactly(self):
        """The one regime where contraction IS sound: on a single PE the
        same fixture contracts and the optimum is untouched."""
        graph = TaskGraph([2, 4, 1, 3], {(2, 3): 0}, name="contract-only")
        system = ProcessorSystem.fully_connected(1)
        pre = preprocess_instance(graph, system)
        assert pre.graph.num_nodes < graph.num_nodes
        result = astar_schedule(pre.graph, system)
        assert result.length == pytest.approx(exhaustive_optimal(graph, system))
        validate_schedule(pre.restore(result.schedule))


class TestTransitiveRemovalHazards:
    #: Weights/edges where edge (0, 4) satisfies the uniform-communication
    #: witness condition via m = 1 (w(1)=3, min(c(0,1), c(1,4)) = 0, and
    #: 3 + 0 >= c(0, 4) = 2) — removable under uniform links.
    _WEIGHTS = [3, 3, 4, 2, 2, 2]
    _EDGES = {
        (0, 1): 6, (0, 2): 3, (0, 4): 2, (1, 3): 2, (1, 4): 0,
        (1, 5): 4, (2, 5): 4, (3, 5): 2, (4, 5): 3,
    }

    def test_condition_fires_under_uniform_links(self):
        graph = TaskGraph(self._WEIGHTS, self._EDGES, name="ds-hazard")
        uniform = ProcessorSystem.fully_connected(3)
        assert (0, 4) in removable_transitive_edges(graph, uniform)
        # ... and there it is genuinely sound:
        kept = {e: c for e, c in self._EDGES.items() if e != (0, 4)}
        reduced = TaskGraph(self._WEIGHTS, kept, name="ds-hazard-reduced")
        assert exhaustive_optimal(reduced, uniform) == pytest.approx(
            exhaustive_optimal(graph, uniform)
        )

    def test_distance_scaled_gate_is_load_bearing(self):
        """On a 3-PE chain with hop-scaled messages, removing the very
        same edge drops the optimum from 14 to 13: the relay through
        task 1 no longer implies the direct constraint because its two
        messages can take shorter hops.  The pass must remove nothing."""
        graph = TaskGraph(self._WEIGHTS, self._EDGES, name="ds-hazard")
        system = ProcessorSystem(
            3, topo.chain_links(3), distance_scaled=True, name="chain-3-ds"
        )
        assert exhaustive_optimal(graph, system) == pytest.approx(14.0)
        kept = {e: c for e, c in self._EDGES.items() if e != (0, 4)}
        reduced = TaskGraph(self._WEIGHTS, kept, name="ds-hazard-reduced")
        assert exhaustive_optimal(reduced, system) == pytest.approx(13.0)

        pre = preprocess_instance(graph, system)
        assert pre.removed_edges == ()
        assert pre.graph.edges == graph.edges
        assert not pre.root_symmetry


class TestNearInterchangeableHazard:
    def test_single_cost_difference_keeps_siblings_apart(self):
        """Tasks 0 and 1: same weight, no parents, same single child —
        but c(0,2) = 0 vs c(1,2) = 5.  A bucket key that compared edge
        SETS without their costs would merge them; the pair is genuinely
        NOT interchangeable (swapping their placements in an optimal
        schedule breaks feasibility), so the Definition-3 key must keep
        them apart."""
        graph = TaskGraph([2, 2, 2], {(0, 2): 0, (1, 2): 5}, name="near-pair")
        system = ProcessorSystem.fully_connected(2)

        assert all(len(g) == 1 for g in node_equivalence_classes(graph))
        # The cost-blind variant WOULD merge them:
        blind = {}
        for n in range(graph.num_nodes):
            key = (graph.weight(n), graph.preds(n), graph.succs(n))
            blind.setdefault(key, []).append(n)
        assert [0, 1] in blind.values()

        # Non-interchangeability, concretely: this optimal schedule is
        # feasible (task 2 rides task 1's PE; task 0's message is free)...
        from repro.schedule.schedule import Schedule
        from repro.schedule.validate import schedule_violations

        good = Schedule(
            graph, system, {0: (1, 0.0), 1: (0, 0.0), 2: (0, 2.0)}
        )
        assert schedule_violations(good) == []
        assert good.length == pytest.approx(exhaustive_optimal(graph, system))
        # ... and swapping the "interchangeable" pair is not: task 2 now
        # waits on the 5-unit message from the remote PE.
        swapped = Schedule(
            graph, system, {0: (0, 0.0), 1: (1, 0.0), 2: (0, 2.0)}
        )
        assert schedule_violations(swapped) != []

        # With the correct key, full pruning still matches the oracle.
        result = astar_schedule(graph, system, pruning=PruningConfig.all())
        assert result.length == pytest.approx(exhaustive_optimal(graph, system))
