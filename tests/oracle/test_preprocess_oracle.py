"""Preprocessing vs. the exhaustive oracle.

Property tests that every transformation in
:mod:`repro.schedule.preprocess` preserves the exhaustively-enumerated
optimal makespan and that :meth:`PreprocessResult.restore` round-trips
reduced-space schedules into feasible original-space schedules of the
same length.  Instance strategies deliberately include the regimes
where rules must self-gate (heterogeneous speeds, distance-scaled
links) and — via ``equivalence_instances`` — graphs that actually
contain Definition-3 equivalence groups, which the uniform-cost
strategies essentially never emit.
"""

import random

import pytest
from hypothesis import given, settings

from repro.graph.taskgraph import TaskGraph
from repro.schedule.preprocess import (
    PreprocessConfig,
    node_equivalence_classes,
    preprocess_instance,
)
from repro.schedule.validate import validate_schedule
from repro.search.astar import astar_schedule
from repro.search.pruning import PruningConfig
from repro.service.portfolio import portfolio_schedule, solve_auto
from repro.system.processors import ProcessorSystem
from tests.oracle import exhaustive_optimal
from tests.strategies import (
    equivalence_instances,
    processor_systems,
    scheduling_instances,
    task_graphs,
)

_SETTINGS = settings(max_examples=50, deadline=None)


def _solve_preprocessed(graph, system):
    """The engine-facing preprocessing recipe: search the reduced graph
    with the implied pruning overrides, restore to original space."""
    pre = preprocess_instance(graph, system)
    result = astar_schedule(
        pre.graph, system, pruning=PruningConfig(**pre.pruning_overrides())
    )
    return pre, result


@_SETTINGS
@given(scheduling_instances(max_nodes=6, max_pes=3))
def test_transitive_removal_preserves_optimum(instance):
    """Edge removal alone (chain contraction off) must not move the
    exhaustive optimum — including on heterogeneous-speed systems,
    where the witness condition divides by the fastest speed."""
    graph, system = instance
    pre = preprocess_instance(
        graph, system, PreprocessConfig(chain_contraction=False)
    )
    assert exhaustive_optimal(pre.graph, system) == pytest.approx(
        exhaustive_optimal(graph, system)
    )


@_SETTINGS
@given(scheduling_instances(max_nodes=6, max_pes=3))
def test_preprocessed_search_matches_oracle_and_restores(instance):
    """End-to-end recipe: reduced-space search finds the original
    optimum and the restored schedule is feasible with the same length
    in original node space."""
    graph, system = instance
    reference = exhaustive_optimal(graph, system)
    pre, result = _solve_preprocessed(graph, system)
    assert result.optimal
    assert result.length == pytest.approx(reference)
    restored = pre.restore(result.schedule)
    validate_schedule(restored)
    assert restored.graph == graph
    assert restored.length == pytest.approx(result.length)
    assert len(restored.tasks) == graph.num_nodes


@_SETTINGS
@given(task_graphs(max_nodes=5), processor_systems(max_pes=3, allow_distance_scaled=True))
def test_distance_scaled_self_gate(graph, system):
    """Under hop-scaled communication the removal proof breaks, so the
    pass must leave the edge set alone (and withhold the symmetry
    eligibility flag) — yet still solve the instance optimally."""
    pre, result = _solve_preprocessed(graph, system)
    if system.distance_scaled:
        assert pre.removed_edges == ()
        assert not pre.root_symmetry
    assert result.length == pytest.approx(exhaustive_optimal(graph, system))


@_SETTINGS
@given(equivalence_instances(max_nodes=5, max_pes=3))
def test_equivalence_groups_preserve_optimum(instance):
    """The strategy manufactures interchangeable clones by construction;
    expanding one representative per group must keep the optimum."""
    graph, system = instance
    assert any(len(g) > 1 for g in node_equivalence_classes(graph))
    reference = exhaustive_optimal(graph, system)
    pruned = astar_schedule(graph, system, pruning=PruningConfig.all())
    assert pruned.optimal
    assert pruned.length == pytest.approx(reference)
    pre, result = _solve_preprocessed(graph, system)
    assert result.length == pytest.approx(reference)
    validate_schedule(pre.restore(result.schedule))


@_SETTINGS
@given(scheduling_instances(max_nodes=6, max_pes=3))
def test_chain_plan_unfolds_to_feasible_upper_bound(instance):
    """On p > 1 contraction is only upper-bound-sound: solving the
    contracted companion and unfolding must give a *feasible* schedule
    of the reduced graph, same length, never below the true optimum."""
    graph, system = instance
    pre = preprocess_instance(graph, system)
    if pre.chain_plan is None:
        return
    plan = pre.chain_plan
    probe = astar_schedule(plan.graph, system)
    unfolded = plan.unfold(probe.schedule, pre.graph)
    validate_schedule(unfolded)
    assert unfolded.length == pytest.approx(probe.length)
    assert unfolded.length >= exhaustive_optimal(graph, system) - 1e-9


@_SETTINGS
@given(task_graphs(max_nodes=6))
def test_single_pe_contraction_is_exact(graph):
    """On one PE the makespan is total work for every order, so chain
    contraction is a true reduction; restore must unfold the blocks."""
    system = ProcessorSystem.fully_connected(1)
    reference = exhaustive_optimal(graph, system)
    pre, result = _solve_preprocessed(graph, system)
    assert result.length == pytest.approx(reference)
    restored = pre.restore(result.schedule)
    validate_schedule(restored)
    assert len(restored.tasks) == graph.num_nodes
    assert restored.length == pytest.approx(reference)


@_SETTINGS
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_root_symmetry_search_matches_oracle(instance):
    """The symmetry rule in isolation, on whatever system the strategy
    drew — the expander must self-gate on heterogeneous speeds."""
    graph, system = instance
    result = astar_schedule(
        graph, system, pruning=PruningConfig(root_symmetry=True)
    )
    assert result.length == pytest.approx(exhaustive_optimal(graph, system))


@_SETTINGS
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_service_entrypoints_match_oracle(instance):
    """``preprocess=True`` through the public service entry points."""
    graph, system = instance
    reference = exhaustive_optimal(graph, system)
    auto = solve_auto(graph, system, preprocess=True)
    assert auto.length == pytest.approx(reference)
    assert auto.schedule.graph == graph
    validate_schedule(auto.schedule)
    port = portfolio_schedule(graph, system, preprocess=True)
    assert port.optimal
    assert port.length == pytest.approx(reference)
    assert port.schedule.graph == graph
    validate_schedule(port.schedule)


@pytest.mark.slow
def test_exhaustive_sweep_v7():
    """The acceptance sweep: a fixed-seed population of v <= 7 instances
    across every model regime (1-3 PEs, four topologies, heterogeneous
    speeds, distance-scaled links), demanding zero makespan
    discrepancies between the preprocessed pipeline and exhaustive
    enumeration."""
    rng = random.Random(20260808)
    discrepancies = []
    for trial in range(150):
        v = rng.randint(2, 7)
        weights = [rng.randint(1, 20) for _ in range(v)]
        edges = {}
        for u in range(v):
            for w in range(u + 1, v):
                if rng.random() < 0.4:
                    edges[(u, w)] = rng.randint(0, 20)
        graph = TaskGraph(weights, edges, name=f"sweep-{trial}")
        p = rng.randint(1, 3)
        factory = rng.choice(
            [
                ProcessorSystem.fully_connected,
                ProcessorSystem.ring,
                ProcessorSystem.chain,
                ProcessorSystem.star,
            ]
        )
        speeds = (
            [rng.choice([0.5, 1.0, 2.0]) for _ in range(p)]
            if rng.random() < 0.3
            else None
        )
        system = factory(p, speeds=speeds)
        if rng.random() < 0.3:
            system = ProcessorSystem(
                p, system.links, speeds, distance_scaled=True
            )
        reference = exhaustive_optimal(graph, system)
        pre, result = _solve_preprocessed(graph, system)
        restored = pre.restore(result.schedule)
        validate_schedule(restored)
        if abs(restored.length - reference) > 1e-9:
            discrepancies.append((trial, restored.length, reference))
    assert discrepancies == []
