"""Documentation link and path checker (tier-1, fast).

Every relative markdown link, and every backticked repo-relative file
path, in the tracked documentation (``README.md``, ``DESIGN.md``,
``ROADMAP.md``, ``docs/*.md``) must resolve to a real file or
directory — so a future refactor that moves or renames a module breaks
the build here instead of silently rotting the docs.

Module-style paths written relative to the package root (the DESIGN.md
convention, e.g. ``repro/search/pruning.py``) resolve through ``src/``.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent

DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "ROADMAP.md"]
    + list((ROOT / "docs").glob("*.md"))
)

#: [text](target) markdown links.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backticked tokens that look like file paths: contain a slash or a
#: known doc/data suffix, no wildcards or placeholders.
_CODE_PATH = re.compile(r"`([A-Za-z0-9_.\-/]+\.(?:py|md|json|toml|ini|yml|cfg|stg))`")


def _doc_ids():
    return [str(p.relative_to(ROOT)) for p in DOC_FILES]


def _resolves(target: str, base: Path) -> bool:
    candidates = [
        base.parent / target,   # relative to the doc's own directory
        ROOT / target,          # repo-relative
        ROOT / "src" / target,  # package-relative (repro/... convention)
    ]
    return any(c.exists() for c in candidates)


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
class TestDocReferences:
    def test_relative_links_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if target and not _resolves(target, doc):
                broken.append(target)
        assert not broken, f"{doc.name}: broken relative links: {broken}"

    def test_referenced_paths_exist(self, doc):
        text = doc.read_text()
        missing = []
        for target in set(_CODE_PATH.findall(text)):
            if not _resolves(target, doc):
                missing.append(target)
        assert not missing, (
            f"{doc.name}: referenced paths do not exist: {sorted(missing)}"
        )


def test_docs_set_is_nonempty():
    assert any(d.name == "README.md" for d in DOC_FILES)
    assert any(d.match("docs/*.md") for d in DOC_FILES), (
        "docs/ directory lost its markdown files"
    )
