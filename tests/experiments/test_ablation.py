"""Tests for the pruning-ablation driver."""

import pytest

from repro.experiments.ablation import ABLATION_VARIANTS, run_ablation
from repro.experiments.runner import ExperimentConfig
from repro.workloads.suite import paper_suite


import functools


@functools.lru_cache(maxsize=1)
def small_run():
    suite = paper_suite(sizes=(10,), ccrs=(1.0,))
    config = ExperimentConfig(max_expansions=40_000, max_seconds=20.0)
    variants = {
        k: v
        for k, v in ABLATION_VARIANTS.items()
        if k in ("none", "full", "only-upper-bound", "full-minus-isomorphism")
    }
    return run_ablation(suite, config, variants=variants)


class TestAblation:
    @pytest.mark.slow
    def test_variant_rows(self):
        result = small_run()
        assert len(result.rows) == 4

    def test_lengths_consistent(self):
        """Every pruning variant proves the same optimal length."""
        result = small_run()
        assert result.lengths_consistent()

    def test_full_no_worse_than_none(self):
        result = small_run()
        by_variant = {r.variant: r for r in result.rows}
        assert (
            by_variant["full"].expanded <= by_variant["none"].expanded
        )

    def test_render(self):
        out = small_run().render()
        assert "Pruning ablation" in out
        assert "full" in out

    def test_variant_registry_complete(self):
        names = set(ABLATION_VARIANTS)
        assert {"none", "full"} <= names
        assert any(n.startswith("only-") for n in names)
        assert any(n.startswith("full-minus-") for n in names)
