"""Unit tests for the experiment infrastructure."""

from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.workloads.suite import paper_suite


def tiny_suite():
    return paper_suite(sizes=(10,), ccrs=(1.0,))


class TestExperimentConfig:
    def test_budget_fresh_instances(self):
        config = ExperimentConfig(max_expansions=10)
        b1 = config.budget()
        b2 = config.budget()
        assert b1 is not b2
        assert b1.max_expanded == 10

    def test_defaults(self):
        config = ExperimentConfig()
        assert config.ppe_counts == (2, 4, 8, 16)
        assert config.epsilons == (0.2, 0.5)


class TestOptimumCache:
    def test_memoizes_in_process(self):
        cache = OptimumCache(config=ExperimentConfig(max_expansions=50_000))
        inst = tiny_suite().instances[0]
        first = cache.optimal_result(inst)
        second = cache.optimal_result(inst)
        assert first is second

    def test_length_and_proven(self):
        cache = OptimumCache(config=ExperimentConfig(max_expansions=50_000))
        inst = tiny_suite().instances[0]
        length = cache.optimal_length(inst)
        assert length > 0
        assert cache.is_proven(inst)

    def test_persists_to_json(self, tmp_path):
        path = tmp_path / "optima.json"
        config = ExperimentConfig(max_expansions=50_000)
        cache = OptimumCache(config=config, path=path)
        inst = tiny_suite().instances[0]
        length = cache.optimal_length(inst)
        assert path.exists()
        # A fresh cache reads the persisted value without re-searching.
        reloaded = OptimumCache(config=config, path=path)
        assert reloaded.optimal_length(inst) == length
        assert reloaded.is_proven(inst)

    def test_corrupt_cache_recovers(self, tmp_path):
        path = tmp_path / "optima.json"
        path.write_text("{not json at all")
        config = ExperimentConfig(max_expansions=50_000)
        cache = OptimumCache(config=config, path=path)  # must not raise
        inst = tiny_suite().instances[0]
        assert cache.optimal_length(inst) > 0

    def test_wrong_schema_cache_recovers(self, tmp_path):
        path = tmp_path / "optima.json"
        path.write_text('{"some-key": {"unexpected": 1}}')
        cache = OptimumCache(
            config=ExperimentConfig(max_expansions=50_000), path=path
        )
        inst = tiny_suite().instances[0]
        assert cache.optimal_length(inst) > 0
