"""Tests for the Figure-6 driver (parallel speedups)."""

import pytest

from repro.experiments.figure6 import run_figure6
from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.workloads.suite import paper_suite


import functools


@functools.lru_cache(maxsize=1)
def small_run():
    # CCR 10.0 instances complete well inside the budget, so every point
    # is exact and the agreement assertions apply unconditionally.
    suite = paper_suite(sizes=(10, 12), ccrs=(10.0,))
    config = ExperimentConfig(
        max_expansions=60_000, max_seconds=20.0, ppe_counts=(2, 4)
    )
    return run_figure6(suite, config, OptimumCache(config=config))


class TestFigure6:
    @pytest.mark.slow
    def test_point_grid(self):
        result = small_run()
        assert len(result.points) == 2 * 2  # sizes × ppe counts

    def test_curve_extraction(self):
        result = small_run()
        curve = result.curve(10.0, 2)
        assert [p.size for p in curve] == [10, 12]

    def test_all_points_exact(self):
        """These instances complete within budget: all points exact."""
        result = small_run()
        assert all(p.exact for p in result.points)

    def test_lengths_agree_everywhere(self):
        """Parallel A* must find the serial optimum on exact points."""
        result = small_run()
        assert all(p.lengths_agree for p in result.points if p.exact)

    def test_speedups_positive(self):
        result = small_run()
        assert all(p.speedup > 0 for p in result.points)

    def test_extra_state_ratio_at_least_one_ish(self):
        """Parallel work ≥ serial work (duplication, never less)."""
        result = small_run()
        assert all(p.extra_state_ratio >= 0.9 for p in result.points)

    def test_render(self):
        out = small_run().render()
        assert "Figure 6" in out
        assert "2 PPEs" in out and "4 PPEs" in out
