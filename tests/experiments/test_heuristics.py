"""Tests for the heuristic-deviation driver (E5)."""

from repro.experiments.heuristics import HEURISTICS, run_heuristic_comparison
from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.workloads.suite import paper_suite


import functools


@functools.lru_cache(maxsize=1)
def small_run():
    suite = paper_suite(sizes=(10,), ccrs=(0.1, 1.0))
    config = ExperimentConfig(max_expansions=40_000, max_seconds=20.0)
    return run_heuristic_comparison(suite, config, OptimumCache(config=config))


class TestHeuristicComparison:
    def test_row_grid(self):
        result = small_run()
        assert len(result.rows) == 2 * len(HEURISTICS)

    def test_deviations_nonnegative_when_proven(self):
        """No heuristic can beat a proven optimum."""
        result = small_run()
        for row in result.rows:
            if row.optimal_proven:
                assert row.deviation_pct >= -1e-9

    def test_mean_deviation(self):
        result = small_run()
        for name in HEURISTICS:
            assert result.mean_deviation(name) >= -1e-9

    def test_render(self):
        out = small_run().render()
        assert "deviation" in out
        for name in HEURISTICS:
            assert name in out
