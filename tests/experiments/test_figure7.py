"""Tests for the Figure-7 driver (Aε* deviation and time ratio)."""

import pytest

from repro.experiments.figure7 import run_figure7
from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.workloads.suite import paper_suite


import functools


@functools.lru_cache(maxsize=1)
def small_run():
    # CCR 10.0 instances complete well inside the budget, so Theorem 2's
    # guarantee applies to every point.
    suite = paper_suite(sizes=(10, 12), ccrs=(10.0,))
    config = ExperimentConfig(
        max_expansions=60_000, max_seconds=20.0, epsilons=(0.2, 0.5)
    )
    return run_figure7(suite, config, OptimumCache(config=config), num_ppes=4)


class TestFigure7:
    @pytest.mark.slow
    def test_point_grid(self):
        result = small_run()
        assert len(result.points) == 2 * 2  # sizes × epsilons

    def test_all_points_proven(self):
        result = small_run()
        assert all(p.proven for p in result.points)

    def test_theorem2_bound_everywhere(self):
        """Every proven deviation must respect the ε guarantee."""
        result = small_run()
        for p in result.points:
            if p.proven:
                assert p.within_bound
                assert p.deviation_pct <= 100 * p.epsilon + 1e-6

    def test_deviation_nonnegative(self):
        result = small_run()
        assert all(p.deviation_pct >= -1e-9 for p in result.points)

    def test_series_extraction(self):
        result = small_run()
        series = result.series(10.0, 0.2)
        assert [p.size for p in series] == [10, 12]

    def test_render_has_four_blocks(self):
        out = small_run().render()
        assert out.count("Figure 7") == 4  # (a)-(d): two metrics × two ε
        assert "% deviation" in out
        assert "time ratio" in out
