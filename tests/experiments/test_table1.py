"""Tests for the Table-1 driver — shape assertions included."""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import run_table1
from repro.workloads.suite import paper_suite


import functools


@functools.lru_cache(maxsize=1)
def small_run():
    suite = paper_suite(sizes=(10, 12), ccrs=(0.1, 1.0))
    config = ExperimentConfig(max_expansions=25_000, max_seconds=10.0)
    return run_table1(suite, config)


class TestTable1:
    @pytest.mark.slow
    def test_row_per_instance(self):
        result = small_run()
        assert len(result.rows) == 4

    def test_lengths_agree_across_algorithms(self):
        result = small_run()
        for row in result.rows:
            if row.all_proven:
                assert row.all_agree, f"disagreement at v={row.size} ccr={row.ccr}"

    def test_pruned_astar_does_less_work(self):
        """The paper's headline: full A* ≤ A* without pruning, per row."""
        result = small_run()
        for row in result.rows:
            if row.all_proven:
                assert row.astar_full_expanded <= row.astar_nopruning_expanded

    def test_by_ccr_sorted(self):
        result = small_run()
        rows = result.by_ccr(0.1)
        assert [r.size for r in rows] == [10, 12]

    def test_render_contains_paper_columns(self):
        result = small_run()
        out = result.render()
        assert "Chen" in out
        assert "A* no-prune" in out
        assert "A* full" in out
        assert "CCR = 0.1" in out

    def test_render_work_counters(self):
        out = small_run().render_work()
        assert "exp." in out
        assert "opt length" in out
