"""Tests for the extended CLI surface (new engines, STG, trace)."""

import json

import pytest

from repro.cli import main
from repro.graph.examples import paper_example_dag
from repro.graph.stg import save_stg


@pytest.fixture
def json_graph(tmp_path, capsys):
    main(["generate", "--nodes", "8", "--seed", "3"])
    path = tmp_path / "g.json"
    path.write_text(capsys.readouterr().out)
    return path


@pytest.fixture
def stg_graph(tmp_path):
    path = tmp_path / "example.stg"
    save_stg(paper_example_dag(), path)
    return path


class TestNewEngines:
    @pytest.mark.parametrize("algo", ["idastar", "wastar"])
    def test_engines_run(self, algo, json_graph, capsys):
        assert main(["schedule", str(json_graph), "--pes", "3",
                     "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "length:" in out

    def test_wastar_epsilon(self, json_graph, capsys):
        assert main(["schedule", str(json_graph), "--pes", "2",
                     "--algorithm", "wastar", "--epsilon", "0.5"]) == 0
        assert "wastar(eps=0.5)" in capsys.readouterr().out


class TestStgInput:
    def test_schedule_stg_file(self, stg_graph, capsys):
        assert main(["schedule", str(stg_graph), "--pes", "3",
                     "--topology", "ring"]) == 0
        out = capsys.readouterr().out
        # The paper example on its ring: optimal length 14.
        assert "length: 14" in out


class TestTrace:
    def test_trace_prints_tree(self, stg_graph, capsys):
        assert main(["schedule", str(stg_graph), "--pes", "3",
                     "--topology", "ring", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "<initial>" in out
        assert "f = " in out

    def test_trace_ignored_for_other_engines(self, json_graph, capsys):
        assert main(["schedule", str(json_graph), "--pes", "2",
                     "--algorithm", "bnb", "--trace"]) == 0
        assert "<initial>" not in capsys.readouterr().out


class TestAblationCommand:
    @pytest.mark.slow
    def test_ablation_tiny(self, capsys):
        assert main(["ablation", "--sizes", "10", "--ccrs", "1.0",
                     "--max-expansions", "15000", "--max-seconds", "10"]) == 0
        out = capsys.readouterr().out
        assert "Pruning ablation" in out
        assert "extended" in out


class TestServiceCommands:
    def test_solve_cold_then_cached(self, json_graph, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        assert main(["solve", str(json_graph), "--pes", "3",
                     "--cache", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert "fingerprint:" in cold
        assert "certificate: proven" in cold
        assert main(["solve", str(json_graph), "--pes", "3",
                     "--cache", str(cache)]) == 0
        warm = capsys.readouterr().out
        assert "via: cache" in warm
        # Cached answer reports the same length as the cold solve.
        assert cold.split("length:")[1].split()[0] == \
            warm.split("length:")[1].split()[0]

    def test_solve_auto_mode(self, json_graph, capsys):
        assert main(["solve", str(json_graph), "--pes", "2",
                     "--mode", "auto"]) == 0
        assert "certificate:" in capsys.readouterr().out

    def test_batch_directory_with_output(self, json_graph, tmp_path, capsys):
        out_path = tmp_path / "results.jsonl"
        assert main(["batch", str(json_graph.parent), "--pes", "3",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "batch results" in out
        assert "1 instances" in out
        rows = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert rows[0]["certificate"] == "proven"
        assert len(rows[0]["assignment"]) == 8


class TestServeParser:
    """The serve subcommand's argparse surface (the daemon itself is
    exercised end-to-end in tests/service/test_server.py)."""

    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8080
        assert args.solver_workers == 1 and args.queue_limit == 64
        assert args.cache is None and args.mode == "portfolio"

    def test_all_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0",
            "--solver-workers", "4", "--queue-limit", "128",
            "--cache", "results.db", "--deadline", "2.5",
            "--epsilon", "0.1", "--max-expansions", "9999",
            "--mode", "auto", "--require-proven",
        ])
        assert args.port == 0 and args.solver_workers == 4
        assert args.queue_limit == 128 and args.cache == "results.db"
        assert args.deadline == 2.5 and args.require_proven
