"""Chaos tier: fault injection against the live daemon.

Each test arms :mod:`repro.testing.faults` (via ``REPRO_FAULTS``) and
drives a real :class:`SolverServer` over HTTP, asserting the
availability contract from DESIGN.md's failure model:

* every accepted request is answered — degraded is allowed, hung is not;
* a worker death degrades the answer and rebuilds the pool, it never
  takes the daemon down;
* cache faults cost durability or a hit, never a request;
* after a drain, ``accepted == completed`` and nothing is in flight.

Worker-side faults (``solve-*``) must be armed *before* the server is
created: pool workers inherit the environment at fork, so a spec set
afterwards never reaches them.  Parent-side faults (``cache-*``) can be
armed at any time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.service.cache import ResultCache
from repro.service.client import ServerClient
from repro.service.server import SolverServer
from repro.testing import faults

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def graph_for(seed: int, v: int = 9):
    return paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Never leak an armed fault spec into other tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


@contextmanager
def daemon(**kwargs):
    """A live daemon on a background thread, torn down via drain."""
    kwargs.setdefault("solver_workers", 1)
    kwargs.setdefault("queue_limit", 16)
    kwargs.setdefault("max_expansions", 50_000)
    server = SolverServer(port=0, **kwargs)
    thread = server.serve_in_thread()
    try:
        yield server, ServerClient(port=server.port, retries=3, backoff=0.05)
    finally:
        server.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive()


def assert_drained(metrics):
    """The zero-hung-jobs contract: every accepted request reached a
    terminal state and nothing is left queued or running."""
    jobs = metrics["jobs"]
    assert jobs["accepted"] == jobs["completed"] + jobs["failed"]
    assert metrics["queue_depth"] == 0
    assert metrics["running"] == 0
    assert metrics["in_flight"] == 0


class TestWorkerCrash:
    @pytest.mark.timeout(120)
    def test_crash_degrades_answer_and_rebuilds_pool(self, monkeypatch):
        """A pool worker hard-dying mid-solve (the OOM-kill stand-in):
        the victim request gets a degraded 200, the pool is rebuilt,
        and the next request is solved exactly again."""
        monkeypatch.setenv(faults.ENV_VAR, "solve-crash@2")
        with daemon() as (server, client):
            ok = client.solve(graph_for(1), pes=3)
            assert ok["result"]["certificate"] == "proven"

            hit = client.solve(graph_for(2), pes=3)  # 2nd hit: worker dies
            assert hit["status"] == "done"
            assert hit["result"]["certificate"] == "degraded"
            assert "reason" in hit["result"]

            after = client.solve(graph_for(3), pes=3)  # rebuilt pool serves
            assert after["result"]["certificate"] == "proven"

            m = client.metrics()
            assert m["failures"]["broken_pool"] == 1
            assert m["jobs"]["pool_rebuilds"] == 1
            assert m["jobs"]["degraded"] == 1
            assert m["jobs"]["failed"] == 0
            final = server.manager.metrics()
        assert_drained(final)

    @pytest.mark.timeout(120)
    def test_worker_exception_degrades_without_pool_rebuild(self, monkeypatch):
        """A worker *raising* (bug, not death) is cheaper: degrade the
        answer, count it, keep the pool — no rebuild churn."""
        monkeypatch.setenv(faults.ENV_VAR, "solve-error@1")
        with daemon() as (server, client):
            hit = client.solve(graph_for(4), pes=3)
            assert hit["status"] == "done"
            assert hit["result"]["certificate"] == "degraded"
            assert "injected" in hit["result"]["reason"]

            after = client.solve(graph_for(5), pes=3)
            assert after["result"]["certificate"] == "proven"

            m = client.metrics()
            assert m["failures"]["worker_error"] == 1
            assert m["jobs"]["pool_rebuilds"] == 0
            assert m["jobs"]["failed"] == 0
            final = server.manager.metrics()
        assert_drained(final)


class TestCacheFaults:
    @pytest.mark.timeout(120)
    def test_cache_errors_never_fail_a_request(self, monkeypatch):
        """A failing cache read degrades to a miss; a failing write
        costs durability.  Both are counted, neither loses the job."""
        with daemon(cache=ResultCache()) as (server, client):
            monkeypatch.setenv(faults.ENV_VAR, "cache-get-error@1")
            out = client.solve(graph_for(6), pes=3)
            assert out["result"]["certificate"] == "proven"
            errors_after_get = client.metrics()["jobs"]["cache_errors"]
            assert errors_after_get >= 1

            monkeypatch.setenv(faults.ENV_VAR, "cache-put-error@1")
            out = client.solve(graph_for(7), pes=3)
            assert out["result"]["certificate"] == "proven"
            m = client.metrics()
            assert m["jobs"]["cache_errors"] > errors_after_get
            assert m["jobs"]["failed"] == 0
            final = server.manager.metrics()
        assert_drained(final)

    @pytest.mark.timeout(120)
    def test_slow_cache_does_not_wedge_the_event_loop(self, monkeypatch):
        """Cache I/O is routed off the loop: with a cache op sleeping a
        full second, /healthz must still answer immediately."""
        with daemon(cache=ResultCache()) as (server, client):
            monkeypatch.setenv(faults.ENV_VAR, "cache-slow:1.0")
            job_id = client.submit(graph_for(8), pes=3)  # hits the slow get
            t0 = time.perf_counter()
            assert client.healthz() == {"status": "ok"}
            assert time.perf_counter() - t0 < 0.8
            snapshot = client.wait(job_id, timeout=60)
            assert snapshot["status"] == "done"
            final = server.manager.metrics()
        assert_drained(final)


class TestDrainUnderFaults:
    @pytest.mark.timeout(180)
    def test_every_accepted_request_is_answered(self, monkeypatch):
        """The acceptance scenario: a burst of async submissions with a
        worker crash armed mid-burst; after the dust settles every
        accepted job is terminal (degraded allowed, hung forbidden) and
        the books balance on drain."""
        monkeypatch.setenv(faults.ENV_VAR, "solve-crash@3")
        with daemon(solver_workers=2) as (server, client):
            job_ids = [
                client.submit(graph_for(seed), pes=3) for seed in range(10, 16)
            ]
            snapshots = [client.wait(jid, timeout=120) for jid in job_ids]
            statuses = {s["status"] for s in snapshots}
            assert statuses <= {"done"}  # answered — none hung, none failed
            certs = [s["result"]["certificate"] for s in snapshots]
            assert all(c in ("proven", "epsilon", "budget", "degraded")
                       for c in certs)
            final = server.manager.metrics()
        assert_drained(final)
        assert final["jobs"]["failed"] == 0
