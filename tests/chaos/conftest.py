"""Chaos-suite fixtures: lock-order checking on by default.

The chaos tests drive the daemon and worker supervision through
injected faults — precisely when threading discipline matters most.
Every test runs under the :mod:`repro.testing.lockcheck` guard; any
lock-order inversion observed during the test body (even one that did
not deadlock this time) fails the test.
"""

import pytest

from repro.testing import lockcheck


@pytest.fixture(autouse=True)
def _lock_order_guard():
    with lockcheck.guard() as checker:
        yield checker
    checker.assert_clean()
