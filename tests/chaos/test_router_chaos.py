"""Chaos tier for the fleet: SIGKILL shards under live traffic.

These run the real topology — ``repro serve`` shard *subprocesses*
behind an in-process :class:`ShardRouter` — and assert the fleet
availability contract from the runbook (docs/operations.md):

* every request accepted by the router is answered — possibly by a
  failover shard, possibly degraded, never hung;
* a SIGKILLed shard costs its in-flight jobs one failover, not the
  fleet's availability; the ring rebalances onto the survivors;
* a revived shard takes back its exact ring segment;
* a drain/rejoin drill moves traffic without a client-visible error.

Shards share one ``shared:`` SQLite store, so failover replays of
already-solved fingerprints warm-hit instead of re-searching.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.io import graph_to_dict
from repro.service.client import ServerClient
from repro.service.fleet import spawn_fleet, spawn_shard
from repro.service.router import Shard, ShardRouter

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def graph_for(seed: int, v: int = 9):
    return paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))


class Fleet:
    """Shard subprocesses + router, torn down in order."""

    def __init__(self, count: int, tmp_path, *, env=None, **spawn_kwargs):
        spawn_kwargs.setdefault("solver_workers", 1)
        spawn_kwargs.setdefault("queue_limit", 32)
        spawn_kwargs.setdefault("max_expansions", 50_000)
        spawn_kwargs.setdefault("cache", f"shared:{tmp_path / 'fleet.db'}")
        self.shards = spawn_fleet(count, env=env, **spawn_kwargs)
        self.router = ShardRouter(
            [Shard(s.name, s.host, s.port) for s in self.shards],
            port=0,
            probe_interval=0.2,
            reset_timeout=0.2,
            max_reset_timeout=2.0,
        )
        self.thread = self.router.serve_in_thread()
        self.client = ServerClient(port=self.router.port, timeout=120,
                                   retries=5, backoff=0.1)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.router.shutdown()
        self.thread.join(timeout=30)
        for shard in self.shards:
            shard.terminate()


class TestShardSigkill:
    @pytest.mark.timeout(300)
    def test_kill_mid_burst_answers_every_request(self, tmp_path):
        """The acceptance scenario: a concurrent burst of synchronous
        solves, one shard SIGKILLed mid-burst.  Every request must come
        back answered; afterwards the ring must have rebalanced onto
        the survivor with at least one recorded failover."""
        with Fleet(2, tmp_path) as fleet:
            results: dict[int, dict] = {}
            errors: list[tuple[int, Exception]] = []
            lock = threading.Lock()

            def one(seed: int):
                try:
                    out = fleet.client.solve(graph_for(seed), pes=3)
                except Exception as exc:  # noqa: BLE001 - collected for
                    # the assertion below; any error fails the test.
                    with lock:
                        errors.append((seed, exc))
                    return
                with lock:
                    results[seed] = out

            threads = [
                threading.Thread(target=one, args=(seed,))
                for seed in range(20, 32)
            ]
            for thread in threads[:6]:
                thread.start()
            time.sleep(0.3)  # burst in flight
            fleet.shards[1].kill()  # SIGKILL, mid-burst
            for thread in threads[6:]:
                thread.start()
            for thread in threads:
                thread.join(timeout=240)
                assert not thread.is_alive(), "request hung"

            assert errors == [], f"unanswered requests: {errors}"
            assert len(results) == 12
            for out in results.values():
                assert out["status"] == "done"
                assert out["result"]["makespan"] > 0

            m = fleet.router.metrics()
            assert m["routing"]["failovers"] >= 1
            # The ring rebalanced: the survivor answered the tail of
            # the burst, including fingerprints the victim owned.
            assert m["shards"]["s1"]["errors"] >= 1
            # No hung work on the survivor.
            survivor = ServerClient(port=fleet.shards[0].port)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                sm = survivor.metrics()
                if sm["queue_depth"] == 0 and sm["running"] == 0:
                    break
                time.sleep(0.2)
            assert sm["jobs"]["accepted"] == (
                sm["jobs"]["completed"] + sm["jobs"]["failed"]
            )

    @pytest.mark.timeout(300)
    def test_revived_shard_takes_back_its_segment(self, tmp_path):
        """Kill, observe failover, respawn on the same port: the
        health loop closes the breaker and the old owner serves its
        fingerprints again — and the shared store means the replay of
        an already-solved instance is a warm hit, not a re-search."""
        with Fleet(2, tmp_path) as fleet:
            # Find a seed owned by s1 so the kill provably remaps it.
            owned = None
            for seed in range(40, 140):
                body = {"graph": graph_to_dict(graph_for(seed)), "pes": 3}
                fp = fleet.router._routing_key(body)
                if fleet.router.ring.owner(fp) == "s1":
                    owned = seed
                    break
            assert owned is not None
            first = fleet.client.solve(graph_for(owned), pes=3)
            assert first["id"].startswith("s1:")

            fleet.shards[1].kill()
            failover = fleet.client.solve(graph_for(owned), pes=3)
            assert failover["id"].startswith("s0:")
            # Shared store: the survivor replayed a warm result.
            survivor = ServerClient(port=fleet.shards[0].port)
            assert survivor.metrics()["jobs"]["cache_hits"] >= 1

            # Respawn pins the dead shard's old port, so the router's
            # address for the s1 segment is simply valid again.
            fleet.shards[1] = fleet.shards[1].respawn()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if fleet.router.shards["s1"].breaker.state == "closed" and \
                        fleet.router.shards["s1"].healthy:
                    break
                time.sleep(0.2)
            back = fleet.client.solve(graph_for(owned), pes=3)
            assert back["id"].startswith("s1:")  # segment restored
            assert back["result"]["makespan"] == first["result"]["makespan"]


class TestShardCrashFault:
    @pytest.mark.timeout(300)
    def test_injected_shard_crash_fails_over(self, tmp_path):
        """The deterministic variant: ``shard-crash@3`` hard-exits the
        whole shard process at its 3rd accepted solve — mid-protocol,
        like a SIGKILL the shard does to itself.  Only s0 carries the
        fault; the router absorbs the crash onto s1 and the client
        never sees an error."""
        store = f"shared:{tmp_path / 'fleet.db'}"
        doomed = spawn_shard("s0", env={"REPRO_FAULTS": "shard-crash@3"},
                             cache=store, max_expansions=50_000)
        steady = spawn_shard("s1", cache=store, max_expansions=50_000)
        router = ShardRouter(
            [Shard("s0", doomed.host, doomed.port),
             Shard("s1", steady.host, steady.port)],
            port=0, probe_interval=0.2, reset_timeout=0.2,
            max_reset_timeout=2.0,
        )
        thread = router.serve_in_thread()
        try:
            client = ServerClient(port=router.port, timeout=120,
                                  retries=5, backoff=0.1)
            # Enough distinct instances that s0 accepts its 3rd solve
            # (and dies mid-answer) while s1 keeps serving.
            outs = [
                client.solve(graph_for(seed), pes=3)
                for seed in range(60, 72)
            ]
            assert all(out["status"] == "done" for out in outs)
            assert not doomed.alive  # the fault really hard-exited it
            m = router.metrics()
            assert m["shards"]["s0"]["errors"] >= 1
            assert m["routing"]["failovers"] >= 1
        finally:
            router.shutdown()
            thread.join(timeout=30)
            doomed.terminate()
            steady.terminate()


class TestDrainRejoinDrill:
    @pytest.mark.timeout(300)
    def test_rolling_drain_is_invisible_to_clients(self, tmp_path):
        """The runbook's rolling-restart drill: drain one shard, keep
        serving, rejoin it — clients see zero errors and the drained
        shard's segment comes back exactly."""
        with Fleet(2, tmp_path) as fleet:
            before = {
                seed: fleet.client.solve(graph_for(seed), pes=3)["id"]
                .partition(":")[0]
                for seed in range(80, 86)
            }
            assert set(before.values()) == {"s0", "s1"}

            status, data = fleet.client.request(
                "POST", "/admin/shards/s0/drain")
            assert status == 200 and data["ring_members"] == ["s1"]
            during = {
                seed: fleet.client.solve(graph_for(seed), pes=3)["id"]
                .partition(":")[0]
                for seed in range(80, 86)
            }
            assert set(during.values()) == {"s1"}  # all on the survivor

            status, data = fleet.client.request(
                "POST", "/admin/shards/s0/rejoin")
            assert status == 200
            assert data["ring_members"] == ["s0", "s1"]
            after = {
                seed: fleet.client.solve(graph_for(seed), pes=3)["id"]
                .partition(":")[0]
                for seed in range(80, 86)
            }
            assert after == before  # exact segment restored
