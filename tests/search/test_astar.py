"""Unit tests for the serial A* scheduler."""

import pytest
from hypothesis import given, settings

from repro.graph.generators.classic import (
    chain_graph,
    fork_join_graph,
    independent_tasks,
)
from repro.graph.taskgraph import TaskGraph
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestPaperExample:
    def test_optimal_length_14(self, fig1_graph, fig1_system):
        result = astar_schedule(fig1_graph, fig1_system)
        assert result.optimal
        assert result.schedule.length == 14.0

    def test_schedule_feasible(self, fig1_graph, fig1_system):
        result = astar_schedule(fig1_graph, fig1_system)
        assert schedule_violations(result.schedule) == []

    def test_pruning_shrinks_search(self, fig1_graph, fig1_system):
        full = astar_schedule(fig1_graph, fig1_system, pruning=PruningConfig.all())
        none = astar_schedule(fig1_graph, fig1_system, pruning=PruningConfig.none())
        assert full.length == none.length == 14.0
        assert full.stats.states_generated < none.stats.states_generated
        assert full.stats.states_expanded < none.stats.states_expanded

    def test_far_below_exhaustive_tree(self, fig1_graph, fig1_system):
        # The paper: exhaustive tree > 3^6 = 729 states; pruned A* well under.
        result = astar_schedule(fig1_graph, fig1_system)
        assert result.stats.states_generated < 100


class TestTrivialInstances:
    def test_single_node(self):
        g = TaskGraph([5], {})
        result = astar_schedule(g, ProcessorSystem(2))
        assert result.optimal
        assert result.schedule.length == 5.0

    def test_chain_on_one_pe(self):
        g = chain_graph(4, comp=10, comm=100)
        result = astar_schedule(g, ProcessorSystem(3))
        assert result.schedule.length == 40.0
        assert result.schedule.num_used_pes == 1

    def test_independent_spread(self):
        g = independent_tasks(3, comp=10)
        result = astar_schedule(g, ProcessorSystem(3))
        assert result.schedule.length == 10.0

    def test_fork_join(self):
        g = fork_join_graph(2, comp=10, comm=1)
        result = astar_schedule(g, ProcessorSystem(2))
        # fork + parallel(10,10 with comm 1) + join: 10 + 11 + 10 = 31.
        assert result.schedule.length == 31.0

    def test_single_pe_is_serialization(self):
        g = fork_join_graph(3, comp=10, comm=5)
        result = astar_schedule(g, ProcessorSystem(1))
        assert result.schedule.length == g.total_computation


class TestCostFunctions:
    @pytest.mark.parametrize("cost", ["paper", "zero", "improved"])
    def test_all_costs_agree(self, cost, fig1_graph, fig1_system):
        result = astar_schedule(fig1_graph, fig1_system, cost=cost)
        assert result.optimal
        assert result.schedule.length == 14.0

    def test_paper_cheaper_per_eval_than_improved(self, fig1_graph, fig1_system):
        paper = astar_schedule(fig1_graph, fig1_system, cost="paper")
        improved = astar_schedule(fig1_graph, fig1_system, cost="improved")
        # The tighter bound expands no more states.
        assert improved.stats.states_expanded <= paper.stats.states_expanded


class TestHeterogeneous:
    def test_prefers_fast_pe(self):
        g = chain_graph(2, comp=10, comm=0)
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        result = astar_schedule(g, s)
        assert result.schedule.length == 10.0  # both tasks on the 2x PE

    def test_hetero_matches_enumeration(self, small_random_graphs):
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        for g in small_random_graphs[:3]:
            a = astar_schedule(g, s)
            e = enumerate_optimal(g, s)
            assert a.length == pytest.approx(e.length)


class TestDistanceScaled:
    def test_matches_enumeration(self, small_random_graphs):
        s = ProcessorSystem(3, links=[(0, 1), (1, 2)], distance_scaled=True)
        for g in small_random_graphs[:3]:
            a = astar_schedule(g, s)
            e = enumerate_optimal(g, s)
            assert a.length == pytest.approx(e.length)


class TestBudget:
    def test_budget_returns_fallback(self, fig1_graph, fig1_system):
        result = astar_schedule(
            fig1_graph, fig1_system, budget=Budget(max_expanded=2)
        )
        assert not result.optimal
        assert result.schedule is not None
        assert schedule_violations(result.schedule) == []
        assert "budget" in result.algorithm

    def test_generation_budget(self, fig1_graph, fig1_system):
        result = astar_schedule(
            fig1_graph, fig1_system, budget=Budget(max_generated=3)
        )
        assert not result.optimal
        assert result.schedule is not None


class TestStats:
    def test_counters_populated(self, fig1_graph, fig1_system):
        result = astar_schedule(fig1_graph, fig1_system)
        s = result.stats
        assert s.states_generated > 0
        assert s.states_expanded > 0
        assert s.cost_evaluations >= s.states_generated
        assert s.wall_seconds >= 0
        assert s.max_open_size > 0

    def test_bound_is_one_for_exact(self, fig1_graph, fig1_system):
        assert astar_schedule(fig1_graph, fig1_system).bound == 1.0


@settings(max_examples=40, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_astar_matches_exhaustive(instance):
    """A* with full pruning equals exhaustive optimum (ground truth)."""
    graph, system = instance
    a = astar_schedule(graph, system)
    e = enumerate_optimal(graph, system)
    assert a.optimal
    assert a.length == pytest.approx(e.length)
    assert schedule_violations(a.schedule) == []


@settings(max_examples=25, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_each_pruning_rule_preserves_optimality(instance):
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    for kwargs in (
        dict(processor_isomorphism=True),
        dict(node_equivalence=True),
        dict(priority_ordering=True),
        dict(upper_bound=True),
    ):
        config = PruningConfig.only(**kwargs)
        result = astar_schedule(graph, system, pruning=config)
        assert result.length == pytest.approx(reference), (
            f"pruning {config.describe()} broke optimality"
        )
