"""Unit tests for weighted A* (bounded suboptimality via inflation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.schedule.validate import schedule_violations
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestPaperExample:
    @pytest.mark.parametrize("eps", [0.0, 0.2, 0.5, 1.0])
    def test_within_bound(self, eps, fig1_graph, fig1_system):
        result = weighted_astar_schedule(fig1_graph, fig1_system, eps)
        assert result.length <= (1 + eps) * 14.0 + 1e-9
        assert schedule_violations(result.schedule) == []
        assert result.bound == pytest.approx(1 + eps)

    def test_eps_zero_exact(self, fig1_graph, fig1_system):
        result = weighted_astar_schedule(fig1_graph, fig1_system, 0.0)
        assert result.optimal
        assert result.length == 14.0

    def test_negative_eps_rejected(self, fig1_graph, fig1_system):
        with pytest.raises(SearchError):
            weighted_astar_schedule(fig1_graph, fig1_system, -0.5)

    def test_budget(self, fig1_graph, fig1_system):
        result = weighted_astar_schedule(
            fig1_graph, fig1_system, 0.2, budget=Budget(max_expanded=1)
        )
        assert not result.optimal
        assert result.schedule is not None

    def test_inflation_reduces_expansions(self, small_random_graphs):
        from repro.system.processors import ProcessorSystem

        system = ProcessorSystem.fully_connected(3)
        total_exact = total_inflated = 0
        for g in small_random_graphs:
            total_exact += weighted_astar_schedule(g, system, 0.0).stats.states_expanded
            total_inflated += weighted_astar_schedule(g, system, 1.0).stats.states_expanded
        assert total_inflated <= total_exact


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2), st.sampled_from([0.1, 0.2, 0.5, 1.0]))
def test_wastar_epsilon_admissible(instance, eps):
    graph, system = instance
    optimal = enumerate_optimal(graph, system).length
    result = weighted_astar_schedule(graph, system, eps)
    assert optimal - 1e-9 <= result.length <= (1 + eps) * optimal + 1e-9


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_wastar_and_focal_share_guarantee(instance):
    """Both bounded-suboptimality engines respect the same ε bound."""
    graph, system = instance
    optimal = enumerate_optimal(graph, system).length
    for eps in (0.2, 0.5):
        wa = weighted_astar_schedule(graph, system, eps)
        fo = focal_schedule(graph, system, eps)
        assert wa.length <= (1 + eps) * optimal + 1e-9
        assert fo.length <= (1 + eps) * optimal + 1e-9
