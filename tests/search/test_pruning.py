"""Unit tests for repro.search.pruning configuration objects."""

from repro.search.pruning import PruningConfig, PruningStats


class TestPruningConfig:
    def test_all_enables_everything(self):
        c = PruningConfig.all()
        assert c.processor_isomorphism
        assert c.node_equivalence
        assert c.priority_ordering
        assert c.upper_bound
        assert c.duplicate_detection

    def test_none_keeps_duplicate_detection(self):
        c = PruningConfig.none()
        assert not c.processor_isomorphism
        assert not c.node_equivalence
        assert not c.priority_ordering
        assert not c.upper_bound
        assert c.duplicate_detection

    def test_only(self):
        c = PruningConfig.only(upper_bound=True)
        assert c.upper_bound
        assert not c.processor_isomorphism

    def test_only_multiple(self):
        c = PruningConfig.only(processor_isomorphism=True, node_equivalence=True)
        assert c.processor_isomorphism and c.node_equivalence
        assert not c.upper_bound

    def test_describe(self):
        assert PruningConfig.all().describe() == "iso+equiv+prio+ub+dup"
        assert PruningConfig.none().describe() == "dup"
        no_dup = PruningConfig.only(duplicate_detection=False)
        assert no_dup.describe() == "none"

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            PruningConfig.all().upper_bound = False


class TestPruningStats:
    def test_total(self):
        s = PruningStats(
            isomorphism_skips=1,
            equivalence_skips=2,
            upper_bound_cuts=3,
            duplicate_hits=4,
        )
        assert s.total == 10

    def test_as_dict_includes_extra(self):
        s = PruningStats()
        s.extra["paths_enumerated"] = 7
        d = s.as_dict()
        assert d["paths_enumerated"] == 7
        assert d["duplicate_hits"] == 0
