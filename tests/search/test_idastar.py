"""Unit tests for IDA* (memory-bounded optimal search)."""

import pytest
from hypothesis import given, settings

from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.idastar import idastar_schedule
from repro.search.pruning import PruningConfig
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestPaperExample:
    def test_optimal(self, fig1_graph, fig1_system):
        result = idastar_schedule(fig1_graph, fig1_system)
        assert result.optimal
        assert result.length == 14.0
        assert schedule_violations(result.schedule) == []

    def test_no_transposition_table(self, fig1_graph, fig1_system):
        """transposition_limit=0 gives the true O(v)-memory variant."""
        result = idastar_schedule(
            fig1_graph, fig1_system, transposition_limit=0
        )
        assert result.optimal
        assert result.length == 14.0

    def test_memory_far_below_astar(self, fig1_graph, fig1_system):
        """The point of IDA*: frontier memory is O(depth), not O(states)."""
        ida = idastar_schedule(fig1_graph, fig1_system, transposition_limit=0)
        astar = astar_schedule(fig1_graph, fig1_system)
        assert ida.stats.max_open_size <= astar.stats.max_open_size

    def test_reexpands_more_without_table(self, fig1_graph, fig1_system):
        """The time side of the trade: IDA* without a table re-expands."""
        no_table = idastar_schedule(fig1_graph, fig1_system, transposition_limit=0)
        with_table = idastar_schedule(fig1_graph, fig1_system)
        assert no_table.stats.states_expanded >= with_table.stats.states_expanded

    def test_budget(self, fig1_graph, fig1_system):
        result = idastar_schedule(
            fig1_graph, fig1_system, budget=Budget(max_expanded=2)
        )
        assert not result.optimal
        assert result.schedule is not None

    def test_cost_variants(self, fig1_graph, fig1_system):
        for cost in ("paper", "improved", "zero"):
            assert idastar_schedule(fig1_graph, fig1_system, cost=cost).length == 14.0

    def test_no_pruning_still_optimal(self, fig1_graph, fig1_system):
        result = idastar_schedule(
            fig1_graph, fig1_system, pruning=PruningConfig.none()
        )
        assert result.length == 14.0


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_idastar_matches_exhaustive(instance):
    graph, system = instance
    ida = idastar_schedule(graph, system)
    ref = enumerate_optimal(graph, system)
    assert ida.optimal
    assert ida.length == pytest.approx(ref.length)


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=4, max_pes=2))
def test_idastar_without_table_matches(instance):
    graph, system = instance
    ida = idastar_schedule(graph, system, transposition_limit=0)
    ref = enumerate_optimal(graph, system)
    assert ida.length == pytest.approx(ref.length)
