"""The Budget memory guard: searches stop at the ceiling, gracefully.

An exact search on a hostile instance grows OPEN/CLOSED without bound;
the guard turns "the OOM killer got us" into "here is the incumbent,
the tightest proven lower bound, and reason='memory'".  Two ceilings
exist: ``max_tracked_states`` (engine-reported open+closed footprint,
checked every call — deterministic, used by most tests here) and
``max_memory_mb`` (process RSS, sampled periodically).
"""

from __future__ import annotations

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.schedule.validate import validate_schedule
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.focal import focal_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget, process_rss_mb


def hard_instance(seed: int = 7, v: int = 16):
    graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))
    return graph, ProcessorSystem.fully_connected(4)


ENGINES = [
    ("astar", lambda g, s, b: astar_schedule(g, s, budget=b)),
    ("bnb", lambda g, s, b: bnb_schedule(g, s, budget=b)),
    ("idastar", lambda g, s, b: idastar_schedule(g, s, budget=b)),
    ("wastar", lambda g, s, b: weighted_astar_schedule(g, s, 0.2, budget=b)),
    ("focal", lambda g, s, b: focal_schedule(g, s, 0.2, budget=b)),
]


class TestTrackedStatesCeiling:
    @pytest.mark.parametrize("name,run", ENGINES, ids=[e[0] for e in ENGINES])
    def test_engines_stop_at_ceiling_with_incumbent(self, name, run):
        """Every engine aborts at the tracked-state ceiling and still
        returns a feasible incumbent, an unproven certificate, and a
        memory interrupt reason — never an exception."""
        graph, system = hard_instance()
        budget = Budget(max_tracked_states=50)
        result = run(graph, system, budget)
        assert result.schedule is not None
        validate_schedule(result.schedule)
        assert not result.optimal
        assert result.certificate == "budget"
        assert result.interrupted == "memory"
        assert budget.reason == "memory"

    @pytest.mark.parametrize("name,run", ENGINES, ids=[e[0] for e in ENGINES])
    def test_lower_bound_at_ceiling_is_sound(self, name, run):
        """The lower bound reported on a memory abort must bracket the
        true optimum from below (and never exceed the incumbent)."""
        graph, system = hard_instance(seed=11, v=12)
        optimal = astar_schedule(graph, system).length
        budget = Budget(max_tracked_states=40)
        result = run(graph, system, budget)
        assert result.lower_bound <= optimal + 1e-9
        assert result.lower_bound <= result.length + 1e-9
        assert result.lower_bound > 0.0

    def test_unconstrained_budget_never_reports_memory(self):
        graph, system = hard_instance(seed=3, v=10)
        budget = Budget()
        result = astar_schedule(graph, system, budget=budget)
        assert result.optimal
        assert result.interrupted is None
        assert budget.reason is None


class TestRssCeiling:
    def test_process_rss_mb_reports_positive(self):
        """The /proc (or getrusage) probe works on this platform — the
        RSS guard is not silently disabled."""
        rss = process_rss_mb()
        assert rss > 1.0  # a Python interpreter is many MB

    def test_tiny_rss_ceiling_aborts_immediately(self):
        """An RSS ceiling below the interpreter's own footprint trips
        on the first check: the search still returns its incumbent."""
        graph, system = hard_instance(seed=5, v=12)
        budget = Budget(max_memory_mb=1.0)
        result = astar_schedule(graph, system, budget=budget)
        assert result.schedule is not None
        assert not result.optimal
        assert result.interrupted == "memory"

    def test_generous_rss_ceiling_does_not_trip(self):
        graph, system = hard_instance(seed=5, v=10)
        budget = Budget(max_memory_mb=1024 * 1024.0)  # 1 TiB
        result = astar_schedule(graph, system, budget=budget)
        assert result.optimal
        assert result.interrupted is None


class TestBudgetReasonPriority:
    def test_interrupt_wins_over_everything(self):
        budget = Budget(max_expanded=1, max_memory_mb=0.001)
        budget.start()
        budget.interrupt()
        assert budget.exhausted(10**9, 10**9, tracked=10**9)
        assert budget.reason == "interrupt"

    def test_expansions_reported_before_memory(self):
        budget = Budget(max_expanded=5, max_tracked_states=1)
        budget.start()
        assert budget.exhausted(5, 0, tracked=100)
        assert budget.reason == "expansions"

    def test_memory_reason_from_tracked_states(self):
        budget = Budget(max_tracked_states=10)
        budget.start()
        assert not budget.exhausted(1, 1, tracked=9)
        assert budget.exhausted(1, 1, tracked=10)
        assert budget.reason == "memory"
