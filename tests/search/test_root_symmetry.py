"""Correctness of the processor-symmetry pruning extension.

On homogeneous-speed, uniform-communication systems the cost model
ignores the topology entirely, so every empty PE is interchangeable —
a stronger statement than Definition 2's structural isomorphism, and
one that holds at *every* state, pinning the first task to PE 0 at the
root.  Like FTO it is off by default, self-gates to the regime where
the argument holds, and must preserve optimality against exhaustive
enumeration everywhere.
"""

import pytest
from hypothesis import given, settings

from repro.graph.taskgraph import TaskGraph
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.pruning import PruningConfig, PruningStats
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances, task_graphs


class TestConfig:
    def test_off_by_default(self):
        assert not PruningConfig.all().root_symmetry

    def test_with_symmetry_enables(self):
        cfg = PruningConfig.with_symmetry()
        assert cfg.root_symmetry and cfg.upper_bound

    def test_describe_shows_sym(self):
        assert "sym" in PruningConfig.with_symmetry().describe()

    def test_only_root_symmetry(self):
        cfg = PruningConfig.only(root_symmetry=True)
        assert cfg.root_symmetry and not cfg.upper_bound

    def test_stats_counter_in_dict(self):
        stats = PruningStats(symmetry_skips=5)
        assert stats.as_dict()["symmetry_skips"] == 5
        assert stats.total == 5


class TestEmptyPeCollapse:
    def test_counter_fires_and_search_shrinks(self):
        """On a star the Definition-2 classes keep two empty reps (hub
        vs leaf); uniform communication makes even those
        interchangeable, so the symmetry rule strictly tightens the
        default pruning."""
        graph = TaskGraph([4, 3, 2, 5, 1], {}, name="independent")
        system = ProcessorSystem.star(4)
        reference = enumerate_optimal(graph, system).length
        base = astar_schedule(graph, system)
        sym = astar_schedule(
            graph, system, pruning=PruningConfig(root_symmetry=True)
        )
        assert sym.length == reference == base.length
        assert sym.stats.pruning.symmetry_skips > 0
        assert sym.stats.states_generated < base.stats.states_generated

    def test_subsumes_isomorphism_on_cliques(self):
        """On a fully-connected system Definition 2 already collapses
        all empties; the symmetry rule must reproduce that collapse
        exactly (same search) while attributing skips to its counter."""
        graph = TaskGraph([4, 3, 2, 5, 1], {}, name="independent")
        system = ProcessorSystem.fully_connected(3)
        base = astar_schedule(graph, system)
        sym = astar_schedule(
            graph, system, pruning=PruningConfig(root_symmetry=True)
        )
        assert sym.length == base.length
        assert sym.stats.states_expanded == base.stats.states_expanded
        assert sym.stats.states_generated == base.stats.states_generated
        assert sym.stats.pruning.symmetry_skips > 0

    def test_first_task_pinned_to_pe0(self):
        graph = TaskGraph([4, 3, 2], {(0, 1): 2, (0, 2): 1}, name="fork")
        system = ProcessorSystem.ring(3)
        sym = astar_schedule(
            graph, system, pruning=PruningConfig(root_symmetry=True)
        )
        first = min(sym.schedule.tasks, key=lambda t: (t.start, t.node))
        assert first.pe == 0

    def test_inert_on_heterogeneous_speeds(self):
        """Empty PEs with different speeds are NOT interchangeable; the
        expander must not fire at all."""
        graph = TaskGraph([4, 3, 2], {}, name="independent")
        system = ProcessorSystem.fully_connected(3, speeds=[1.0, 1.0, 2.0])
        sym = astar_schedule(
            graph, system, pruning=PruningConfig(root_symmetry=True)
        )
        base = astar_schedule(graph, system)
        assert sym.stats.pruning.symmetry_skips == 0
        assert sym.stats.states_expanded == base.stats.states_expanded
        assert sym.length == base.length

    def test_inert_on_distance_scaled_links(self):
        """With hop-scaled messages an empty PE adjacent to the sender
        differs from a distant one — interchangeability breaks."""
        graph = TaskGraph([4, 3, 2], {(0, 1): 3}, name="g")
        system = ProcessorSystem(
            3, links=[(0, 1), (1, 2)], distance_scaled=True
        )
        sym = astar_schedule(
            graph, system, pruning=PruningConfig(root_symmetry=True)
        )
        assert sym.stats.pruning.symmetry_skips == 0
        assert sym.length == enumerate_optimal(graph, system).length


@settings(max_examples=60, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_symmetry_preserves_optimality(instance):
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    result = astar_schedule(
        graph, system, pruning=PruningConfig(root_symmetry=True)
    )
    assert result.optimal
    assert result.length == pytest.approx(reference)


@settings(max_examples=40, deadline=None)
@given(task_graphs(max_nodes=5))
def test_symmetry_alone_preserves_optimality(graph):
    """The rule in isolation (no other pruning) against ground truth."""
    system = ProcessorSystem.fully_connected(3)
    reference = enumerate_optimal(graph, system).length
    cfg = PruningConfig.only(root_symmetry=True)
    result = astar_schedule(graph, system, pruning=cfg)
    assert result.length == pytest.approx(reference)


@settings(max_examples=20, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_symmetry_composes_with_fixed_order(instance):
    """The two off-by-default extensions together — they prune along
    different axes (PE choice vs task order) and must still be exact."""
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    cfg = PruningConfig(root_symmetry=True, fixed_task_order=True)
    result = astar_schedule(graph, system, pruning=cfg)
    assert result.length == pytest.approx(reference)
    assert bnb_schedule(graph, system, pruning=cfg).length == pytest.approx(
        reference
    )
