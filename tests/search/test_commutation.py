"""Correctness of the commutation (partial-order reduction) extension.

The rule skips candidate placements that commute with the state's most
recent placement; it is NOT one of the paper's §3.2 techniques, so it is
off by default and must preserve optimality on every instance class we
ship — homogeneous/heterogeneous, every topology, distance-scaled.
These tests compare against exhaustive enumeration, the strongest
oracle available.
"""

import pytest
from hypothesis import given, settings

from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances, task_graphs


class TestConfig:
    def test_off_by_default(self):
        assert not PruningConfig.all().commutation

    def test_extended_enables(self):
        assert PruningConfig.extended().commutation

    def test_describe_shows_comm(self):
        assert "comm" in PruningConfig.extended().describe()

    def test_only_commutation(self):
        cfg = PruningConfig.only(commutation=True)
        assert cfg.commutation and not cfg.upper_bound


class TestPaperExample:
    def test_optimal_preserved(self, fig1_graph, fig1_system):
        result = astar_schedule(
            fig1_graph, fig1_system, pruning=PruningConfig.extended()
        )
        assert result.optimal
        assert result.length == 14.0

    def test_fewer_states_generated(self, fig1_graph, fig1_system):
        plain = astar_schedule(fig1_graph, fig1_system)
        extended = astar_schedule(
            fig1_graph, fig1_system, pruning=PruningConfig.extended()
        )
        assert extended.length == plain.length
        assert (
            extended.stats.states_generated <= plain.stats.states_generated
        )

    def test_skips_counted(self, fig1_graph, fig1_system):
        result = astar_schedule(
            fig1_graph, fig1_system, pruning=PruningConfig.extended()
        )
        assert result.stats.pruning.commutation_skips > 0


@settings(max_examples=60, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_commutation_preserves_optimality(instance):
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    result = astar_schedule(graph, system, pruning=PruningConfig.extended())
    assert result.optimal
    assert result.length == pytest.approx(reference)


@settings(max_examples=25, deadline=None)
@given(task_graphs(max_nodes=5))
def test_commutation_alone_preserves_optimality(graph):
    """The rule in isolation (no other pruning) against ground truth."""
    system = ProcessorSystem.fully_connected(2)
    reference = enumerate_optimal(graph, system).length
    cfg = PruningConfig.only(commutation=True)
    result = astar_schedule(graph, system, pruning=cfg)
    assert result.length == pytest.approx(reference)


@settings(max_examples=20, deadline=None)
@given(task_graphs(max_nodes=5))
def test_commutation_heterogeneous(graph):
    system = ProcessorSystem.fully_connected(3, speeds=[1.0, 2.0, 0.5])
    reference = enumerate_optimal(graph, system).length
    result = astar_schedule(graph, system, pruning=PruningConfig.extended())
    assert result.length == pytest.approx(reference)


@settings(max_examples=20, deadline=None)
@given(task_graphs(max_nodes=5))
def test_commutation_distance_scaled(graph):
    system = ProcessorSystem(3, links=[(0, 1), (1, 2)], distance_scaled=True)
    reference = enumerate_optimal(graph, system).length
    result = astar_schedule(graph, system, pruning=PruningConfig.extended())
    assert result.length == pytest.approx(reference)


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_commutation_in_other_engines(instance):
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    assert bnb_schedule(
        graph, system, pruning=PruningConfig.extended()
    ).length == pytest.approx(reference)
    focal = focal_schedule(graph, system, 0.2, pruning=PruningConfig.extended())
    assert focal.length <= 1.2 * reference + 1e-9
