"""The anytime contract: budget exhaustion returns incumbent + bound.

Every engine promises that on ANY budget exit (expansions, time,
memory, interrupt) the :class:`SearchResult` carries

* a feasible incumbent schedule (never ``None``, never an exception),
* ``lower_bound`` — a certified floor on the optimal makespan
  (``lower_bound <= optimal <= length``), and
* ``interrupted`` — which budget dimension ended the search.

That bracket is what lets the portfolio hand out *certified
approximate* answers when the exact search cannot finish.
"""

from __future__ import annotations

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.schedule.validate import validate_schedule
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.focal import focal_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget

ENGINES = [
    ("astar", lambda g, s, b: astar_schedule(g, s, budget=b)),
    ("bnb", lambda g, s, b: bnb_schedule(g, s, budget=b)),
    ("idastar", lambda g, s, b: idastar_schedule(g, s, budget=b)),
    ("wastar", lambda g, s, b: weighted_astar_schedule(g, s, 0.2, budget=b)),
    ("focal", lambda g, s, b: focal_schedule(g, s, 0.2, budget=b)),
]

INSTANCES = [(9, 0.5, 2), (10, 1.0, 7), (9, 5.0, 13)]


@pytest.fixture(scope="module")
def optima():
    """True optimal lengths, computed once per instance."""
    out = {}
    for v, ccr, seed in INSTANCES:
        graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        system = ProcessorSystem.fully_connected(3)
        out[(v, ccr, seed)] = (graph, system, astar_schedule(graph, system).length)
    return out


class TestBudgetExitBracket:
    @pytest.mark.parametrize("name,run", ENGINES, ids=[e[0] for e in ENGINES])
    @pytest.mark.parametrize("key", INSTANCES, ids=str)
    def test_expansion_budget_brackets_optimum(self, name, run, key, optima):
        graph, system, opt = optima[key]
        budget = Budget(max_expanded=8)
        result = run(graph, system, budget)
        assert result.schedule is not None
        validate_schedule(result.schedule)
        assert result.interrupted == "expansions"
        assert result.lower_bound <= opt + 1e-9
        assert result.length >= opt - 1e-9
        assert result.lower_bound <= result.length + 1e-9

    @pytest.mark.parametrize("name,run", ENGINES, ids=[e[0] for e in ENGINES])
    def test_interrupt_is_an_anytime_exit_too(self, name, run, optima):
        """An interrupt landing mid-search (the SIGINT path — a signal
        handler calling ``budget.interrupt()`` while the engine runs)
        behaves exactly like any other exhaustion: incumbent + bound,
        no exception.  Delivered deterministically on the third budget
        check rather than from a real timer."""
        graph, system, opt = optima[INSTANCES[0]]
        budget = Budget()
        real_exhausted = budget.exhausted
        checks = 0

        def interrupt_on_third(expanded, generated, tracked=0):
            nonlocal checks
            checks += 1
            if checks == 3:
                budget.interrupt()
            return real_exhausted(expanded, generated, tracked)

        budget.exhausted = interrupt_on_third  # instance attr shadows method
        result = run(graph, system, budget)
        assert result.schedule is not None
        assert result.interrupted == "interrupt"
        assert result.lower_bound <= opt + 1e-9

    @pytest.mark.parametrize("name,run", ENGINES, ids=[e[0] for e in ENGINES])
    @pytest.mark.parametrize("key", INSTANCES, ids=str)
    def test_unbudgeted_run_reports_exact_bracket(self, name, run, key, optima):
        """With no budget pressure the bracket closes: for exact
        engines lower_bound == length == optimal; for the bounded-
        suboptimal engines the bound certifies the epsilon guarantee
        (length <= (1+eps) * lower_bound)."""
        graph, system, opt = optima[key]
        result = run(graph, system, Budget())
        assert result.interrupted is None
        assert result.lower_bound <= opt + 1e-9
        if name in ("astar", "bnb", "idastar"):
            assert result.optimal
            assert result.lower_bound == pytest.approx(result.length)
            assert result.length == pytest.approx(opt)
        else:
            assert result.length <= 1.2 * result.lower_bound + 1e-9

    def test_growing_budget_tightens_monotonically(self, optima):
        """More budget never loosens the bracket: the incumbent only
        improves and the floor only rises (per-engine running max)."""
        graph, system, opt = optima[(10, 1.0, 7)]
        prev_len, prev_lb = float("inf"), 0.0
        for cap in (4, 16, 64, 100_000):
            result = astar_schedule(graph, system, budget=Budget(max_expanded=cap))
            assert result.length <= prev_len + 1e-9
            assert result.lower_bound >= prev_lb - 1e-9
            prev_len, prev_lb = result.length, result.lower_bound
        assert result.optimal and result.length == pytest.approx(opt)
