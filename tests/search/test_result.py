"""Unit tests for SearchResult / SearchStats."""

import math

from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.search.pruning import PruningStats
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem


def tiny_schedule():
    return Schedule(TaskGraph([3], {}), ProcessorSystem(1), {0: (0, 0.0)})


class TestSearchStats:
    def test_defaults(self):
        s = SearchStats()
        assert s.states_generated == 0
        assert isinstance(s.pruning, PruningStats)

    def test_as_dict_flattens_pruning(self):
        s = SearchStats(states_generated=5)
        s.pruning.duplicate_hits = 3
        d = s.as_dict()
        assert d["states_generated"] == 5
        assert d["duplicate_hits"] == 3

    def test_independent_pruning_objects(self):
        a, b = SearchStats(), SearchStats()
        a.pruning.duplicate_hits = 9
        assert b.pruning.duplicate_hits == 0


class TestSearchResult:
    def test_length_of_schedule(self):
        r = SearchResult(
            schedule=tiny_schedule(), optimal=True, bound=1.0,
            stats=SearchStats(), algorithm="x",
        )
        assert r.length == 3.0

    def test_length_infinite_when_none(self):
        r = SearchResult(
            schedule=None, optimal=False, bound=math.inf,
            stats=SearchStats(), algorithm="x",
        )
        assert r.length == math.inf
