"""Unit tests for repro.search.expansion."""

from repro.graph.examples import paper_example_dag
from repro.graph.taskgraph import TaskGraph
from repro.schedule.partial import PartialSchedule
from repro.search.expansion import StateExpander, node_equivalence_classes
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem


class TestNodeEquivalenceClasses:
    def test_paper_example_n2_n3(self):
        # The paper: n2 and n3 are equivalent (Definition 3).
        classes = node_equivalence_classes(paper_example_dag())
        assert (1, 2) in classes

    def test_singleton_classes_otherwise(self):
        classes = node_equivalence_classes(paper_example_dag())
        flat = sorted(n for cls in classes for n in cls)
        assert flat == list(range(6))
        assert sum(1 for c in classes if len(c) > 1) == 1

    def test_weight_breaks_equivalence(self):
        g = TaskGraph([1, 2, 3, 1], {(0, 1): 1, (0, 2): 1, (1, 3): 1, (2, 3): 1})
        classes = node_equivalence_classes(g)
        assert all(len(c) == 1 for c in classes)

    def test_edge_cost_breaks_equivalence(self):
        g = TaskGraph([1, 2, 2, 1], {(0, 1): 1, (0, 2): 9, (1, 3): 1, (2, 3): 1})
        classes = node_equivalence_classes(g)
        assert all(len(c) == 1 for c in classes)

    def test_parallel_identical_tasks(self):
        g = TaskGraph([1, 2, 2, 2, 1],
                      {(0, 1): 3, (0, 2): 3, (0, 3): 3,
                       (1, 4): 5, (2, 4): 5, (3, 4): 5})
        classes = node_equivalence_classes(g)
        assert (1, 2, 3) in classes


class TestCandidateNodes:
    def test_equivalence_filtering(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.all())
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        nodes = expander.candidate_nodes(ps)
        # Ready = {n2, n3, n4}; n3 dropped (≡ n2); priority puts n2 first.
        assert nodes == [1, 3]
        assert expander.stats.equivalence_skips == 1

    def test_no_filtering_when_disabled(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.none())
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        assert sorted(expander.candidate_nodes(ps)) == [1, 2, 3]

    def test_priority_ordering(self, fig1_graph, fig1_system):
        cfg = PruningConfig.only(priority_ordering=True)
        expander = StateExpander(fig1_graph, fig1_system, cfg)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        nodes = expander.candidate_nodes(ps)
        # b+t: n2 = n3 = 19 > n4 = 14.
        assert nodes == [1, 2, 3]


class TestCandidatePes:
    def test_initial_ring_collapses_to_one(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.all())
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        assert expander.candidate_pes(ps) == [0]
        assert expander.stats.isomorphism_skips == 2

    def test_busy_pe_plus_one_empty_rep(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.all())
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        # PE0 busy; PE1/PE2 both empty and isomorphic → representative PE1.
        assert expander.candidate_pes(ps) == [0, 1]

    def test_all_pes_when_disabled(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.none())
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        assert expander.candidate_pes(ps) == [0, 1, 2]

    def test_star_hub_distinct(self):
        g = paper_example_dag()
        s = ProcessorSystem.star(4)
        expander = StateExpander(g, s, PruningConfig.all())
        ps = PartialSchedule.empty(g, s)
        # Hub (0) and one leaf representative (1).
        assert expander.candidate_pes(ps) == [0, 1]


class TestChildren:
    def test_first_expansion_single_child(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.all())
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        children = list(expander.children(ps))
        # Paper: "we need to generate only one search state by assigning
        # n1 to PE 0."
        assert len(children) == 1
        assert children[0].pes[0] == 0

    def test_second_expansion_four_children(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.all())
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        children = list(expander.children(ps))
        # Paper: four states — n2/n4 × PE0/PE1.
        assert len(children) == 4

    def test_exhaustive_without_pruning(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.none())
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        # 3 ready nodes × 3 PEs.
        assert len(list(expander.children(ps))) == 9

    def test_determinism(self, fig1_graph, fig1_system):
        expander = StateExpander(fig1_graph, fig1_system, PruningConfig.all())
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        sigs1 = [c.signature for c in expander.children(ps)]
        sigs2 = [c.signature for c in expander.children(ps)]
        assert sigs1 == sigs2
