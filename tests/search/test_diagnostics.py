"""Unit tests for search tracing."""

from repro.search.astar import astar_schedule
from repro.search.diagnostics import SearchTrace


class TestSearchTrace:
    def test_records_tree(self, fig1_graph, fig1_system):
        trace = SearchTrace()
        result = astar_schedule(fig1_graph, fig1_system, trace=trace)
        assert trace.num_expanded == result.stats.states_expanded
        assert trace.num_generated >= result.stats.states_generated

    def test_goal_marked(self, fig1_graph, fig1_system):
        trace = SearchTrace()
        astar_schedule(fig1_graph, fig1_system, trace=trace)
        goals = [n for n in trace.nodes if n.is_goal]
        assert len(goals) == 1
        assert goals[0].f == 14.0

    def test_render_contains_actions(self, fig1_graph, fig1_system):
        trace = SearchTrace()
        astar_schedule(fig1_graph, fig1_system, trace=trace)
        out = trace.render()
        assert "<initial>" in out or "n1 -> PE 0" in out
        assert "GOAL" in out
        assert "f = " in out

    def test_render_depth_limit(self, fig1_graph, fig1_system):
        trace = SearchTrace()
        astar_schedule(fig1_graph, fig1_system, trace=trace)
        shallow = trace.render(max_depth=1)
        full = trace.render()
        assert len(shallow.splitlines()) < len(full.splitlines())

    def test_empty_trace_renders(self):
        assert SearchTrace().render() == "(empty trace)"

    def test_expansion_order_monotone(self, fig1_graph, fig1_system):
        trace = SearchTrace()
        astar_schedule(fig1_graph, fig1_system, trace=trace)
        orders = [n.expanded_order for n in trace.nodes if n.expanded_order is not None]
        assert sorted(orders) == list(range(len(orders)))

    def test_to_dot(self, fig1_graph, fig1_system):
        trace = SearchTrace()
        astar_schedule(fig1_graph, fig1_system, trace=trace)
        dot = trace.to_dot()
        assert dot.startswith("digraph")
        assert "peripheries=2" in dot  # the goal node
        # Edge lines (not the "->" inside action labels).
        edge_lines = [
            ln for ln in dot.splitlines()
            if "->" in ln and "label" not in ln
        ]
        assert len(edge_lines) == sum(len(n.children) for n in trace.nodes)
