"""Correctness of the fixed-task-order (FTO) pruning extension.

The rule collapses the node branching factor to 1 when the ready set
forms a fork/join chain (Sinnen's FTO, engineered by Akram et al.
2024).  Like the commutation rule it is NOT one of the paper's §3.2
techniques, so it is off by default and must preserve optimality on
every instance class — verified against exhaustive enumeration, the
strongest oracle available.  The mixed entry-task/fork-task case that
a naive chain condition gets wrong (a zero-DRT entry task ordering
ahead of a fork task and displacing it by its full weight) is pinned
as a regression test.
"""

import pytest
from hypothesis import given, settings

from repro.errors import SearchError
from repro.graph.taskgraph import TaskGraph
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.idastar import idastar_schedule
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem
from tests.strategies import paper_instances, scheduling_instances, task_graphs


class TestConfig:
    def test_off_by_default(self):
        assert not PruningConfig.all().fixed_task_order

    def test_with_fixed_order_enables(self):
        cfg = PruningConfig.with_fixed_order()
        assert cfg.fixed_task_order and cfg.upper_bound

    def test_describe_shows_fto(self):
        assert "fto" in PruningConfig.with_fixed_order().describe()

    def test_only_fixed_order(self):
        cfg = PruningConfig.only(fixed_task_order=True)
        assert cfg.fixed_task_order and not cfg.upper_bound

    def test_mutually_exclusive_with_commutation(self):
        with pytest.raises(SearchError, match="mutually exclusive"):
            PruningConfig(commutation=True, fixed_task_order=True)

    def test_stats_counter_in_dict(self):
        from repro.search.pruning import PruningStats

        stats = PruningStats(fixed_order_skips=7)
        assert stats.as_dict()["fixed_order_skips"] == 7
        assert stats.total == 7


class TestChainCollapse:
    def test_independent_tasks_collapse(self):
        """A layer of independent tasks is one long chain: branching
        drops to the PE choice only, and the skips are counted."""
        graph = TaskGraph([4, 3, 2, 5, 1, 2], {}, name="independent")
        system = ProcessorSystem.fully_connected(2)
        reference = enumerate_optimal(graph, system).length
        base = astar_schedule(graph, system)
        fto = astar_schedule(
            graph, system, pruning=PruningConfig.with_fixed_order()
        )
        assert fto.length == reference == base.length
        assert fto.stats.states_expanded < base.stats.states_expanded
        assert fto.stats.pruning.fixed_order_skips > 0

    def test_fork_join_collapse(self):
        graph = TaskGraph(
            [2, 1, 3, 2, 4, 1],
            {(0, 1): 2, (0, 2): 5, (0, 3): 1,
             (1, 4): 3, (2, 4): 2, (3, 4): 4, (4, 5): 1},
            name="forkjoin",
        )
        system = ProcessorSystem.fully_connected(2)
        reference = enumerate_optimal(graph, system).length
        fto = astar_schedule(
            graph, system, pruning=PruningConfig.with_fixed_order()
        )
        assert fto.optimal and fto.length == reference
        assert fto.stats.pruning.fixed_order_skips > 0

    def test_inert_on_heterogeneous_speeds(self):
        """The exchange argument needs PE-independent execution times;
        on heterogeneous systems the rule must not fire at all."""
        graph = TaskGraph([4, 3, 2, 5], {}, name="independent")
        system = ProcessorSystem.fully_connected(2, speeds=[1.0, 2.0])
        fto = astar_schedule(
            graph, system, pruning=PruningConfig.with_fixed_order()
        )
        base = astar_schedule(graph, system)
        assert fto.stats.pruning.fixed_order_skips == 0
        assert fto.stats.states_expanded == base.stats.states_expanded

    def test_inert_on_distance_scaled_links(self):
        graph = TaskGraph([4, 3, 2, 5], {(0, 3): 2}, name="g")
        system = ProcessorSystem(
            3, links=[(0, 1), (1, 2)], distance_scaled=True
        )
        fto = astar_schedule(
            graph, system, pruning=PruningConfig.with_fixed_order()
        )
        assert fto.stats.pruning.fixed_order_skips == 0

    def test_mixed_childless_and_join_regression(self):
        """The second found-by-property-testing counterexample: entry
        tasks 0 and 2 feed join task 3 (comm 1 and 0), entry task 1 is
        childless.  A join condition that tolerates childless members
        ties 1 and 2 on out-communication (both 0), the id tiebreak
        orders 1 ahead, and delaying 2 delays the join by its full
        weight (optimal 2.0, the pruned space's best is 3.0)."""
        graph = TaskGraph(
            [1, 1, 1, 1], {(0, 3): 1, (2, 3): 0}, name="regression"
        )
        system = ProcessorSystem.fully_connected(2)
        reference = enumerate_optimal(graph, system).length
        assert reference == 2.0
        for cfg in (
            PruningConfig.with_fixed_order(),
            PruningConfig.only(fixed_task_order=True),
        ):
            result = astar_schedule(graph, system, pruning=cfg)
            assert result.length == reference

    def test_mixed_entry_and_fork_regression(self):
        """The found-by-property-testing counterexample: chain 0->1->3
        (comm 2 then 0) plus isolated tasks 2 and 4.  A chain condition
        that mixes the zero-DRT entry tasks with the fork task 1 orders
        an entry task first and loses the only optimal interleaving
        (optimal 4.0, the pruned space's best is 5.0)."""
        graph = TaskGraph(
            [1, 1, 2, 1, 3], {(0, 1): 2, (1, 3): 0}, name="regression"
        )
        system = ProcessorSystem.fully_connected(2)
        reference = enumerate_optimal(graph, system).length
        assert reference == 4.0
        for cfg in (
            PruningConfig.with_fixed_order(),
            PruningConfig.only(fixed_task_order=True),
        ):
            result = astar_schedule(graph, system, pruning=cfg)
            assert result.length == reference


@settings(max_examples=60, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_fto_preserves_optimality(instance):
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    result = astar_schedule(
        graph, system, pruning=PruningConfig.with_fixed_order()
    )
    assert result.optimal
    assert result.length == pytest.approx(reference)


@settings(max_examples=40, deadline=None)
@given(task_graphs(max_nodes=5))
def test_fto_alone_preserves_optimality(graph):
    """The rule in isolation (no other pruning) against ground truth."""
    system = ProcessorSystem.fully_connected(2)
    reference = enumerate_optimal(graph, system).length
    cfg = PruningConfig.only(fixed_task_order=True)
    result = astar_schedule(graph, system, pruning=cfg)
    assert result.length == pytest.approx(reference)


@settings(max_examples=30, deadline=None)
@given(paper_instances(max_nodes=6, max_pes=3))
def test_fto_preserves_optimality_on_paper_workload(instance):
    """The §4.1 random-graph shape the benchmark gate runs on."""
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    result = astar_schedule(
        graph, system, pruning=PruningConfig.with_fixed_order()
    )
    assert result.optimal
    assert result.length == pytest.approx(reference)


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_fto_in_other_engines(instance):
    graph, system = instance
    reference = enumerate_optimal(graph, system).length
    cfg = PruningConfig.with_fixed_order()
    assert bnb_schedule(
        graph, system, pruning=cfg
    ).length == pytest.approx(reference)
    assert idastar_schedule(
        graph, system, pruning=cfg
    ).length == pytest.approx(reference)
    focal = focal_schedule(graph, system, 0.2, pruning=cfg)
    assert focal.length <= 1.2 * reference + 1e-9
