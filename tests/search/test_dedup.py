"""SignatureSet: the duplicate table and its collision fallback.

The fast path keys states by ``(mask, zobrist)`` and trusts the hash;
the ``verify`` mode re-checks every key hit against the exact signature
so a true Zobrist collision is *admitted* (and counted), never pruned.
These tests force collisions — impossible to hit by chance at 2^-64 —
both at the table level and through a whole engine run.
"""

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.schedule.partial import PartialSchedule
from repro.search.astar import astar_schedule
from repro.search.dedup import SignatureSet
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem


class TestFastPath:
    def test_check_add_admits_then_rejects(self):
        table = SignatureSet()
        assert not table.check_add(("k", 1))
        assert table.check_add(("k", 1))
        assert len(table) == 1

    def test_fast_mode_cannot_see_collisions(self):
        """Without verify, colliding keys ARE duplicates — by design."""
        table = SignatureSet()
        assert not table.check_add("key", lambda: "exact-A")
        assert table.check_add("key", lambda: "exact-B")  # falsely pruned
        assert table.collisions == 0


class TestVerifiedCollisionFallback:
    def test_forced_collision_is_admitted_not_pruned(self):
        table = SignatureSet(verify=True)
        assert not table.check_add("key", lambda: "exact-A")
        # Same 64-bit key, different placement: a true hash collision.
        assert not table.check_add("key", lambda: "exact-B")
        assert table.collisions == 1
        # Both exact signatures are now known under the key...
        assert table.check_add("key", lambda: "exact-A")
        assert table.check_add("key", lambda: "exact-B")
        # ...and a third distinct placement still gets admitted.
        assert not table.check_add("key", lambda: "exact-C")
        assert table.collisions == 2

    def test_seen_counts_collision_and_reports_unseen(self):
        table = SignatureSet(verify=True)
        table.add("key", lambda: "exact-A")
        assert table.seen("key", lambda: "exact-A")
        assert not table.seen("key", lambda: "exact-B")
        assert table.collisions == 1

    def test_copy_preserves_exact_buckets(self):
        table = SignatureSet(verify=True)
        table.add("key", lambda: "exact-A")
        dup = table.copy()
        assert not dup.check_add("key", lambda: "exact-B")
        assert dup.collisions == 1
        assert table.collisions == 0  # the original is untouched


class _ColossalCollisions(PartialSchedule):
    """States whose Zobrist lane is constant: every same-mask pair collides.

    The mask component still separates different node *sets*, so all the
    collision pressure lands exactly where the verified fallback must
    save correctness: states placing the same nodes differently.
    """

    __slots__ = ()

    def child_signature(self, node, pe):
        (mask, _z), start = super().child_signature(node, pe)
        return (mask, 0), start

    @property
    def dedup_key(self):
        return (self.mask, 0)


class TestEngineUnderCollisions:
    def test_verified_mode_stays_exact_under_total_collisions(self):
        """Force every same-mask signature to collide; verified A* must
        still reject the false duplicates and return the true optimum."""
        graph = paper_random_graph(PaperGraphSpec(num_nodes=8, ccr=1.0, seed=21))
        system = ProcessorSystem.fully_connected(3)
        truth = astar_schedule(graph, system)
        verified = astar_schedule(
            graph, system,
            pruning=PruningConfig(verify_signatures=True),
            state_cls=_ColossalCollisions,
        )
        assert verified.optimal
        assert verified.length == pytest.approx(truth.length)
        # The degenerate key makes the verified run explore at least as
        # much as the honest one (collisions admit, never prune).
        assert verified.stats.states_generated >= truth.stats.states_generated
