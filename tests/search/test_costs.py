"""Unit tests for repro.search.costs — Theorem 1 (admissibility) included."""

import pytest
from hypothesis import given, settings

from repro.schedule.partial import PartialSchedule
from repro.search.costs import (
    COST_FUNCTIONS,
    ImprovedCost,
    PaperCost,
    ZeroCost,
    make_cost_function,
)
from repro.errors import SearchError
from repro.system.processors import ProcessorSystem
from tests.strategies import task_graphs


class TestPaperCostExample:
    """h values along the paper's Figure-3 search tree."""

    def test_empty_state_f_zero(self, fig1_graph, fig1_system):
        cost = PaperCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        assert cost.h(ps) == 0.0

    def test_after_n1(self, fig1_graph, fig1_system):
        cost = PaperCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        # succ(n1) = {n2, n3, n4}; max sl = 10 → f = 2 + 10.
        assert cost.h(ps) == 10.0

    def test_after_n2_pe0(self, fig1_graph, fig1_system):
        cost = PaperCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0).extend(1, 0)
        # n_max = n2 (FT 5); succ = {n5}, sl = 7 → f = 5 + 7.
        assert cost.h(ps) == 7.0

    def test_after_n4_pe0(self, fig1_graph, fig1_system):
        cost = PaperCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0).extend(3, 0)
        # n_max = n4 (FT 6); succ = {n6}, sl = 2 → f = 6 + 2.
        assert cost.h(ps) == 2.0

    def test_goal_state_h_zero(self, fig1_graph, fig1_system):
        cost = PaperCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        for node, pe in [(0, 0), (1, 0), (2, 1), (3, 2), (4, 0), (5, 0)]:
            ps = ps.extend(node, pe)
        assert cost.h(ps) == 0.0

    def test_tie_takes_max_over_tied_nodes(self, fig1_graph, fig1_system):
        cost = PaperCost(fig1_graph, fig1_system)
        # n2 on PE1 (FT 6) and n4 on PE0 (FT 6): tie at the makespan.
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        ps = ps.extend(3, 0).extend(1, 1)
        assert ps.makespan == 6.0
        # succ(n2)={n5} sl 7; succ(n4)={n6} sl 2 → max = 7.
        assert cost.h(ps) == 7.0


class TestZeroCost:
    def test_always_zero(self, fig1_graph, fig1_system):
        cost = ZeroCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        assert cost.h(ps) == 0.0

    def test_counts_evaluations(self, fig1_graph, fig1_system):
        cost = ZeroCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        cost.h(ps)
        cost.h(ps)
        assert cost.evaluations == 2


class TestImprovedCost:
    def test_dominates_paper_cost(self, fig1_graph, fig1_system):
        paper = PaperCost(fig1_graph, fig1_system)
        improved = ImprovedCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        states = [ps]
        states.append(ps.extend(1, 0))
        states.append(ps.extend(3, 1))
        for s in states:
            assert improved.h(s) >= paper.h(s) - 1e-9


class TestRegistry:
    def test_all_registered(self):
        assert set(COST_FUNCTIONS) == {
            "paper", "zero", "improved", "load", "combined",
        }

    def test_make_by_name(self, fig1_graph, fig1_system):
        assert isinstance(
            make_cost_function("paper", fig1_graph, fig1_system), PaperCost
        )

    def test_unknown_name(self, fig1_graph, fig1_system):
        with pytest.raises(SearchError, match="unknown cost function"):
            make_cost_function("nope", fig1_graph, fig1_system)


def _all_states(graph, system, limit=3000):
    """Enumerate reachable states (deduped) for admissibility checks."""
    stack = [PartialSchedule.empty(graph, system)]
    seen = set()
    out = []
    while stack and len(out) < limit:
        ps = stack.pop()
        if ps.signature in seen:
            continue
        seen.add(ps.signature)
        out.append(ps)
        if not ps.is_complete():
            for node in ps.ready_nodes():
                for pe in range(system.num_pes):
                    stack.append(ps.extend(node, pe))
    return out


def _optimal_completion(ps):
    """Exact optimal completion length from a partial schedule (DFS)."""
    best = [float("inf")]

    def rec(state):
        if state.is_complete():
            best[0] = min(best[0], state.makespan)
            return
        for node in state.ready_nodes():
            for pe in range(state.system.num_pes):
                rec(state.extend(node, pe))

    rec(ps)
    return best[0]


@settings(max_examples=25, deadline=None)
@given(task_graphs(max_nodes=4))
def test_theorem1_admissibility(graph):
    """f(s) = g + h never exceeds the optimal completion through s."""
    system = ProcessorSystem.fully_connected(2)
    for name in COST_FUNCTIONS:
        cost = make_cost_function(name, graph, system)
        for ps in _all_states(graph, system, limit=60):
            f = ps.makespan + cost.h(ps)
            assert f <= _optimal_completion(ps) + 1e-9, (
                f"cost {name} inadmissible at {ps.signature}"
            )


@settings(max_examples=20, deadline=None)
@given(task_graphs(max_nodes=4))
def test_admissibility_heterogeneous(graph):
    system = ProcessorSystem.fully_connected(2, speeds=[1.0, 2.0])
    for name in ("paper", "improved"):
        cost = make_cost_function(name, graph, system)
        for ps in _all_states(graph, system, limit=40):
            f = ps.makespan + cost.h(ps)
            assert f <= _optimal_completion(ps) + 1e-9
