"""Unit tests for exhaustive enumeration."""

import pytest

from repro.errors import SearchError
from repro.graph.taskgraph import TaskGraph
from repro.search.enumerate import count_complete_schedules, enumerate_optimal
from repro.system.processors import ProcessorSystem


class TestEnumerateOptimal:
    def test_paper_example(self, fig1_graph, fig1_system):
        result = enumerate_optimal(fig1_graph, fig1_system)
        assert result.optimal
        assert result.length == 14.0

    def test_single_node(self):
        result = enumerate_optimal(TaskGraph([3], {}), ProcessorSystem(2))
        assert result.length == 3.0

    def test_size_guard_dedup(self):
        g = TaskGraph([1] * 13, {})
        with pytest.raises(SearchError, match="limited"):
            enumerate_optimal(g, ProcessorSystem(2))

    def test_size_guard_tree(self):
        g = TaskGraph([1] * 9, {})
        with pytest.raises(SearchError, match="limited"):
            enumerate_optimal(g, ProcessorSystem(2), dedup=False)

    def test_tree_mode_agrees_with_dedup(self):
        g = TaskGraph([2, 3, 4], {(0, 1): 1, (0, 2): 2})
        s = ProcessorSystem(2)
        assert (
            enumerate_optimal(g, s, dedup=True).length
            == enumerate_optimal(g, s, dedup=False).length
        )


class TestCountCompleteSchedules:
    def test_paper_claim_more_than_729(self, fig1_graph, fig1_system):
        # The paper: the exhaustive tree has more than 3^6 = 729 states.
        count = count_complete_schedules(fig1_graph, fig1_system)
        assert count >= 3**6

    def test_exact_count_tiny(self):
        # Two independent nodes on 2 PEs: 2 orders × 4 placements = 8 leaves.
        g = TaskGraph([1, 1], {})
        assert count_complete_schedules(g, ProcessorSystem(2)) == 8

    def test_chain_count(self):
        # A chain has one order; p^v placements.
        g = TaskGraph([1, 1, 1], {(0, 1): 1, (1, 2): 1})
        assert count_complete_schedules(g, ProcessorSystem(2)) == 8

    def test_size_guard(self):
        g = TaskGraph([1] * 9, {})
        with pytest.raises(SearchError):
            count_complete_schedules(g, ProcessorSystem(2))
