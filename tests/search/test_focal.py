"""Unit tests for the approximate Aε* (Theorem 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.schedule.validate import schedule_violations
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestPaperExample:
    @pytest.mark.parametrize("eps", [0.0, 0.2, 0.5])
    def test_within_bound(self, eps, fig1_graph, fig1_system):
        result = focal_schedule(fig1_graph, fig1_system, eps)
        assert result.length <= (1 + eps) * 14.0 + 1e-9
        assert schedule_violations(result.schedule) == []

    def test_eps_zero_is_optimal(self, fig1_graph, fig1_system):
        result = focal_schedule(fig1_graph, fig1_system, 0.0)
        assert result.length == 14.0
        assert result.optimal

    def test_bound_recorded(self, fig1_graph, fig1_system):
        result = focal_schedule(fig1_graph, fig1_system, 0.2)
        assert result.bound == pytest.approx(1.2)

    def test_negative_epsilon_rejected(self, fig1_graph, fig1_system):
        with pytest.raises(SearchError, match="epsilon"):
            focal_schedule(fig1_graph, fig1_system, -0.1)


class TestSpeedVsQuality:
    def test_larger_eps_expands_no_more(self, small_random_graphs):
        """Aε* should usually expand fewer states than exact A*."""
        system = ProcessorSystem.fully_connected(3)
        total_exact = 0
        total_approx = 0
        for g in small_random_graphs:
            exact = focal_schedule(g, system, 0.0)
            approx = focal_schedule(g, system, 0.5)
            total_exact += exact.stats.states_expanded
            total_approx += approx.stats.states_expanded
            assert approx.length <= 1.5 * exact.length + 1e-9
        assert total_approx <= total_exact

    def test_budget_fallback(self, fig1_graph, fig1_system):
        result = focal_schedule(
            fig1_graph, fig1_system, 0.2, budget=Budget(max_expanded=1)
        )
        assert result.schedule is not None
        assert not result.optimal


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2), st.sampled_from([0.1, 0.2, 0.5, 1.0]))
def test_theorem2_epsilon_admissibility(instance, eps):
    """Returned length ≤ (1+ε) × optimal, for every ε (Theorem 2)."""
    graph, system = instance
    optimal = enumerate_optimal(graph, system).length
    result = focal_schedule(graph, system, eps)
    assert result.length <= (1 + eps) * optimal + 1e-9
    assert schedule_violations(result.schedule) == []


@settings(max_examples=20, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_eps_zero_equals_astar(instance):
    graph, system = instance
    optimal = enumerate_optimal(graph, system).length
    result = focal_schedule(graph, system, 0.0)
    assert result.length == pytest.approx(optimal)
