"""Unit tests for depth-first branch-and-bound."""

import pytest
from hypothesis import given, settings

from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.pruning import PruningConfig
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestPaperExample:
    def test_optimal(self, fig1_graph, fig1_system):
        result = bnb_schedule(fig1_graph, fig1_system)
        assert result.optimal
        assert result.length == 14.0
        assert schedule_violations(result.schedule) == []

    def test_memory_light_mode(self, fig1_graph, fig1_system):
        result = bnb_schedule(fig1_graph, fig1_system, use_visited=False)
        assert result.optimal
        assert result.length == 14.0

    def test_agrees_with_astar(self, fig1_graph, fig1_system):
        a = astar_schedule(fig1_graph, fig1_system)
        b = bnb_schedule(fig1_graph, fig1_system)
        assert a.length == b.length

    def test_budget(self, fig1_graph, fig1_system):
        result = bnb_schedule(fig1_graph, fig1_system, budget=Budget(max_expanded=1))
        assert not result.optimal
        assert result.schedule is not None  # incumbent = heuristic schedule

    def test_cost_variants(self, fig1_graph, fig1_system):
        for cost in ("paper", "improved", "zero"):
            assert bnb_schedule(fig1_graph, fig1_system, cost=cost).length == 14.0

    def test_stack_memory_smaller_than_astar_open(self, fig1_graph, fig1_system):
        a = astar_schedule(fig1_graph, fig1_system)
        b = bnb_schedule(fig1_graph, fig1_system)
        # DFS keeps a much smaller frontier than best-first OPEN.
        assert b.stats.max_open_size <= a.stats.max_open_size * 2


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_bnb_matches_exhaustive(instance):
    graph, system = instance
    b = bnb_schedule(graph, system)
    e = enumerate_optimal(graph, system)
    assert b.optimal
    assert b.length == pytest.approx(e.length)


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=4, max_pes=2))
def test_bnb_no_pruning_matches(instance):
    graph, system = instance
    b = bnb_schedule(graph, system, pruning=PruningConfig.none())
    e = enumerate_optimal(graph, system)
    assert b.length == pytest.approx(e.length)
