"""Import-time conformance of the engine registry (the anytime contract).

Parametrized over :data:`repro.search.ENGINES` so a newly registered
engine is checked automatically: signature carries the keyword-only
``budget=``/``incumbent=``/``probe=``, and a smoke run populates
``lower_bound``/``interrupted`` on the returned SearchResult.
"""

import inspect

import pytest

import repro.search as search
from repro.graph.examples import paper_example_dag, paper_example_system
from repro.search import ENGINES, get_engine, register_engine, unregister_engine
from repro.search.result import SearchResult
from repro.util.timing import Budget

REQUIRED_KWONLY = ("budget", "incumbent", "probe")

#: Extra arguments each engine needs for a smoke run on the worked
#: example (wastar/focal take a positional epsilon; hda runs its
#: workers=1 serial fallback to stay cheap in-suite).
SMOKE_ARGS = {
    "wastar": ((0.0,), {}),
    "focal": ((0.0,), {}),
    "hda": ((), {"workers": 1}),
}


class TestRegistry:
    def test_all_expected_engines_registered(self):
        assert set(ENGINES) >= {
            "astar", "bnb", "idastar", "wastar", "focal", "enumerate", "hda"
        }

    def test_get_engine_resolves_every_name(self):
        for name in ENGINES:
            assert callable(get_engine(name))

    def test_unknown_engine_raises_with_listing(self):
        with pytest.raises(ValueError, match="astar"):
            get_engine("definitely-not-an-engine")

    def test_register_engine_round_trip(self):
        def fake_schedule(graph, system, *, budget=None, incumbent=None,
                          probe=None):
            raise NotImplementedError

        register_engine("fake", lambda: fake_schedule)
        try:
            assert "fake" in search.ENGINES  # dynamic via __getattr__
            assert get_engine("fake") is fake_schedule
        finally:
            unregister_engine("fake")
        assert "fake" not in search.ENGINES
        with pytest.raises(ValueError):
            get_engine("fake")

    def test_register_engine_validates(self):
        with pytest.raises(ValueError):
            register_engine("", lambda: None)
        with pytest.raises(TypeError):
            register_engine("x", "not-callable")


class TestContract:
    @pytest.mark.parametrize("name", list(ENGINES))
    def test_signature_has_anytime_keywords(self, name):
        params = inspect.signature(get_engine(name)).parameters
        for required in REQUIRED_KWONLY:
            assert required in params, f"{name} lacks {required}="
            assert params[required].kind is inspect.Parameter.KEYWORD_ONLY
            assert params[required].default is None

    @pytest.mark.parametrize("name", list(ENGINES))
    def test_complete_run_populates_contract_fields(self, name):
        args, kwargs = SMOKE_ARGS.get(name, ((), {}))
        result = get_engine(name)(
            paper_example_dag(), paper_example_system(), *args, **kwargs
        )
        assert isinstance(result, SearchResult)
        assert result.interrupted is None
        # A completed run certifies its own answer: for exact engines
        # the floor equals the schedule length; approximate ones may
        # certify a smaller floor but never a meaningless one.
        assert 0.0 < result.lower_bound <= result.schedule.length

    @pytest.mark.parametrize("name", list(ENGINES))
    def test_budget_stop_reports_interrupted(self, name):
        args, kwargs = SMOKE_ARGS.get(name, ((), {}))
        result = get_engine(name)(
            paper_example_dag(), paper_example_system(), *args,
            budget=Budget(max_expanded=1), **kwargs
        )
        assert result.interrupted is not None
        assert result.optimal is False
        assert result.schedule is not None

    @pytest.mark.parametrize("name", list(ENGINES))
    def test_incumbent_warm_start_accepted(self, name):
        from repro.heuristics.listsched import fast_upper_bound_schedule

        graph, system = paper_example_dag(), paper_example_system()
        warm = fast_upper_bound_schedule(graph, system)
        args, kwargs = SMOKE_ARGS.get(name, ((), {}))
        result = get_engine(name)(
            graph, system, *args, incumbent=warm, **kwargs
        )
        # The warm start may only help, never hurt.
        assert result.schedule.length <= warm.length


class TestPreprocessedParity:
    """Every registered engine must behave on a preprocessed instance
    exactly as on a raw one: same proven makespan, restorable schedule,
    and deterministic (placement-identical) repeat runs."""

    def _instance(self):
        from repro.graph.taskgraph import TaskGraph

        # Diamond with a removable shortcut (0, 2) plus a sibling, so
        # preprocessing genuinely changes the graph the engine sees.
        graph = TaskGraph(
            [1, 5, 1, 2],
            {(0, 1): 1, (1, 2): 1, (0, 2): 3, (0, 3): 2},
            name="parity",
        )
        return graph, paper_example_system()

    @staticmethod
    def _placements(schedule):
        return tuple(
            (t.node, t.pe, t.start, t.finish)
            for t in sorted(schedule.tasks, key=lambda t: t.node)
        )

    @pytest.mark.parametrize("name", list(ENGINES))
    def test_equal_makespans_and_deterministic_restore(self, name):
        from repro.schedule.preprocess import preprocess_instance
        from repro.schedule.validate import validate_schedule

        graph, system = self._instance()
        pre = preprocess_instance(graph, system)
        assert not pre.is_identity  # the shortcut must be gone
        args, kwargs = SMOKE_ARGS.get(name, ((), {}))
        base = get_engine(name)(graph, system, *args, **kwargs)
        red = get_engine(name)(pre.graph, system, *args, **kwargs)
        restored = pre.restore(red.schedule)
        validate_schedule(restored)
        assert restored.graph == graph
        assert restored.length == pytest.approx(base.schedule.length)
        again = get_engine(name)(pre.graph, system, *args, **kwargs)
        assert self._placements(pre.restore(again.schedule)) == (
            self._placements(restored)
        )
