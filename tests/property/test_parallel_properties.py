"""Property-based invariants of the parallel machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.search.astar import astar_schedule
from tests.strategies import scheduling_instances


@settings(max_examples=15, deadline=None)
@given(
    scheduling_instances(max_nodes=5, max_pes=2),
    st.sampled_from([1, 2, 4, 8]),
    st.sampled_from(["mesh", "ring", "clique"]),
)
def test_parallel_exactness_across_configs(instance, q, topology):
    """Any PPE count and topology proves the serial optimum."""
    graph, system = instance
    serial = astar_schedule(graph, system)
    par = parallel_astar_schedule(
        graph, system, MachineSpec(num_ppes=q, topology=topology)
    )
    assert par.result.optimal
    assert par.result.length == pytest.approx(serial.length)


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_simulation_accounting_invariants(instance):
    graph, system = instance
    par = parallel_astar_schedule(graph, system, MachineSpec(num_ppes=4))
    # Makespan covers at least the critical serial fraction of the work.
    assert par.makespan_units >= par.seed_expansions * par.spec.expansion_cost
    assert par.makespan_units >= max(par.per_ppe_expansions) * par.spec.expansion_cost
    # Message/phase counters are consistent.
    assert par.phases >= 1
    assert par.comm_rounds <= par.phases
    assert par.comm_units <= par.makespan_units + 1e-9


@settings(max_examples=10, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_deterministic_simulation(instance):
    graph, system = instance
    spec = MachineSpec(num_ppes=4)
    a = parallel_astar_schedule(graph, system, spec)
    b = parallel_astar_schedule(graph, system, spec)
    assert a.makespan_units == b.makespan_units
    assert a.per_ppe_expansions == b.per_ppe_expansions
    assert a.result.length == b.result.length
