"""Property-based invariants of schedules and partial schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.partial import PartialSchedule
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from tests.strategies import scheduling_instances, task_graphs


@settings(max_examples=40, deadline=None)
@given(scheduling_instances(max_nodes=6, max_pes=3), st.randoms(use_true_random=False))
def test_random_greedy_completion_always_feasible(instance, rnd):
    """Any sequence of (ready node, any PE) extensions yields feasibility."""
    graph, system = instance
    ps = PartialSchedule.empty(graph, system)
    while not ps.is_complete():
        ready = ps.ready_nodes()
        node = rnd.choice(ready)
        pe = rnd.randrange(system.num_pes)
        ps = ps.extend(node, pe)
    assert schedule_violations(ps.to_schedule()) == []


@settings(max_examples=40, deadline=None)
@given(scheduling_instances(max_nodes=6, max_pes=3), st.randoms(use_true_random=False))
def test_signature_order_independence(instance, rnd):
    """Two random interleavings reaching identical placements collide."""
    graph, system = instance
    placements = {}
    ps = PartialSchedule.empty(graph, system)
    while not ps.is_complete():
        node = rnd.choice(ps.ready_nodes())
        pe = rnd.randrange(system.num_pes)
        ps = ps.extend(node, pe)
        placements[node] = pe
    # Rebuild in topological order with the same PEs; starts must match
    # only if the rebuild produces the same EST chain — check signature of
    # identical placement orderings instead:
    rebuilt = PartialSchedule.empty(graph, system)
    order = sorted(range(graph.num_nodes), key=lambda n: (ps.starts[n], n))
    for node in order:
        rebuilt = rebuilt.extend(node, placements[node])
    assert rebuilt.signature == ps.signature


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_optimal_schedule_tasks_cover_graph(instance):
    graph, system = instance
    sched = astar_schedule(graph, system).schedule
    assert {t.node for t in sched.tasks} == set(range(graph.num_nodes))
    assert sched.length == max(t.finish for t in sched.tasks)


@settings(max_examples=30, deadline=None)
@given(task_graphs(max_nodes=6))
def test_single_pe_schedule_length_is_total_work(graph):
    """On one PE every schedule is a serialization: optimal = Σ weights."""
    from repro.system.processors import ProcessorSystem

    result = astar_schedule(graph, ProcessorSystem(1))
    assert result.length == pytest.approx(graph.total_computation)


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_est_never_below_parent_finish(instance):
    graph, system = instance
    ps = PartialSchedule.empty(graph, system)
    for node in graph.topological_order:
        pe = node % system.num_pes
        est = ps.est(node, pe)
        for parent in graph.preds(node):
            assert est >= ps.finishes[parent] - 1e-9
        ps = ps.extend(node, pe)
