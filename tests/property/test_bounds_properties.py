"""Properties of the composite lower bound and the state aggregates.

The ``combined`` cost (``max(paper, load)``) is the exact-search
default wherever capacity binds, so its contract is load-bearing:

* it must **dominate** the paper bound state-for-state (never smaller —
  the A* theory then guarantees it never expands more states),
* it must stay **admissible** (never exceed the true optimal completion
  cost through a state — optimality of the returned schedule depends on
  it),
* the load-bound aggregates (``remaining_weight`` / ``busy_time`` /
  ``total_idle``) must be maintained exactly through every
  serialization path (``to_wire``/``from_wire``, ``compact``/
  ``inflate``), or HDA* workers would search under a different bound
  than the serial engines.

The ``ImprovedCost`` fast path (scheduled-parent skip via
``pred_masks``) is pinned against a naive reimplementation of the
original per-parent scan.
"""

import math

import pytest
from hypothesis import given, settings

from repro.schedule.partial import PartialSchedule
from repro.schedule.partial_reference import ReferencePartialSchedule
from repro.search.costs import (
    CombinedCost,
    ImprovedCost,
    LoadBoundCost,
    PaperCost,
)
from repro.search.astar import astar_schedule
from tests.strategies import paper_instances, scheduling_instances

_SETTINGS = settings(max_examples=40, deadline=None)


def _walk_states(graph, system, limit=80):
    """A deterministic sample of reachable states (DFS, deduped)."""
    stack = [PartialSchedule.empty(graph, system)]
    seen = set()
    out = []
    while stack and len(out) < limit:
        ps = stack.pop()
        if ps.signature in seen:
            continue
        seen.add(ps.signature)
        out.append(ps)
        if not ps.is_complete():
            for node in ps.ready_nodes():
                for pe in range(system.num_pes):
                    stack.append(ps.extend(node, pe))
    return out


def _optimal_completion(ps):
    """Exact optimal completion length from a partial schedule (DFS)."""
    best = math.inf

    def rec(state):
        nonlocal best
        if state.is_complete():
            best = min(best, state.makespan)
            return
        for node in state.ready_nodes():
            for pe in range(state.system.num_pes):
                rec(state.extend(node, pe))

    rec(ps)
    return best


@_SETTINGS
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_combined_dominates_paper_state_for_state(instance):
    graph, system = instance
    paper = PaperCost(graph, system)
    combined = CombinedCost(graph, system)
    for ps in _walk_states(graph, system):
        assert combined.h(ps) >= paper.h(ps) - 1e-12


@_SETTINGS
@given(scheduling_instances(max_nodes=4, max_pes=3))
def test_load_and_combined_admissible(instance):
    graph, system = instance
    load = LoadBoundCost(graph, system)
    combined = CombinedCost(graph, system)
    for ps in _walk_states(graph, system, limit=40):
        opt = _optimal_completion(ps)
        assert ps.makespan + load.h(ps) <= opt + 1e-9
        assert ps.makespan + combined.h(ps) <= opt + 1e-9


@settings(max_examples=25, deadline=None)
@given(paper_instances(max_nodes=6, max_pes=3))
def test_combined_admissible_on_paper_workload(instance):
    """Admissibility on the §4.1 random-graph shape the gate runs on:
    A* under the combined bound must return the same optimal makespan
    as under the paper bound.

    No expansion-count inequality here, deliberately: pointwise
    dominance (``test_combined_dominates_paper``) only forces a subset
    relation on the states expanded *strictly below* the optimum.  On
    the ``f == C*`` goal plateau the two bounds produce different heap
    tie-orders, so the dominating bound can pop a few more plateau
    states on tiny instances (hypothesis found a v=5 example: 29 vs 27
    expansions, identical makespan).  The aggregate expansion win is
    what ``benchmarks/bench_bounds.py`` gates instead."""
    graph, system = instance
    a = astar_schedule(graph, system, cost="paper")
    b = astar_schedule(graph, system, cost="combined")
    assert a.optimal and b.optimal
    assert b.length == a.length


@_SETTINGS
@given(scheduling_instances())
def test_aggregates_maintained_and_consistent(instance):
    """Delta-maintained aggregates equal their from-scratch definitions
    at every step of a greedy walk, on both state representations."""
    graph, system = instance
    new = PartialSchedule.empty(graph, system)
    ref = ReferencePartialSchedule.empty(graph, system)
    p = system.num_pes
    for i, node in enumerate(graph.topological_order):
        pe = i % p
        new = new.extend(node, pe)
        ref = ref.extend(node, pe)
        assert new.remaining_weight == ref.remaining_weight
        assert new.busy_time == ref.busy_time
        assert new.total_idle == ref.total_idle
        # From-scratch definitions.
        expected_rem = sum(
            graph.weight(n) for n in range(graph.num_nodes)
            if not (new.mask >> n) & 1
        )
        assert new.remaining_weight == pytest.approx(expected_rem)
        # Busy + committed idle account for every PE's ready time.
        assert sum(new.busy_time) + new.total_idle == pytest.approx(
            sum(new.ready_time)
        )
    assert new.remaining_weight == pytest.approx(0.0)


@_SETTINGS
@given(scheduling_instances())
def test_aggregates_roundtrip_wire_and_compact(instance):
    graph, system = instance
    state = PartialSchedule.empty(graph, system)
    p = system.num_pes
    order = list(graph.topological_order)
    for i, node in enumerate(order[: max(1, len(order) // 2)]):
        state = state.extend(node, (i + 1) % p)
    wired = PartialSchedule.from_wire(graph, system, state.to_wire())
    inflated = PartialSchedule.inflate(graph, system, state.compact())
    for clone in (wired, inflated):
        assert clone.remaining_weight == state.remaining_weight
        assert clone.busy_time == state.busy_time
        assert clone.total_idle == state.total_idle
    # A cost evaluated on the reconstruction must be bit-identical —
    # HDA* workers must search under the serial engines' exact bound.
    cost = CombinedCost(graph, system)
    assert cost.h(wired) == cost.h(state)
    assert cost.h(inflated) == cost.h(state)


def _improved_h_reference(cost, ps):
    """The pre-optimization ImprovedCost.h: per-parent shift tests."""
    g = ps.makespan
    mask = ps.mask
    finishes = ps.finishes
    sl = cost._sl
    graph = cost.graph
    offsets = graph.pred_offsets
    preds = graph.pred_flat
    best = 0.0
    for j in range(len(finishes)):
        if (mask >> j) & 1:
            continue
        est = 0.0
        for i in range(offsets[j], offsets[j + 1]):
            p = preds[i]
            if (mask >> p) & 1 and finishes[p] > est:
                est = finishes[p]
        bound = est + sl[j] - g
        if bound > best:
            best = bound
    return best


@_SETTINGS
@given(scheduling_instances(max_nodes=6, max_pes=3))
def test_improved_cost_fast_path_identical(instance):
    """The pred_masks scheduled-parent skip must not change a single h
    value relative to the original per-parent scan."""
    graph, system = instance
    cost = ImprovedCost(graph, system)
    for ps in _walk_states(graph, system):
        assert cost.h(ps) == _improved_h_reference(cost, ps)
