"""Property-based invariants of the search engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.costs import make_cost_function
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.pruning import PruningConfig
from repro.heuristics.bounds import makespan_lower_bound, upper_bound_cost
from tests.strategies import scheduling_instances


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_optimum_within_analytic_bounds(instance):
    graph, system = instance
    opt = astar_schedule(graph, system).length
    assert makespan_lower_bound(graph, system) - 1e-9 <= opt
    assert opt <= upper_bound_cost(graph, system) + 1e-9


@settings(max_examples=25, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_full_pruning_explores_no_more_than_none(instance):
    graph, system = instance
    full = astar_schedule(graph, system, pruning=PruningConfig.all())
    none = astar_schedule(graph, system, pruning=PruningConfig.none())
    assert full.length == pytest.approx(none.length)
    assert full.stats.states_generated <= none.stats.states_generated


@settings(max_examples=25, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_adding_processors_never_hurts(instance):
    """Optimal length is monotone non-increasing in PE count (cliques)."""
    from repro.system.processors import ProcessorSystem

    graph, _ = instance
    prev = None
    for p in (1, 2, 3):
        length = astar_schedule(graph, ProcessorSystem.fully_connected(p)).length
        if prev is not None:
            assert length <= prev + 1e-9
        prev = length


@settings(max_examples=25, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2), st.floats(0.0, 1.0))
def test_focal_monotone_in_epsilon_bound(instance, eps):
    """Aε* length is within (1+ε)·opt — and never below opt."""
    graph, system = instance
    opt = enumerate_optimal(graph, system).length
    res = focal_schedule(graph, system, eps)
    assert opt - 1e-9 <= res.length <= (1 + eps) * opt + 1e-9


@settings(max_examples=20, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_engines_return_feasible_schedules(instance):
    graph, system = instance
    for engine in (astar_schedule, bnb_schedule):
        result = engine(graph, system)
        assert schedule_violations(result.schedule) == []


@settings(max_examples=20, deadline=None)
@given(scheduling_instances(max_nodes=4, max_pes=2))
def test_f_of_popped_goal_equals_length(instance):
    """At a goal, h = 0, so f = g = schedule length."""
    graph, system = instance
    result = astar_schedule(graph, system)
    cost = make_cost_function("paper", graph, system)
    # Rebuild the goal as a partial schedule and check h = 0.
    from repro.schedule.partial import PartialSchedule

    ps = PartialSchedule.empty(graph, system)
    order = sorted(
        range(graph.num_nodes), key=lambda n: result.schedule.start_time(n)
    )
    for node in order:
        ps = ps.extend(node, result.schedule.pe_of(node))
    assert ps.is_complete()
    assert cost.h(ps) == 0.0
