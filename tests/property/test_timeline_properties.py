"""Timeline properties: every engine's convergence series is monotone
and lands exactly on its final counters.

The probe contract (``repro/obs/probe.py``) promises, regardless of
engine internals:

* wall time and expansions never decrease along the series,
* the incumbent never increases and the lower bound never decreases,
* the final sample's expansion count equals ``stats.states_expanded``
  (engines always ``finish`` with their cumulative counter),
* the final incumbent is a schedule the engine actually produced, so
  it never undercuts a *proven* floor and never exceeds the returned
  schedule's length (running-min: later engines may return a popped
  goal no shorter than the best complete child generated en route).

These hold on optimal runs, bounded-suboptimal runs (weighted/focal),
and budget-interrupted runs alike — which is what makes the timeline
safe to plot and to merge across portfolio stages.
"""

import math

from hypothesis import given, settings

from repro.obs.probe import SearchProbe
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.focal import focal_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.util.timing import Budget
from tests.strategies import paper_instances

_SETTINGS = settings(max_examples=15, deadline=None)

_TOL = 1e-6

ENGINES = [
    ("astar", lambda g, s, probe: astar_schedule(g, s, probe=probe)),
    ("bnb", lambda g, s, probe: bnb_schedule(g, s, probe=probe)),
    ("idastar", lambda g, s, probe: idastar_schedule(g, s, probe=probe)),
    ("weighted", lambda g, s, probe: weighted_astar_schedule(
        g, s, 0.2, probe=probe)),
    ("focal", lambda g, s, probe: focal_schedule(g, s, 0.2, probe=probe)),
]


def _assert_monotone(samples):
    for prev, cur in zip(samples, samples[1:]):
        assert cur.wall_time >= prev.wall_time
        assert cur.expansions >= prev.expansions
        assert cur.incumbent <= prev.incumbent
        assert cur.lower_bound >= prev.lower_bound


def _assert_timeline_contract(name, result):
    samples = result.timeline
    assert samples, f"{name}: probe attached no timeline"
    _assert_monotone(samples)
    final = samples[-1]
    assert final.expansions == result.stats.states_expanded, (
        f"{name}: final sample {final.expansions} != "
        f"stats {result.stats.states_expanded}"
    )
    assert math.isfinite(final.incumbent), f"{name}: no incumbent recorded"
    assert final.incumbent <= result.length + _TOL
    assert final.lower_bound <= result.length + _TOL


class TestEngineTimelines:
    @given(inst=paper_instances())
    @_SETTINGS
    def test_all_engines_monotone_and_consistent(self, inst):
        graph, system = inst
        for name, solve in ENGINES:
            result = solve(graph, system, SearchProbe(every=1))
            _assert_timeline_contract(name, result)

    @given(inst=paper_instances())
    @_SETTINGS
    def test_coarse_interval_still_finishes(self, inst):
        # Interval far beyond the run length: only finish() fires, and
        # the single sample still satisfies the contract.
        graph, system = inst
        result = astar_schedule(graph, system,
                                probe=SearchProbe(every=10_000_000))
        assert len(result.timeline) == 1
        _assert_timeline_contract("astar", result)

    @given(inst=paper_instances())
    @_SETTINGS
    def test_budget_interrupt_keeps_contract(self, inst):
        graph, system = inst
        result = astar_schedule(
            graph, system, budget=Budget(max_expanded=3),
            probe=SearchProbe(every=1),
        )
        samples = result.timeline
        assert samples
        _assert_monotone(samples)
        assert samples[-1].expansions == result.stats.states_expanded
        # Interrupted searches still return the fallback incumbent, so
        # the final sample reflects a real schedule.
        assert math.isfinite(samples[-1].incumbent)

    @given(inst=paper_instances())
    @_SETTINGS
    def test_no_probe_means_empty_timeline(self, inst):
        graph, system = inst
        result = astar_schedule(graph, system)
        assert result.timeline == ()
