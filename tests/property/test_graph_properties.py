"""Property-based invariants of generators and graph analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.analysis import compute_levels, critical_path
from repro.graph.generators.classic import diamond_graph, in_tree_graph, out_tree_graph
from repro.graph.generators.kernels import (
    divide_and_conquer_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
    lu_decomposition_graph,
)
from repro.graph.generators.layered import layered_random_graph
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.validate import is_connected_dag
from repro.search.expansion import node_equivalence_classes


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 24), st.sampled_from([0.1, 1.0, 10.0]), st.integers(0, 10**6))
def test_paper_generator_contract(v, ccr, seed):
    g = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
    assert g.num_nodes == v
    assert is_connected_dag(g)
    assert g.entry_nodes == (0,)
    assert all(w >= 1 for w in g.weights)
    assert all(c >= 1 for c in g.edges.values())
    for (u, w) in g.edges:
        assert u < w  # generation order is topological


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(1, 4), st.integers(0, 1000))
def test_layered_generator_contract(layers, width, seed):
    g = layered_random_graph(layers, width, seed=seed)
    assert g.num_nodes == layers * width
    for (u, v) in g.edges:
        assert u // width < v // width


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 7))
def test_kernel_generators_well_formed(m):
    for g in (
        gaussian_elimination_graph(m),
        lu_decomposition_graph(min(m, 5)),
        laplace_graph(min(m, 5)),
    ):
        assert is_connected_dag(g)
        assert len(g.entry_nodes) >= 1
        assert len(g.exit_nodes) >= 1


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 4))
def test_fft_and_dnc_well_formed(k):
    assert is_connected_dag(fft_graph(k))
    assert is_connected_dag(divide_and_conquer_graph(k))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 4), st.integers(1, 3))
def test_tree_mirror_levels(depth, branching):
    """An in-tree's exit static level mirrors the out-tree's entry level."""
    out_t = out_tree_graph(depth, branching, comp=3, comm=2)
    in_t = in_tree_graph(depth, branching, comp=3, comm=2)
    out_levels = compute_levels(out_t)
    in_levels = compute_levels(in_t)
    assert out_levels.static_cp_length == in_levels.static_cp_length
    assert out_levels.cp_length == in_levels.cp_length


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 5))
def test_diamond_symmetric_equivalences(size):
    """Same-layer diamond nodes with identical wiring are Def-3 equivalent."""
    g = diamond_graph(size, comp=4, comm=2)
    classes = node_equivalence_classes(g)
    flat = sorted(n for cls in classes for n in cls)
    assert flat == list(range(g.num_nodes))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 16), st.integers(0, 100))
def test_critical_path_is_actual_path(v, seed):
    g = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))
    length, path = critical_path(g)
    # Consecutive path elements are actual edges.
    for u, w in zip(path, path[1:]):
        assert w in g.succs(u)
    # Path length (nodes + edges) equals the reported CP length.
    total = sum(g.weight(n) for n in path) + sum(
        g.comm_cost(u, w) for u, w in zip(path, path[1:])
    )
    assert abs(total - length) < 1e-9
