"""Delta-encoded states must be indistinguishable from the old tuples.

The search-state layer was rewritten from fully-materialized tuple
states to delta-encoded states with incremental Zobrist signatures (see
DESIGN.md).  The original implementation is kept as
:class:`repro.schedule.partial_reference.ReferencePartialSchedule`, and
every engine accepts a ``state_cls`` — so the strongest possible
regression test is to run the *same* engine over both representations
and demand byte-identical observable behaviour:

* the returned schedule's exact placements,
* ``states_expanded`` / ``states_generated``,
* every pruning counter (duplicate hits included — i.e. the Zobrist
  duplicate keys partition candidate states exactly like the exact
  tuple signatures on these instances).
"""

from hypothesis import given, settings

from repro.schedule.partial import PartialSchedule, placement_key
from repro.schedule.partial_reference import ReferencePartialSchedule
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.focal import focal_schedule
from repro.search.idastar import idastar_schedule
from repro.search.pruning import PruningConfig
from repro.search.weighted import weighted_astar_schedule
from tests.strategies import scheduling_instances

_SETTINGS = settings(max_examples=40, deadline=None)


def _placements(schedule):
    """Exact per-node (pe, start, finish) triples of a schedule."""
    return tuple(
        (t.node, t.pe, t.start, t.finish)
        for t in sorted(schedule.tasks, key=lambda t: t.node)
    )


def _observables(result):
    return (
        _placements(result.schedule),
        result.optimal,
        result.stats.states_expanded,
        result.stats.states_generated,
        result.stats.pruning.as_dict(),
    )


def _assert_equivalent(run):
    new = run(PartialSchedule)
    ref = run(ReferencePartialSchedule)
    assert _observables(new) == _observables(ref)


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(graph, system, state_cls=cls)
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_no_pruning(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(
            graph, system, pruning=PruningConfig.none(), state_cls=cls
        )
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_commutation(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(
            graph, system, pruning=PruningConfig.extended(), state_cls=cls
        )
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_verified_signatures(instance):
    """The verified-on-collision path must not change behaviour either."""
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(
            graph,
            system,
            pruning=PruningConfig(verify_signatures=True),
            state_cls=cls,
        )
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_combined_cost(instance):
    """The composite bound reads the delta-maintained load aggregates;
    both representations must drive it to identical searches."""
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(graph, system, cost="combined",
                                   state_cls=cls)
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_fixed_task_order(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(
            graph, system, pruning=PruningConfig.with_fixed_order(),
            state_cls=cls,
        )
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_root_symmetry(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: astar_schedule(
            graph, system, pruning=PruningConfig(root_symmetry=True),
            state_cls=cls,
        )
    )


@_SETTINGS
@given(scheduling_instances())
def test_astar_equivalence_on_preprocessed_graph(instance):
    """The reduced graph the preprocessing pass hands the engines (plus
    its implied pruning overrides) must drive both representations to
    identical searches, exactly like any raw instance."""
    from repro.schedule.preprocess import preprocess_instance

    graph, system = instance
    pre = preprocess_instance(graph, system)
    _assert_equivalent(
        lambda cls: astar_schedule(
            pre.graph, system,
            pruning=PruningConfig(**pre.pruning_overrides()),
            state_cls=cls,
        )
    )


@_SETTINGS
@given(scheduling_instances())
def test_bnb_equivalence(instance):
    graph, system = instance
    _assert_equivalent(lambda cls: bnb_schedule(graph, system, state_cls=cls))


@_SETTINGS
@given(scheduling_instances(max_nodes=5))
def test_idastar_equivalence(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: idastar_schedule(graph, system, state_cls=cls)
    )


@_SETTINGS
@given(scheduling_instances())
def test_weighted_equivalence(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: weighted_astar_schedule(graph, system, 0.3, state_cls=cls)
    )


@_SETTINGS
@given(scheduling_instances())
def test_focal_equivalence(instance):
    graph, system = instance
    _assert_equivalent(
        lambda cls: focal_schedule(graph, system, 0.2, state_cls=cls)
    )


# -- state-level equivalence (no engine in the loop) -------------------------


@_SETTINGS
@given(scheduling_instances())
def test_state_fields_track_reference(instance):
    """Greedy topological walk: every queryable field must match."""
    graph, system = instance
    new = PartialSchedule.empty(graph, system)
    ref = ReferencePartialSchedule.empty(graph, system)
    p = system.num_pes
    for i, node in enumerate(graph.topological_order):
        pe = i % p
        new = new.extend(node, pe)
        ref = ref.extend(node, pe)
        assert new.makespan == ref.makespan
        assert new.num_scheduled == ref.num_scheduled
        assert new.mask == ref.mask
        assert new.ready_time == ref.ready_time
        assert new.ready_nodes() == ref.ready_nodes()
        assert new.used_pes_mask() == ref.used_pes_mask()
        assert sorted(new.max_finish_nodes) == sorted(ref.max_finish_nodes)
        # Lazy materialization must reproduce the eager tuples exactly.
        assert new.pes == ref.pes
        assert new.starts == ref.starts
        assert new.finishes == ref.finishes
        assert new.signature == ref.signature


@_SETTINGS
@given(scheduling_instances())
def test_compact_inflate_roundtrip(instance):
    """compact() -> inflate() reproduces the state bit for bit."""
    graph, system = instance
    state = PartialSchedule.empty(graph, system)
    p = system.num_pes
    for i, node in enumerate(graph.topological_order):
        state = state.extend(node, (i * 2 + 1) % p)
    clone = PartialSchedule.inflate(graph, system, state.compact())
    assert clone.dedup_key == state.dedup_key
    assert clone.signature == state.signature
    assert clone.ready_time == state.ready_time
    assert clone.makespan == state.makespan
    assert clone == state
    assert hash(clone) == hash(state)


@_SETTINGS
@given(scheduling_instances())
def test_wire_roundtrip(instance):
    """to_wire() -> from_wire() preserves identity, behaviour, and —
    unlike compact() — survives *further extension*: a snapshot root's
    placements() must still cover the pre-transfer placements (the HDA*
    workers complete schedules descended from transferred states)."""
    graph, system = instance
    state = PartialSchedule.empty(graph, system)
    p = system.num_pes
    order = list(graph.topological_order)
    cut = len(order) // 2
    for i, node in enumerate(order[:cut]):
        state = state.extend(node, (i + 1) % p)
    clone = PartialSchedule.from_wire(graph, system, state.to_wire())
    assert clone.dedup_key == state.dedup_key
    assert clone.signature == state.signature
    assert clone.ready_time == state.ready_time
    assert clone.makespan == state.makespan
    assert clone.ready_mask == state.ready_mask
    assert clone == state
    assert hash(clone) == hash(state)
    assert sorted(clone.placements()) == sorted(state.placements())
    # Extend both to completion identically: byte-identical schedules.
    for i, node in enumerate(order[cut:]):
        state = state.extend(node, i % p)
        clone = clone.extend(node, i % p)
    assert clone.signature == state.signature
    if order:
        assert clone.to_schedule().length == state.to_schedule().length


@_SETTINGS
@given(scheduling_instances())
def test_child_signature_matches_placement_key(instance):
    """child_signature's inlined hash must equal the placement_key module
    function — the two copies silently corrupt dedup if they diverge."""
    graph, system = instance
    state = PartialSchedule.empty(graph, system)
    p = system.num_pes
    for i, node in enumerate(graph.topological_order):
        for pe in range(p):
            (cmask, czkey), start = state.child_signature(node, pe)
            assert cmask == state.mask | (1 << node)
            assert czkey == state.zkey ^ placement_key(node, pe, start)
        state = state.extend(node, i % p)


@_SETTINGS
@given(scheduling_instances())
def test_zobrist_order_independence(instance):
    """Two interleavings of the same placements share one dedup key."""
    graph, system = instance
    order = graph.topological_order
    if len(order) < 2:
        return
    p = system.num_pes
    placements = [(node, i % p) for i, node in enumerate(order)]
    forward = PartialSchedule.empty(graph, system)
    for node, pe in placements:
        forward = forward.extend(node, pe)
    # Replay in the (start, node) order compact() certifies as valid.
    shuffled = PartialSchedule.inflate(graph, system, forward.compact())
    assert shuffled.dedup_key == forward.dedup_key
    assert shuffled.zkey == forward.zkey
