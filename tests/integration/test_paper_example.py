"""End-to-end reproduction of the paper's worked example (Figures 1-5).

Everything the paper states about the 6-node DAG on the 3-PE ring is
asserted here in one place:

* Figure 2 — the sl / b-level / t-level table;
* Figure 3 — pruned A* explores a tiny fraction of the > 3^6 = 729-leaf
  exhaustive tree; the first expansion yields exactly one child
  (processor isomorphism), the second exactly four (node equivalence);
* Figure 4 — the optimal schedule length is 14 and uses 3 PEs;
* Figure 5 / §3.3 — the 2-PPE parallel run returns the same optimum
  while generating at least as many states as the serial run;
* §3.4 — Aε* returns within (1+ε) of 14 for both paper ε values.
"""

import pytest

from repro.graph.analysis import compute_levels
from repro.graph.examples import (
    PAPER_OPTIMAL_LENGTH,
    paper_example_dag,
    paper_example_system,
)
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.schedule.validate import validate_schedule
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.diagnostics import SearchTrace
from repro.search.enumerate import count_complete_schedules, enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.pruning import PruningConfig


@pytest.fixture(scope="module")
def graph():
    return paper_example_dag()


@pytest.fixture(scope="module")
def system():
    return paper_example_system()


class TestFigure2Levels(object):
    def test_table(self, graph):
        levels = compute_levels(graph)
        expected = {
            # node: (sl, b-level, t-level)
            0: (12, 19, 0),
            1: (10, 16, 3),
            2: (10, 16, 3),
            3: (6, 10, 4),
            4: (7, 12, 7),
            5: (2, 2, 17),
        }
        for node, (sl, b, t) in expected.items():
            assert levels.static_level[node] == sl
            assert levels.b_level[node] == b
            assert levels.t_level[node] == t


class TestFigure3Search:
    def test_exhaustive_tree_exceeds_729(self, graph, system):
        assert count_complete_schedules(graph, system) >= 3**6

    def test_pruned_search_is_tiny_fraction(self, graph, system):
        result = astar_schedule(graph, system)
        assert result.stats.states_generated < 100
        assert result.stats.states_expanded < 50

    def test_first_expansion_one_child(self, graph, system):
        trace = SearchTrace()
        astar_schedule(graph, system, trace=trace)
        root = trace.nodes[0]
        assert root.action == "<initial>"
        assert len(root.children) == 1
        n1_state = trace.nodes[root.children[0]]
        assert n1_state.action == "n1 -> PE 0"
        assert n1_state.g == 2.0 and n1_state.h == 10.0  # f = 2 + 10

    def test_second_expansion_four_children(self, graph, system):
        trace = SearchTrace()
        astar_schedule(graph, system, trace=trace)
        n1_state = trace.nodes[trace.nodes[0].children[0]]
        assert len(n1_state.children) == 4
        costs = sorted(
            (trace.nodes[c].g, trace.nodes[c].h) for c in n1_state.children
        )
        # Paper Figure 3: f = 5+7, 6+7 (n2) and 6+2, 8+2 (n4).
        assert costs == [(5, 7), (6, 2), (6, 7), (8, 2)]

    def test_every_engine_agrees(self, graph, system):
        for result in (
            astar_schedule(graph, system),
            astar_schedule(graph, system, pruning=PruningConfig.none()),
            bnb_schedule(graph, system),
            enumerate_optimal(graph, system),
        ):
            assert result.length == PAPER_OPTIMAL_LENGTH


class TestFigure4Schedule:
    def test_optimal_length_and_feasibility(self, graph, system):
        result = astar_schedule(graph, system)
        assert result.optimal
        assert result.schedule.length == PAPER_OPTIMAL_LENGTH
        validate_schedule(result.schedule)

    def test_uses_three_pes(self, graph, system):
        # Figure 4 places work on all three ring PEs.
        result = astar_schedule(graph, system)
        assert result.schedule.num_used_pes == 3

    def test_n1_starts_at_zero(self, graph, system):
        result = astar_schedule(graph, system)
        assert result.schedule.start_time(0) == 0.0

    def test_goal_f_equals_g(self, graph, system):
        # At a goal state h = 0 so f = g = 14 (paper: "final cost of 14").
        result = astar_schedule(graph, system)
        assert result.schedule.length == 14.0


class TestFigure5Parallel:
    def test_two_ppe_run(self, graph, system):
        par = parallel_astar_schedule(graph, system, MachineSpec(num_ppes=2))
        assert par.result.length == PAPER_OPTIMAL_LENGTH
        assert par.result.optimal

    def test_extra_states_generated(self, graph, system):
        serial = astar_schedule(graph, system)
        par = parallel_astar_schedule(graph, system, MachineSpec(num_ppes=2))
        assert par.result.stats.states_generated >= serial.stats.states_generated

    def test_sublinear_speedup(self, graph, system):
        """The paper reports 1.7 on 2 PPEs for this example — sub-linear
        but positive.  Assert the same shape for the simulated run."""
        from repro.parallel.metrics import measure_speedup

        report, _ = measure_speedup(graph, system, MachineSpec(num_ppes=2))
        assert report.lengths_agree
        assert report.speedup <= 2.0 + 1e-9


class TestSection34Approximate:
    @pytest.mark.parametrize("eps", [0.2, 0.5])
    def test_bounded_degradation(self, graph, system, eps):
        result = focal_schedule(graph, system, eps)
        assert result.length <= (1 + eps) * PAPER_OPTIMAL_LENGTH + 1e-9
        # On this tiny example Aε* actually finds the optimum.
        assert result.length == PAPER_OPTIMAL_LENGTH
