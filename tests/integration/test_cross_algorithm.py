"""Cross-algorithm agreement: every exact engine proves the same optimum.

The strongest correctness evidence in the suite: five independent
implementations (A*, A* without pruning, DFS B&B, Chen & Yu, exhaustive
enumeration, simulated parallel A*) must agree on the optimal length of
every instance, across homogeneous/heterogeneous systems and all
shipped topologies.
"""

import pytest

from repro.baselines.chen_yu import chen_yu_schedule
from repro.graph.generators.classic import diamond_graph, fork_join_graph
from repro.graph.generators.kernels import gaussian_elimination_graph
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.idastar import idastar_schedule
from repro.search.pruning import PruningConfig
from repro.search.weighted import weighted_astar_schedule
from repro.system.processors import ProcessorSystem


def exact_lengths(graph, system):
    """Run every exact engine and return {name: length}."""
    out = {
        "astar": astar_schedule(graph, system),
        "astar-noprune": astar_schedule(graph, system, pruning=PruningConfig.none()),
        "astar-improved": astar_schedule(graph, system, cost="improved"),
        "bnb": bnb_schedule(graph, system),
        "idastar": idastar_schedule(graph, system),
        "wastar-0": weighted_astar_schedule(graph, system, 0.0),
        "chen-yu": chen_yu_schedule(graph, system),
    }
    lengths = {name: r.length for name, r in out.items()}
    for name, r in out.items():
        assert r.optimal, f"{name} did not prove optimality"
        assert schedule_violations(r.schedule) == [], f"{name} infeasible"
    par = parallel_astar_schedule(graph, system, MachineSpec(num_ppes=4))
    assert par.result.optimal
    lengths["parallel"] = par.result.length
    return lengths


SMALL_INSTANCES = [
    (paper_random_graph(PaperGraphSpec(num_nodes=7, ccr=0.1, seed=11)),
     ProcessorSystem.fully_connected(3)),
    (paper_random_graph(PaperGraphSpec(num_nodes=8, ccr=1.0, seed=12)),
     ProcessorSystem.ring(3)),
    (paper_random_graph(PaperGraphSpec(num_nodes=7, ccr=10.0, seed=13)),
     ProcessorSystem.chain(3)),
    (fork_join_graph(3, comp=7, comm=4), ProcessorSystem.fully_connected(2)),
    (diamond_graph(3, comp=5, comm=2), ProcessorSystem.star(3)),
    (gaussian_elimination_graph(3, comp=12, comm_scale=0.5),
     ProcessorSystem.fully_connected(2)),
]


@pytest.mark.parametrize("idx", range(len(SMALL_INSTANCES)))
@pytest.mark.slow
def test_all_engines_agree(idx):
    graph, system = SMALL_INSTANCES[idx]
    lengths = exact_lengths(graph, system)
    reference = enumerate_optimal(graph, system).length
    for name, length in lengths.items():
        assert length == pytest.approx(reference), (
            f"{name} found {length}, exhaustive ground truth {reference}"
        )


def test_heterogeneous_agreement():
    graph = paper_random_graph(PaperGraphSpec(num_nodes=6, ccr=1.0, seed=21))
    system = ProcessorSystem.fully_connected(3, speeds=[1.0, 2.0, 0.5])
    lengths = exact_lengths(graph, system)
    reference = enumerate_optimal(graph, system).length
    for name, length in lengths.items():
        assert length == pytest.approx(reference), name


def test_distance_scaled_agreement():
    graph = paper_random_graph(PaperGraphSpec(num_nodes=6, ccr=2.0, seed=22))
    system = ProcessorSystem(3, links=[(0, 1), (1, 2)], distance_scaled=True)
    lengths = exact_lengths(graph, system)
    reference = enumerate_optimal(graph, system).length
    for name, length in lengths.items():
        assert length == pytest.approx(reference), name
