"""End-to-end flows through the public API."""

import pytest

from repro import (
    Budget,
    MachineSpec,
    ProcessorSystem,
    TaskGraph,
    astar_schedule,
    cpmisf_schedule,
    focal_schedule,
    graph_ccr,
    insertion_list_schedule,
    list_schedule,
    parallel_astar_schedule,
    render_gantt,
    validate_schedule,
)
from repro.graph.generators.kernels import fft_graph, laplace_graph
from repro.graph.io import graph_from_dict, graph_to_dict


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_quickstart(self):
        g = TaskGraph(
            [2, 3, 3, 4, 5, 2],
            {(0, 1): 1, (0, 2): 1, (0, 3): 2, (1, 4): 1, (2, 4): 1,
             (3, 5): 4, (4, 5): 5},
        )
        result = astar_schedule(g, ProcessorSystem.ring(3))
        assert result.schedule.length == 14.0
        validate_schedule(result.schedule)
        chart = render_gantt(result.schedule)
        assert "14" in chart


class TestKernelWorkflow:
    def test_fft_optimal_beats_heuristic_or_ties(self):
        g = fft_graph(1, comp=10, comm_scale=0.3)
        s = ProcessorSystem.fully_connected(2)
        optimal = astar_schedule(g, s)
        heuristic = list_schedule(g, s)
        assert optimal.length <= heuristic.length + 1e-9

    def test_laplace_pipeline(self):
        g = laplace_graph(3, comp=5, comm_scale=0.2)
        s = ProcessorSystem.fully_connected(2)
        result = focal_schedule(g, s, 0.2, budget=Budget(max_expanded=50_000))
        assert result.schedule is not None
        validate_schedule(result.schedule)

    def test_ccr_computed(self):
        g = fft_graph(2, comp=10, comm_scale=1.0)
        assert graph_ccr(g) == pytest.approx(10.0 / 10.0)


class TestSerializationWorkflow:
    def test_schedule_serialized_graph(self):
        g = fft_graph(1, comp=4, comm_scale=0.5)
        g2 = graph_from_dict(graph_to_dict(g))
        s = ProcessorSystem.fully_connected(2)
        assert astar_schedule(g, s).length == astar_schedule(g2, s).length


class TestHeuristicsAgainstOptimal:
    def test_all_heuristics_bounded_below_by_optimal(self):
        g = laplace_graph(2, comp=7, comm_scale=1.0)
        s = ProcessorSystem.fully_connected(2)
        optimal = astar_schedule(g, s).length
        for fn in (list_schedule, insertion_list_schedule, cpmisf_schedule):
            assert fn(g, s).length >= optimal - 1e-9


class TestParallelFlow:
    def test_parallel_on_kernel_graph(self):
        g = fft_graph(1, comp=6, comm_scale=0.5)
        s = ProcessorSystem.fully_connected(2)
        par = parallel_astar_schedule(g, s, MachineSpec(num_ppes=4, topology="ring"))
        serial = astar_schedule(g, s)
        assert par.result.length == serial.length
