"""Smoke tests: the example scripts must stay runnable.

Each example is executed in-process (``runpy``) with stdout captured;
only the fast ones run here — the heavyweight sweeps
(``parallel_speedup.py``, ``optimal_vs_heuristic.py``) are exercised by
the benchmark harness instead.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "schedule length  : 14" in out
        assert "optimal          : True" in out

    def test_paper_example(self, capsys):
        out = run_example("paper_example.py", capsys)
        assert "Figure 2" in out
        assert "GOAL" in out
        assert "length = 14" in out
        assert "simulated speedup" in out

    @pytest.mark.slow
    def test_heterogeneous_kernels(self, capsys):
        out = run_example("heterogeneous_kernels.py", capsys)
        assert "gauss-4" in out
        assert "fft-4" in out

    @pytest.mark.slow
    def test_approximate_tradeoff(self, capsys):
        out = run_example("approximate_tradeoff.py", capsys)
        assert "exact A*" in out
        assert "work saved" in out

    def test_service_server(self, capsys):
        out = run_example("service_server.py", capsys)
        assert "cold solve : via solve" in out
        assert "repeat     : via cache" in out
        assert "same fingerprint: True" in out
        assert "concurrent duplicates" in out
        assert "drained cleanly" in out

    def test_service_batch(self, capsys):
        out = run_example("service_batch.py", capsys)
        assert "fingerprints" in out
        assert "cold cache" in out and "warm cache" in out
        assert "dedup" in out  # the relabeled twin was not solved twice
        assert "3 cache hits" in out  # pass 2 never searched
        assert "warm-cache speedup" in out

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert text.startswith("#!/usr/bin/env python3"), script.name
            assert '"""' in text, script.name
            assert '__name__ == "__main__"' in text, script.name
