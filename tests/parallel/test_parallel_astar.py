"""Unit tests for the simulated parallel A*."""

import pytest
from hypothesis import given, settings

from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.schedule.validate import schedule_violations
from repro.search.enumerate import enumerate_optimal
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestPaperExample:
    def test_two_ppes_optimal(self, fig1_graph, fig1_system):
        # The configuration of the paper's Figure-5 walk-through.
        par = parallel_astar_schedule(
            fig1_graph, fig1_system, MachineSpec(num_ppes=2, topology="mesh")
        )
        assert par.result.optimal
        assert par.result.length == 14.0
        assert schedule_violations(par.schedule) == []

    @pytest.mark.parametrize("q", [1, 2, 4, 8, 16])
    def test_all_ppe_counts_agree(self, q, fig1_graph, fig1_system):
        par = parallel_astar_schedule(
            fig1_graph, fig1_system, MachineSpec(num_ppes=q)
        )
        assert par.result.length == 14.0

    @pytest.mark.parametrize("topology", ["mesh", "ring", "chain", "clique", "star"])
    def test_topologies_agree(self, topology, fig1_graph, fig1_system):
        par = parallel_astar_schedule(
            fig1_graph, fig1_system, MachineSpec(num_ppes=4, topology=topology)
        )
        assert par.result.length == 14.0

    def test_simulation_accounting(self, fig1_graph, fig1_system):
        par = parallel_astar_schedule(
            fig1_graph, fig1_system, MachineSpec(num_ppes=4)
        )
        assert par.makespan_units > 0
        assert par.phases >= 1
        assert len(par.per_ppe_expansions) == 4
        assert par.total_expansions >= sum(par.per_ppe_expansions)
        assert par.load_imbalance >= 1.0

    def test_extra_states_vs_serial(self, fig1_graph, fig1_system):
        """Figure-5 effect: the parallel run generates extra states."""
        from repro.search.astar import astar_schedule

        serial = astar_schedule(fig1_graph, fig1_system)
        par = parallel_astar_schedule(
            fig1_graph, fig1_system, MachineSpec(num_ppes=4)
        )
        assert par.result.stats.states_generated >= serial.stats.states_generated

    def test_budget_terminates(self, fig1_graph, fig1_system):
        par = parallel_astar_schedule(
            fig1_graph,
            fig1_system,
            MachineSpec(num_ppes=2),
            budget=Budget(max_expanded=4),
        )
        assert par.schedule is not None

    def test_epsilon_bound(self, fig1_graph, fig1_system):
        par = parallel_astar_schedule(
            fig1_graph, fig1_system, MachineSpec(num_ppes=4), epsilon=0.5
        )
        assert par.result.length <= 1.5 * 14.0 + 1e-9
        assert par.result.bound == pytest.approx(1.5)


class TestDefaults:
    def test_default_spec(self, fig1_graph, fig1_system):
        par = parallel_astar_schedule(fig1_graph, fig1_system)
        assert par.spec.num_ppes == 4
        assert par.result.length == 14.0


class TestPopTailHeapTrick:
    def test_pop_tail_preserves_heap_invariant(self):
        """Removing the last array element of a binary heap is always safe
        (it is a leaf); verify pops stay sorted afterwards."""
        import heapq
        import random

        from repro.parallel.parallel_astar import _PPE

        rng = random.Random(7)
        ppe = _PPE(index=0)
        for i in range(200):
            heapq.heappush(ppe.open_heap, (rng.random(), 0.0, i, None))
        removed = [ppe.pop_tail() for _ in range(50)]
        assert len(ppe.open_heap) == 150
        drained = [heapq.heappop(ppe.open_heap)[0] for _ in range(150)]
        assert drained == sorted(drained)
        # Tail pops never stole the global minimum.
        assert min(e[0] for e in removed) >= drained[0]


@settings(max_examples=20, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_parallel_matches_exhaustive(instance):
    """The parallel engine proves the same optima as exhaustive search."""
    graph, system = instance
    par = parallel_astar_schedule(graph, system, MachineSpec(num_ppes=4))
    opt = enumerate_optimal(graph, system).length
    assert par.result.optimal
    assert par.result.length == pytest.approx(opt)


@settings(max_examples=12, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_parallel_focal_respects_bound(instance):
    graph, system = instance
    opt = enumerate_optimal(graph, system).length
    for eps in (0.2, 0.5):
        par = parallel_astar_schedule(
            graph, system, MachineSpec(num_ppes=4), epsilon=eps
        )
        assert par.result.length <= (1 + eps) * opt + 1e-9


class TestEpsilonTerminationDrift:
    """Regression (ISSUE 3): the ε-termination comparison used raw
    floats with an inconsistent absolute epsilon; exact (ε = 0) runs on
    costs like 0.1 + 0.2 could terminate one ulp early or fail to stop
    on a plateau that only exists as rounding noise."""

    def _drifty_instance(self):
        from repro.graph.taskgraph import TaskGraph
        from repro.system.processors import ProcessorSystem

        # Fork-join over binary-drifty weights: the two branch sums
        # (0.1 + 0.2 vs 0.3) are mathematically equal but differ in the
        # last ulp, so f-values on the optimal plateau disagree by drift.
        graph = TaskGraph(
            [0.1, 0.1, 0.2, 0.3, 0.1],
            {(0, 1): 0.1, (0, 3): 0.1, (1, 2): 0.2, (2, 4): 0.1, (3, 4): 0.2},
            name="drift",
        )
        return graph, ProcessorSystem.fully_connected(2)

    def test_exact_run_terminates_and_matches_serial(self):
        from repro.search.astar import astar_schedule

        graph, system = self._drifty_instance()
        serial = astar_schedule(graph, system)
        par = parallel_astar_schedule(graph, system, epsilon=0.0)
        assert par.result.optimal
        assert serial.optimal
        assert par.result.schedule.length == pytest.approx(
            serial.length, abs=1e-12
        )

    def test_epsilon_run_respects_bound_on_drifty_costs(self):
        import math

        from repro.search.astar import astar_schedule

        graph, system = self._drifty_instance()
        serial = astar_schedule(graph, system)
        par = parallel_astar_schedule(graph, system, epsilon=0.2)
        assert math.isfinite(par.result.bound)
        assert par.result.schedule.length <= 1.2 * serial.length * (1 + 1e-9)
