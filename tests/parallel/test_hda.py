"""HDA* backend: correctness vs serial A*, budgets, ε, and the
shared-memory coordination primitives."""

import math

import pytest
from hypothesis import given, settings

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.hda import hda_astar_schedule
from repro.parallel.mp_backend import pool_context
from repro.parallel.shared import Outbox, SharedIncumbent, WorkerBoard, owner_of
from repro.schedule.partial_reference import ReferencePartialSchedule
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.pruning import PruningConfig
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget
from tests.strategies import scheduling_instances


class TestHdaBasic:
    def test_paper_example(self, fig1_graph, fig1_system):
        result = hda_astar_schedule(fig1_graph, fig1_system, workers=2)
        assert result.optimal
        assert result.length == 14.0
        assert schedule_violations(result.schedule) == []

    def test_single_worker_falls_back_to_serial(self, fig1_graph, fig1_system):
        result = hda_astar_schedule(fig1_graph, fig1_system, workers=1)
        assert result.optimal
        assert result.length == 14.0
        assert result.algorithm == "astar"

    def test_serial_fallback_keeps_the_epsilon_contract(
        self, fig1_graph, fig1_system
    ):
        # workers=1 + epsilon > 0 must not degrade to an exact search:
        # the focal engine proves the same 1+eps bound hda would.
        result = hda_astar_schedule(
            fig1_graph, fig1_system, workers=1, epsilon=0.5
        )
        assert result.bound == 1.5
        assert "focal" in result.algorithm

    def test_reference_state_cls_falls_back_to_serial(
        self, fig1_graph, fig1_system
    ):
        result = hda_astar_schedule(
            fig1_graph, fig1_system, workers=2,
            state_cls=ReferencePartialSchedule,
        )
        assert result.optimal
        assert result.length == 14.0
        assert result.algorithm == "astar"

    def test_trivial_instance(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph([5], {})
        result = hda_astar_schedule(g, ProcessorSystem(2), workers=2)
        assert result.optimal
        assert result.length == 5.0


@pytest.mark.slow
class TestHdaMatchesSerial:
    @pytest.mark.parametrize("v,ccr,seed,workers", [
        (10, 1.0, 3, 2),
        (12, 1.0, 7, 3),
        (14, 10.0, 5, 4),
        (12, 0.1, 11, 2),
    ])
    def test_byte_identical_optimal_makespan(self, v, ccr, seed, workers):
        """The acceptance property: same proven-optimal makespan, ==."""
        graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        system = ProcessorSystem.fully_connected(4)
        serial = astar_schedule(graph, system)
        parallel = hda_astar_schedule(graph, system, workers=workers)
        assert serial.optimal and parallel.optimal
        assert parallel.length == serial.length  # byte-identical floats
        assert schedule_violations(parallel.schedule) == []

    def test_combined_cost_matches_serial(self):
        """The load-bound aggregates survive to_wire/from_wire: HDA*
        under the composite bound proves the same makespan as serial
        (on a 2-PE target, where the load component actually binds)."""
        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=9))
        system = ProcessorSystem.fully_connected(2)
        serial = astar_schedule(graph, system, cost="combined")
        parallel = hda_astar_schedule(graph, system, workers=2, cost="combined")
        assert serial.optimal and parallel.optimal
        assert parallel.length == serial.length
        assert parallel.stats.pruning.fixed_order_skips == 0  # rule off

    def test_fixed_task_order_matches_serial(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=0.1, seed=6))
        system = ProcessorSystem.fully_connected(2)
        pruning = PruningConfig.with_fixed_order()
        serial = astar_schedule(graph, system, pruning=pruning)
        parallel = hda_astar_schedule(
            graph, system, workers=2, pruning=pruning
        )
        assert serial.optimal and parallel.optimal
        assert parallel.length == serial.length

    def test_preprocessed_instance_matches_serial(self):
        """The reduced graph plus implied pruning overrides, through the
        parallel engine: same proven optimum as serial A* on the reduced
        graph, and both restore to the raw instance's optimum."""
        from repro.schedule.preprocess import preprocess_instance
        from repro.schedule.validate import schedule_violations

        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=0.1, seed=6))
        system = ProcessorSystem.fully_connected(2)
        pre = preprocess_instance(graph, system)
        pruning = PruningConfig(**pre.pruning_overrides())
        serial = astar_schedule(pre.graph, system, pruning=pruning)
        parallel = hda_astar_schedule(
            pre.graph, system, workers=2, pruning=pruning
        )
        assert serial.optimal and parallel.optimal
        assert parallel.length == serial.length
        raw = astar_schedule(graph, system)
        restored = pre.restore(parallel.schedule)
        assert schedule_violations(restored) == []
        assert restored.length == raw.length

    def test_root_symmetry_matches_serial(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=9))
        system = ProcessorSystem.fully_connected(3)
        pruning = PruningConfig.with_symmetry()
        serial = astar_schedule(graph, system, pruning=pruning)
        parallel = hda_astar_schedule(
            graph, system, workers=2, pruning=pruning
        )
        assert serial.optimal and parallel.optimal
        assert parallel.length == serial.length
        assert parallel.stats.pruning.symmetry_skips > 0

    def test_incumbent_seeding(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=4))
        system = ProcessorSystem.fully_connected(3)
        serial = astar_schedule(graph, system)
        seeded = hda_astar_schedule(
            graph, system, workers=2, incumbent=serial.schedule
        )
        assert seeded.optimal
        assert seeded.length == serial.length

    def test_budget_run_is_unproven_but_feasible(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=1.0, seed=2))
        system = ProcessorSystem.fully_connected(4)
        result = hda_astar_schedule(
            graph, system, workers=2, budget=Budget(max_expanded=300)
        )
        assert not result.optimal
        assert result.bound == math.inf
        assert result.certificate == "budget"
        assert "budget" in result.algorithm
        assert schedule_violations(result.schedule) == []

    def test_verify_signatures_mode_stays_exact(self):
        from repro.search.pruning import PruningConfig

        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=7))
        system = ProcessorSystem.fully_connected(3)
        serial = astar_schedule(graph, system)
        verified = hda_astar_schedule(
            graph, system, workers=2,
            pruning=PruningConfig(verify_signatures=True),
        )
        assert verified.optimal
        assert verified.length == serial.length

    def test_generation_budget_is_enforced_in_workers(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=1.0, seed=2))
        system = ProcessorSystem.fully_connected(4)
        result = hda_astar_schedule(
            graph, system, workers=2, budget=Budget(max_generated=2_000)
        )
        assert not result.optimal
        assert "budget" in result.algorithm
        # Overshoot is bounded by roughly one chunk per worker.
        assert result.stats.states_generated < 50_000

    def test_epsilon_bound(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=9))
        system = ProcessorSystem.fully_connected(3)
        exact = astar_schedule(graph, system)
        approx = hda_astar_schedule(graph, system, workers=2, epsilon=0.5)
        assert not approx.optimal  # ε > 0 never claims exact optimality
        assert approx.bound == 1.5
        assert approx.certificate == "epsilon"
        assert approx.length <= 1.5 * exact.length + 1e-9


@pytest.mark.slow
@settings(max_examples=8, deadline=None)
@given(scheduling_instances(max_nodes=6, max_pes=3))
def test_hda_matches_reference_harness(instance):
    """ISSUE-3 equivalence harness: the multiprocess engine must return
    the byte-identical optimal makespan the reference tuple-state serial
    A* returns (and exhaustive enumeration confirms)."""
    graph, system = instance
    ref = astar_schedule(graph, system, state_cls=ReferencePartialSchedule)
    par = hda_astar_schedule(graph, system, workers=2, oversubscribe=2)
    opt = enumerate_optimal(graph, system)
    assert ref.optimal and par.optimal
    assert par.length == ref.length
    assert par.length == opt.length
    assert schedule_violations(par.schedule) == []


class TestSharedPrimitives:
    def test_owner_of_is_deterministic_and_in_range(self):
        keys = [(3, 0xDEADBEEF), (3, 0xDEADBEF0), ((1 << 70) | 5, 42), (0, 0)]
        for key in keys:
            owners = {owner_of(key, 4) for _ in range(3)}
            assert len(owners) == 1
            assert 0 <= owners.pop() < 4
        # Different zobrists should not all collapse onto one owner.
        spread = {owner_of((7, z), 4) for z in range(64)}
        assert len(spread) > 1

    def test_shared_incumbent_cas(self):
        ctx = pool_context()
        inc = SharedIncumbent(ctx, 100.0)
        assert inc.value == 100.0
        assert inc.try_improve(90.0)
        assert not inc.try_improve(95.0)  # worse: rejected
        assert not inc.try_improve(90.0)  # equal: rejected
        assert inc.value == 90.0

    def test_worker_board_quiescence_protocol(self):
        ctx = pool_context()
        board = WorkerBoard(ctx, 2)
        assert not board.quiescent()  # workers start non-idle
        board.set_idle(0, True)
        board.set_idle(1, True)
        assert board.quiescent()
        board.count_sent(0)  # batch in flight: sent > received
        assert not board.quiescent()
        board.set_idle(1, False)  # receiver wakes...
        board.count_received(1)  # ...and consumes it
        assert not board.quiescent()  # not idle yet
        board.set_idle(1, True)
        assert board.quiescent()
        assert board.counters() == {"sent": 1, "received": 1}

    def test_worker_board_uncount_sent_rolls_back(self):
        ctx = pool_context()
        board = WorkerBoard(ctx, 1)
        board.set_idle(0, True)
        board.count_sent(0)
        assert not board.quiescent()
        board.uncount_sent(0)  # failed non-blocking put
        assert board.quiescent()

    def test_outbox_batches_and_flow_control(self):

        ctx = pool_context()
        board = WorkerBoard(ctx, 2)
        q0, q1 = ctx.Queue(maxsize=1), ctx.Queue(maxsize=1)
        out = Outbox(0, [q0, q1], board, batch_size=2)
        out.send(1, "a")
        assert out.pending  # below batch size: buffered
        out.send(1, "b")  # batch filled: flushed
        for _ in range(100):  # mp.Queue puts are asynchronous
            if not q1.empty():
                break
            import time

            time.sleep(0.01)
        assert q1.get(timeout=2.0) == ["a", "b"]
        # Fill the destination, then overflow it: flush must not block.
        q1.put("blocker")
        out.send(1, "c")
        out.send(1, "d")  # triggers a flush attempt against a full queue
        assert out.pending
        assert not out.flush_all()
        assert q1.get(timeout=2.0) == "blocker"
        for _ in range(100):
            if out.flush_all():
                break
            import time

            time.sleep(0.01)
        assert not out.pending
        assert q1.get(timeout=2.0) == ["c", "d"]
        out.send(0, "e")
        out.drop_all()
        assert not out.pending
