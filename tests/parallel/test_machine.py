"""Unit tests for the simulated machine spec and PPE network."""

import pytest

from repro.errors import SystemError_
from repro.parallel.machine import MachineSpec, PPENetwork, _near_square


class TestMachineSpec:
    def test_defaults(self):
        spec = MachineSpec()
        assert spec.num_ppes == 4
        assert spec.topology == "mesh"

    def test_invalid_count(self):
        with pytest.raises(SystemError_):
            MachineSpec(num_ppes=0)

    def test_invalid_topology(self):
        with pytest.raises(SystemError_):
            MachineSpec(topology="torus")

    def test_invalid_costs(self):
        with pytest.raises(SystemError_):
            MachineSpec(expansion_cost=0)
        with pytest.raises(SystemError_):
            MachineSpec(comm_latency=-1)

    def test_zero_latency_allowed(self):
        assert MachineSpec(comm_latency=0.0).comm_latency == 0.0


class TestPPENetwork:
    def test_mesh_16_is_4x4(self):
        net = PPENetwork(MachineSpec(num_ppes=16, topology="mesh"))
        assert net.shape == (4, 4)
        assert len(net.neighbors[0]) == 2  # corner
        assert len(net.neighbors[5]) == 4  # interior

    def test_mesh_paragon_like_8(self):
        net = PPENetwork(MachineSpec(num_ppes=8, topology="mesh"))
        assert net.shape == (2, 4)

    def test_ring(self):
        net = PPENetwork(MachineSpec(num_ppes=5, topology="ring"))
        assert all(len(nbrs) == 2 for nbrs in net.neighbors)

    def test_chain_ends(self):
        net = PPENetwork(MachineSpec(num_ppes=4, topology="chain"))
        assert len(net.neighbors[0]) == 1
        assert len(net.neighbors[1]) == 2

    def test_hypercube_power_of_two_required(self):
        with pytest.raises(SystemError_, match="power-of-two"):
            PPENetwork(MachineSpec(num_ppes=6, topology="hypercube"))

    def test_hypercube_degree(self):
        net = PPENetwork(MachineSpec(num_ppes=8, topology="hypercube"))
        assert all(len(nbrs) == 3 for nbrs in net.neighbors)

    def test_clique(self):
        net = PPENetwork(MachineSpec(num_ppes=4, topology="clique"))
        assert all(len(nbrs) == 3 for nbrs in net.neighbors)

    def test_star(self):
        net = PPENetwork(MachineSpec(num_ppes=4, topology="star"))
        assert len(net.neighbors[0]) == 3
        assert len(net.neighbors[1]) == 1

    def test_group_includes_self(self):
        net = PPENetwork(MachineSpec(num_ppes=4, topology="ring"))
        assert net.group(0)[0] == 0
        assert set(net.group(0)) == {0, 1, 3}

    def test_single_ppe(self):
        net = PPENetwork(MachineSpec(num_ppes=1, topology="mesh"))
        assert net.neighbors == ((),)


class TestNearSquare:
    def test_perfect_square(self):
        assert _near_square(16) == (4, 4)

    def test_rectangles(self):
        assert _near_square(8) == (2, 4)
        assert _near_square(12) == (3, 4)

    def test_prime(self):
        assert _near_square(7) == (1, 7)

    def test_one(self):
        assert _near_square(1) == (1, 1)
