"""Unit tests for speedup measurement."""

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import measure_speedup
from repro.search.astar import astar_schedule
from repro.system.processors import ProcessorSystem


def medium_instance():
    graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=42))
    return graph, ProcessorSystem.fully_connected(4)


class TestMeasureSpeedup:
    def test_report_fields(self):
        graph, system = medium_instance()
        report, par = measure_speedup(graph, system, MachineSpec(num_ppes=4))
        assert report.num_ppes == 4
        assert report.speedup > 0
        assert report.efficiency == report.speedup / 4
        assert report.lengths_agree
        assert report.serial_units > 0
        assert par.makespan_units == report.parallel_units

    def test_serial_result_reuse(self):
        graph, system = medium_instance()
        serial = astar_schedule(graph, system)
        report, _ = measure_speedup(
            graph, system, MachineSpec(num_ppes=2), serial_result=serial
        )
        assert report.serial_expansions == serial.stats.states_expanded

    def test_more_ppes_do_not_slow_makespan_hugely(self):
        """Sanity: 8 PPEs beat 1 PPE on a nontrivial search."""
        graph, system = medium_instance()
        serial = astar_schedule(graph, system)
        r1, _ = measure_speedup(
            graph, system, MachineSpec(num_ppes=1), serial_result=serial
        )
        r8, _ = measure_speedup(
            graph, system, MachineSpec(num_ppes=8), serial_result=serial
        )
        assert r8.parallel_units < r1.parallel_units
