"""Unit tests for initial load distribution (§3.3 cases)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.partition import distribute_seeds, interleaved_order


class TestInterleavedOrder:
    def test_paper_pattern(self):
        # First state to PE 0, second to PE q-1, third to PE 1, ...
        assert interleaved_order(4) == [0, 3, 1, 2]
        assert interleaved_order(5) == [0, 4, 1, 3, 2]

    def test_single(self):
        assert interleaved_order(1) == [0]

    def test_two(self):
        assert interleaved_order(2) == [0, 1]

    def test_is_permutation(self):
        for q in range(1, 20):
            assert sorted(interleaved_order(q)) == list(range(q))


class TestDistributeSeeds:
    def test_case2_exact_fit(self):
        seeds = [(float(i), f"s{i}") for i in range(4)]
        buckets = distribute_seeds(seeds, 4)
        assert all(len(b) == 1 for b in buckets)
        # Best seed to PPE 0, second-best to PPE 3 (interleaved).
        assert buckets[0] == ["s0"]
        assert buckets[3] == ["s1"]

    def test_case1_extras_round_robin(self):
        seeds = [(float(i), f"s{i}") for i in range(6)]
        buckets = distribute_seeds(seeds, 4)
        assert sum(len(b) for b in buckets) == 6
        # Extras (ranks 4, 5) go to PPEs 0 and 1.
        assert "s4" in buckets[0]
        assert "s5" in buckets[1]

    def test_case3_fewer_than_ppes(self):
        seeds = [(1.0, "a"), (2.0, "b")]
        buckets = distribute_seeds(seeds, 4)
        assert buckets[0] == ["a"]
        assert buckets[3] == ["b"]
        assert buckets[1] == [] and buckets[2] == []

    def test_sorted_by_cost_not_input_order(self):
        seeds = [(9.0, "worst"), (1.0, "best")]
        buckets = distribute_seeds(seeds, 2)
        assert buckets[0] == ["best"]
        assert buckets[1] == ["worst"]


@given(st.lists(st.floats(0, 100), max_size=40), st.integers(1, 8))
def test_distribution_conserves_states(costs, q):
    seeds = [(c, i) for i, c in enumerate(costs)]
    buckets = distribute_seeds(seeds, q)
    flat = sorted(s for b in buckets for s in b)
    assert flat == sorted(range(len(costs)))
    # Bucket sizes differ by at most one.
    sizes = [len(b) for b in buckets]
    assert max(sizes) - min(sizes) <= 1
