"""Unit tests for round-robin load sharing (§3.3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.loadbalance import balance_counts, plan_round_robin_shares


class TestBalanceCounts:
    def test_even_split(self):
        assert sorted(balance_counts([8, 0, 0, 0])) == [2, 2, 2, 2]

    def test_remainder_distribution(self):
        targets = balance_counts([7, 0, 0])
        assert sum(targets) == 7
        assert max(targets) - min(targets) <= 1

    def test_already_balanced(self):
        assert balance_counts([3, 3, 3]) == [3, 3, 3]


class TestPlanRoundRobinShares:
    def test_surplus_to_deficit(self):
        transfers = plan_round_robin_shares([6, 0, 0])
        assert transfers
        moved_out = sum(n for d, r, n in transfers if d == 0)
        assert moved_out >= 3  # donor ends at or below ceil(avg) = 2
        receivers = {r for _d, r, _n in transfers}
        assert receivers <= {1, 2}

    def test_balanced_no_transfers(self):
        assert plan_round_robin_shares([2, 2, 2]) == []

    def test_single_ppe_no_transfers(self):
        assert plan_round_robin_shares([10]) == []

    def test_empty_receivers_only(self):
        assert plan_round_robin_shares([0, 0]) == []

    def test_round_robin_dealing(self):
        # One big donor, three deficits: states dealt one-at-a-time RR.
        transfers = dict(
            ((d, r), n) for d, r, n in plan_round_robin_shares([9, 0, 0, 0])
        )
        counts = [transfers.get((0, r), 0) for r in (1, 2, 3)]
        assert max(counts) - min(counts) <= 1


@given(st.lists(st.integers(0, 50), min_size=1, max_size=10))
def test_transfers_conserve_and_improve(counts):
    transfers = plan_round_robin_shares(counts)
    after = list(counts)
    for d, r, n in transfers:
        assert n > 0
        after[d] -= n
        after[r] += n
    assert sum(after) == sum(counts)
    assert all(c >= 0 for c in after)
    # Imbalance never increases.
    assert (max(after) - min(after)) <= (max(counts) - min(counts))
