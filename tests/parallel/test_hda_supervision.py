"""Worker supervision in HDA*: dead, raising, and hung workers.

These tests arm :mod:`repro.testing.faults` injection points (the env
var propagates into forked workers) and assert the supervision
contract: the parent always terminates, always returns the best
incumbent with an honest ``interrupted`` cause, and the portfolio
ladder recovers a *correct* answer by retrying and falling back to a
serial engine.
"""

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.hda import hda_astar_schedule
from repro.parallel.shared import WorkerBoard
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.service.portfolio import portfolio_schedule
from repro.system.processors import ProcessorSystem
from repro.testing import faults


def instance(v=12, ccr=1.0, seed=3):
    graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
    return graph, ProcessorSystem.fully_connected(3)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Never leak an armed fault spec into other tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


@pytest.mark.slow
class TestDeadWorker:
    @pytest.mark.timeout(120)
    def test_crashed_worker_terminates_with_incumbent(self, monkeypatch):
        """A worker hard-exiting mid-search (SIGKILL stand-in) must not
        hang the parent: the search ends with the seed incumbent, an
        unproven certificate, and cause 'worker-failure'."""
        monkeypatch.setenv(faults.ENV_VAR, "hda-worker-crash@3")
        graph, system = instance()
        result = hda_astar_schedule(graph, system, workers=2)
        assert result.schedule is not None
        assert schedule_violations(result.schedule) == []
        assert not result.optimal
        assert result.interrupted == "worker-failure"
        assert "failed" in result.algorithm

    @pytest.mark.timeout(120)
    def test_raising_worker_reports_failure(self, monkeypatch):
        """A worker raising (clean error-record path) reaches the same
        safe termination as a hard crash."""
        monkeypatch.setenv(faults.ENV_VAR, "hda-worker-raise@3")
        graph, system = instance(seed=9)
        result = hda_astar_schedule(graph, system, workers=2)
        assert result.schedule is not None
        assert not result.optimal
        assert result.interrupted == "worker-failure"

    @pytest.mark.timeout(120)
    def test_portfolio_recovers_correct_result(self, monkeypatch):
        """The acceptance scenario: HDA* workers die mid-search, yet
        the portfolio answers with the *correct optimal* makespan — it
        retries the parallel engine once, then falls back to a serial
        exact engine with the remaining budget."""
        # The portfolio only upgrades the exact stage to HDA* above
        # _HDA_MIN_V nodes, so this instance must be large enough to
        # take the parallel path (and to outlive the seed phase so the
        # workers really spawn — and crash).
        graph, system = instance(v=15, seed=11)
        expected = astar_schedule(graph, system).length
        monkeypatch.setenv(faults.ENV_VAR, "hda-worker-crash@3")
        res = portfolio_schedule(graph, system, workers=2,
                                 max_expansions=200_000)
        assert res.optimal
        assert res.schedule.length == expected
        stages = [r.stage for r in res.stages]
        assert "exact-serial" in stages  # both hda attempts crashed
        assert res.interrupted is None


@pytest.mark.slow
class TestHungWorker:
    @pytest.mark.timeout(120)
    def test_stalled_worker_detected_by_heartbeat(self, monkeypatch):
        """A worker that stops making progress but stays alive is only
        catchable by heartbeat supervision: the parent must detect the
        stale heartbeat and terminate with cause 'worker-stall' instead
        of waiting on quiescence forever."""
        monkeypatch.setenv(faults.ENV_VAR, "hda-worker-stall@3:600")
        graph, system = instance()
        result = hda_astar_schedule(
            graph, system, workers=2, worker_stall_timeout=2.0
        )
        assert result.schedule is not None
        assert not result.optimal
        assert result.interrupted == "worker-stall"


class TestWorkerBoardHeartbeats:
    def test_stamp_and_stale_detection(self):
        import multiprocessing as mp
        import time

        board = WorkerBoard(mp.get_context("fork"), workers=2)
        board.stamp_all()
        assert board.stale_workers(timeout=5.0) == []
        time.sleep(0.06)
        assert board.stale_workers(timeout=0.05) == [0, 1]
        board.heartbeat(1)
        assert board.stale_workers(timeout=0.05) == [0]
