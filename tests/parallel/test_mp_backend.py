"""Unit tests for the real-multiprocessing backend."""

import pytest
from hypothesis import given, settings

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.mp_backend import multiprocessing_astar_schedule
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.enumerate import enumerate_optimal
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances


class TestMpBackend:
    def test_paper_example(self, fig1_graph, fig1_system):
        result = multiprocessing_astar_schedule(
            fig1_graph, fig1_system, workers=2
        )
        assert result.optimal
        assert result.length == 14.0
        assert schedule_violations(result.schedule) == []

    def test_single_worker_falls_back_to_serial(self, fig1_graph, fig1_system):
        result = multiprocessing_astar_schedule(
            fig1_graph, fig1_system, workers=1
        )
        assert result.length == 14.0
        assert result.algorithm == "astar"

    def test_matches_serial_on_random_instance(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=3))
        system = ProcessorSystem.fully_connected(3)
        serial = astar_schedule(graph, system)
        mp = multiprocessing_astar_schedule(graph, system, workers=2)
        assert mp.length == pytest.approx(serial.length)

    def test_trivial_instance(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph([5], {})
        result = multiprocessing_astar_schedule(g, ProcessorSystem(2), workers=2)
        assert result.length == 5.0


@settings(max_examples=5, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_mp_matches_exhaustive(instance):
    graph, system = instance
    mp = multiprocessing_astar_schedule(graph, system, workers=2, oversubscribe=2)
    opt = enumerate_optimal(graph, system).length
    assert mp.length == pytest.approx(opt)


class TestSolverPool:
    def test_submit_and_map(self):
        from repro.parallel.mp_backend import SolverPool, _warmup

        with SolverPool(2) as pool:
            assert pool.workers == 2 and not pool.closed
            assert pool.submit(_warmup).result() > 0
            assert pool.map(abs, [-1, 2, -3]) == [1, 2, 3]

    def test_warm_prespawns_workers(self):
        from repro.parallel.mp_backend import SolverPool

        pool = SolverPool(2)
        pool.warm()
        assert len(pool.executor._processes) == 2
        pool.close()
        assert pool.closed

    def test_closed_pool_raises(self):
        from repro.parallel.mp_backend import SolverPool

        pool = SolverPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(abs, 1)

    def test_invalid_worker_count(self):
        from repro.parallel.mp_backend import SolverPool

        with pytest.raises(ValueError):
            SolverPool(0)

    def test_persistent_pool_survives_multiple_rounds(self):
        """The point of the abstraction: worker processes are reused."""
        from repro.parallel.mp_backend import SolverPool, _warmup

        with SolverPool(1) as pool:
            pids = {pool.submit(_warmup).result() for _ in range(4)}
        assert len(pids) == 1
