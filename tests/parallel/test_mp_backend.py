"""Unit tests for the real-multiprocessing backend."""

import pytest
from hypothesis import given, settings

from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.parallel.mp_backend import multiprocessing_astar_schedule
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.enumerate import enumerate_optimal
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances


class TestMpBackend:
    def test_paper_example(self, fig1_graph, fig1_system):
        result = multiprocessing_astar_schedule(
            fig1_graph, fig1_system, workers=2
        )
        assert result.optimal
        assert result.length == 14.0
        assert schedule_violations(result.schedule) == []

    def test_single_worker_falls_back_to_serial(self, fig1_graph, fig1_system):
        result = multiprocessing_astar_schedule(
            fig1_graph, fig1_system, workers=1
        )
        assert result.length == 14.0
        assert result.algorithm == "astar"

    def test_matches_serial_on_random_instance(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=3))
        system = ProcessorSystem.fully_connected(3)
        serial = astar_schedule(graph, system)
        mp = multiprocessing_astar_schedule(graph, system, workers=2)
        assert mp.length == pytest.approx(serial.length)

    def test_trivial_instance(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph([5], {})
        result = multiprocessing_astar_schedule(g, ProcessorSystem(2), workers=2)
        assert result.length == 5.0


@settings(max_examples=5, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_mp_matches_exhaustive(instance):
    graph, system = instance
    mp = multiprocessing_astar_schedule(graph, system, workers=2, oversubscribe=2)
    opt = enumerate_optimal(graph, system).length
    assert mp.length == pytest.approx(opt)
