"""Unit tests for the runtime lock-order assistant."""

import threading

import pytest

from repro.testing import lockcheck
from repro.testing.lockcheck import LockOrderViolation


class TestInstrumentation:
    def test_factories_patched_and_restored(self):
        original = threading.Lock
        with lockcheck.guard():
            lock = threading.Lock()
            assert type(lock).__name__ == "_GuardedLock"
        assert threading.Lock is original
        assert type(threading.Lock()).__name__ != "_GuardedLock"

    def test_wrapped_lock_still_locks(self):
        with lockcheck.guard():
            lock = threading.Lock()
            with lock:
                assert not lock.acquire(blocking=False)
            assert lock.acquire(blocking=False)
            lock.release()

    def test_rlock_reentrancy(self):
        with lockcheck.guard() as checker:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        checker.assert_clean()

    def test_condition_wait_notify(self):
        """Condition interoperates with the wrapper's _release_save /
        _acquire_restore shims (both Lock and RLock flavours)."""
        for factory in (threading.Lock, threading.RLock):
            with lockcheck.guard() as checker:
                cond = threading.Condition(factory())
                hits = []

                def waiter():
                    with cond:
                        while not hits:
                            cond.wait(timeout=5)

                t = threading.Thread(target=waiter)
                t.start()
                with cond:
                    hits.append(1)
                    cond.notify()
                t.join(timeout=5)
                assert not t.is_alive()
            checker.assert_clean()

    def test_nested_guard_does_not_double_wrap(self):
        with lockcheck.guard() as outer:
            with lockcheck.guard() as inner:
                lock = threading.Lock()
                # The wrapper's primitive is a *real* lock, not another
                # wrapper reporting to the outer checker.
                assert type(lock._lock).__name__ != "_GuardedLock"
                with lock:
                    pass
            assert inner.violations == []
        outer.assert_clean()


class TestOrdering:
    def test_consistent_order_is_clean(self):
        with lockcheck.guard() as checker:
            a, b = threading.Lock(), threading.Lock()
            for _ in range(3):
                with a:
                    with b:
                        pass
        checker.assert_clean()

    def test_inversion_recorded_without_deadlock(self):
        """A -> B then B -> A is flagged even though this interleaving
        ran fine — that is the point: the deadlock is only *potential*."""
        with lockcheck.guard() as checker:
            a, b = threading.Lock(), threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(checker.violations) == 1
        with pytest.raises(LockOrderViolation, match="inversion"):
            checker.assert_clean()

    def test_inversion_across_threads(self):
        with lockcheck.guard() as checker:
            a, b = threading.Lock(), threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t = threading.Thread(target=forward)
            t.start()
            t.join()
            backward()  # reverse edge, different code path
        assert checker.violations

    def test_raise_mode_raises_at_acquire(self):
        with lockcheck.guard(on_violation="raise"):
            a, b = threading.Lock(), threading.Lock()
            with a:
                with b:
                    pass
            with pytest.raises(LockOrderViolation):
                with b:
                    with a:
                        pass

    def test_rlock_reentry_adds_no_edges(self):
        with lockcheck.guard() as checker:
            a = threading.RLock()
            b = threading.RLock()
            with a:
                with a:  # re-entry while holding a: not an a->a edge
                    with b:
                        pass
            with b:  # held alone: no b->a edge without a inside
                pass
        checker.assert_clean()

    def test_deactivated_checker_stops_recording(self):
        with lockcheck.guard() as checker:
            a, b = threading.Lock(), threading.Lock()
            with a:
                with b:
                    pass
        # Guard exited: late use in the opposite order is ignored.
        with b:
            with a:
                pass
        checker.assert_clean()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            lockcheck.LockOrderChecker("explode")
