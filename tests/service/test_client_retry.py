"""ServerClient retry discipline, tested without a daemon.

The transport is a single seam (``_request_raw``); these tests script
it to fail in controlled ways and assert the retry contract: checked
calls back off exponentially with jitter, honor ``Retry-After`` on
backpressure statuses, surface :class:`DaemonUnavailable` (a
``ConnectionError``) once retries are exhausted — and the raw
:meth:`request` primitive never retries at all.
"""

from __future__ import annotations

import http.client

import pytest

from repro.service.client import DaemonUnavailable, ServerClient, ServerError


def scripted(client, outcomes, calls):
    """Replace the transport with a script: each outcome is either an
    exception instance (raised) or a ``(status, data, headers)`` tuple."""

    def fake_request_raw(method, path, body=None):
        calls.append((method, path))
        outcome = outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_raw = fake_request_raw


@pytest.fixture
def no_sleep(monkeypatch):
    """Capture backoff sleeps instead of serving them."""
    slept: list[float] = []
    monkeypatch.setattr("repro.service.client.time.sleep", slept.append)
    return slept


class TestTransportRetries:
    def test_connection_errors_then_success(self, no_sleep):
        client = ServerClient(retries=3, backoff=0.1)
        calls: list = []
        scripted(client, [
            ConnectionRefusedError("refused"),
            http.client.BadStatusLine("garbage"),
            (200, {"ok": True}, {}),
        ], calls)
        assert client.healthz() == {"ok": True}
        assert len(calls) == 3
        assert len(no_sleep) == 2

    def test_backoff_grows_exponentially_with_jitter(self, no_sleep):
        client = ServerClient(retries=3, backoff=0.1)
        scripted(client, [
            ConnectionRefusedError(), ConnectionRefusedError(),
            ConnectionRefusedError(), (200, {}, {}),
        ], [])
        client.healthz()
        # Nominal delays 0.1, 0.2, 0.4 — jittered into [0.5d, d].
        for slept, nominal in zip(no_sleep, (0.1, 0.2, 0.4)):
            assert 0.5 * nominal <= slept <= nominal

    def test_daemon_unavailable_after_exhaustion(self, no_sleep):
        client = ServerClient(retries=2, backoff=0.01)
        calls: list = []
        scripted(client, [ConnectionRefusedError("nope")] * 3, calls)
        with pytest.raises(DaemonUnavailable) as info:
            client.metrics()
        assert len(calls) == 3  # initial try + 2 retries
        assert isinstance(info.value.__cause__, ConnectionRefusedError)
        # Still catchable as the plain ConnectionError callers already handle.
        assert isinstance(info.value, ConnectionError)

    def test_retries_zero_disables_retrying(self, no_sleep):
        client = ServerClient(retries=0)
        calls: list = []
        scripted(client, [ConnectionRefusedError()], calls)
        with pytest.raises(DaemonUnavailable):
            client.healthz()
        assert len(calls) == 1
        assert no_sleep == []


class TestBackpressureRetries:
    def test_429_retried_honoring_retry_after(self, no_sleep):
        client = ServerClient(retries=2, backoff=0.01)
        calls: list = []
        scripted(client, [
            (429, {"error": "queue full"}, {"retry-after": "1"}),
            (200, {"id": "j1"}, {}),
        ], calls)
        assert client.healthz() == {"id": "j1"}
        assert len(calls) == 2
        # Retry-After: 1 overrides the tiny nominal backoff (jittered).
        assert 0.5 <= no_sleep[0] <= 1.0

    def test_503_retried_then_surfaces_as_server_error(self, no_sleep):
        client = ServerClient(retries=2, backoff=0.01)
        calls: list = []
        scripted(client, [(503, {"error": "draining"}, {})] * 3, calls)
        with pytest.raises(ServerError) as info:
            client.healthz()
        assert info.value.status == 503
        assert len(calls) == 3  # backpressure is retried before giving up

    def test_other_errors_fail_immediately(self, no_sleep):
        client = ServerClient(retries=3)
        calls: list = []
        scripted(client, [(404, {"error": "no such job"}, {})], calls)
        with pytest.raises(ServerError) as info:
            client.job("missing")
        assert info.value.status == 404
        assert len(calls) == 1  # 4xx (non-backpressure) is not transient
        assert no_sleep == []

    def test_retry_after_is_capped(self, no_sleep):
        client = ServerClient(retries=1, backoff=0.01)
        scripted(client, [
            (503, {"error": "draining"}, {"retry-after": "3600"}),
            (200, {}, {}),
        ], [])
        client.healthz()
        assert no_sleep[0] <= 2.0  # _BACKOFF_CAP, not the server's hour

    def test_malformed_retry_after_falls_back_to_backoff(self, no_sleep):
        client = ServerClient(retries=1, backoff=0.1)
        scripted(client, [
            (429, {"error": "queue full"}, {"retry-after": "soon"}),
            (200, {}, {}),
        ], [])
        client.healthz()
        assert 0.05 <= no_sleep[0] <= 0.1


class TestRawRequestNeverRetries:
    def test_request_propagates_transport_error(self, no_sleep):
        client = ServerClient(retries=5)
        calls: list = []
        scripted(client, [ConnectionRefusedError("refused")], calls)
        with pytest.raises(ConnectionRefusedError):
            client.request("GET", "/healthz")
        assert len(calls) == 1
        assert no_sleep == []

    def test_request_returns_raw_status(self, no_sleep):
        client = ServerClient(retries=5)
        scripted(client, [(429, {"error": "queue full"}, {})], [])
        status, data = client.request("POST", "/v1/solve", {})
        assert status == 429  # no retry, no exception: caller's problem
        assert data == {"error": "queue full"}


class TestWaitPolling:
    def test_poll_interval_grows_to_cap(self, monkeypatch):
        client = ServerClient()
        scripted(client, [
            *[(200, {"status": "queued"}, {})] * 5,
            (200, {"status": "done"}, {}),
        ], [])
        slept: list[float] = []
        monkeypatch.setattr("repro.service.client.time.sleep", slept.append)
        out = client.wait("j1", poll=0.1, poll_cap=0.3)
        assert out["status"] == "done"
        assert slept == pytest.approx([0.1, 0.15, 0.225, 0.3, 0.3])

    def test_daemon_death_mid_poll_is_typed(self, monkeypatch, no_sleep):
        client = ServerClient(retries=1, backoff=0.01)
        calls: list = []
        scripted(client, [
            (200, {"status": "queued"}, {}),
            ConnectionResetError("daemon died"),
            ConnectionRefusedError("and stayed dead"),
        ], calls)
        with pytest.raises(DaemonUnavailable):
            client.wait("j1", poll=0.01)
        assert len(calls) == 3  # one good poll, then retry, then give up

    def test_transport_failure_count_resets_on_success(self, no_sleep):
        """Consecutive-failure accounting: a successful poll between
        two transport errors starts the retry budget over, so a flaky
        network does not accumulate toward DaemonUnavailable forever."""
        client = ServerClient(retries=1, backoff=0.01)
        calls: list = []
        scripted(client, [
            ConnectionResetError("blip"),
            (200, {"status": "queued"}, {}),
            ConnectionResetError("blip again"),
            (200, {"status": "done"}, {}),
        ], calls)
        assert client.wait("j1", poll=0.01)["status"] == "done"
        assert len(calls) == 4

    def test_timeout_raises_with_last_status(self, monkeypatch):
        client = ServerClient()
        scripted(client, [(200, {"status": "running"}, {})] * 20, [])
        fake_now = [0.0]
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: fake_now[0]
        )

        def advance(seconds):
            fake_now[0] += seconds

        monkeypatch.setattr("repro.service.client.time.sleep", advance)
        with pytest.raises(TimeoutError, match="still running"):
            client.wait("j1", timeout=1.0, poll=0.4)

    def test_wait_honors_retry_after_on_backpressure(self, no_sleep):
        """429/503 mid-poll (daemon draining, router between shards)
        backs off by the server's Retry-After hint — same contract as
        solve() — instead of raising or hammering."""
        client = ServerClient(retries=0, backoff=0.01)
        calls: list = []
        scripted(client, [
            (503, {"error": "draining"}, {"retry-after": "7"}),
            (200, {"status": "done"}, {}),
        ], calls)
        out = client.wait("j1", poll=0.01)
        assert out["status"] == "done"
        assert len(calls) == 2
        # Hinted 7s is capped at _BACKOFF_CAP (2.0s) and jittered into
        # [cap/2, cap] — never the raw hint, never zero.
        assert len(no_sleep) == 1
        assert 1.0 <= no_sleep[0] <= 2.0

    def test_wait_backpressure_still_times_out(self, monkeypatch):
        """A daemon answering 503 forever must not pin wait() in an
        endless backoff loop once the caller's timeout has passed."""
        client = ServerClient(retries=0)
        scripted(client, [(503, {"error": "draining"}, {})] * 20, [])
        fake_now = [0.0]
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: fake_now[0]
        )
        monkeypatch.setattr(
            "repro.service.client.time.sleep",
            lambda seconds: fake_now.__setitem__(0, fake_now[0] + seconds),
        )
        with pytest.raises(TimeoutError):
            client.wait("j1", timeout=1.0, poll=0.1)
