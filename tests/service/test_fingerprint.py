"""Canonical fingerprinting: relabeling invariance and identity."""

import random

import pytest
from hypothesis import given, settings

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.taskgraph import TaskGraph
from repro.service.fingerprint import (
    assignment_from_canonical,
    canonical_assignment,
    canonical_graph,
    canonical_order,
    instance_fingerprint,
)
from repro.system.processors import ProcessorSystem
from tests.strategies import task_graphs


def permuted(graph: TaskGraph, seed: int) -> TaskGraph:
    """A random relabeling of ``graph`` (same instance, new node ids)."""
    rng = random.Random(seed)
    v = graph.num_nodes
    perm = list(range(v))
    rng.shuffle(perm)  # perm[old id] = new id
    inv = [0] * v
    for old, new in enumerate(perm):
        inv[new] = old
    weights = [graph.weight(inv[i]) for i in range(v)]
    edges = {(perm[u], perm[w]): c for (u, w), c in graph.edges.items()}
    return TaskGraph(weights, edges, name="permuted")


class TestCanonicalOrder:
    def test_is_topological(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=14, ccr=1.0, seed=1))
        order = canonical_order(graph)
        pos = {n: i for i, n in enumerate(order)}
        assert sorted(order) == list(range(graph.num_nodes))
        for (u, w), _c in graph.edges.items():
            assert pos[u] < pos[w]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_canonical_graph_invariant_under_relabeling(self, seed):
        graph = paper_random_graph(
            PaperGraphSpec(num_nodes=12, ccr=1.0, seed=seed)
        )
        other = permuted(graph, seed=seed + 100)
        a, b = canonical_graph(graph), canonical_graph(other)
        assert a.weights == b.weights
        assert a.edges == b.edges


class TestFingerprint:
    @pytest.mark.parametrize("v,ccr,seed", [
        (10, 0.1, 1), (12, 1.0, 2), (14, 10.0, 3), (8, 1.0, 4),
    ])
    def test_invariant_under_relabeling(self, v, ccr, seed):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        system = ProcessorSystem.fully_connected(4)
        fp = instance_fingerprint(graph, system)
        for k in range(3):
            assert instance_fingerprint(permuted(graph, k), system) == fp

    @settings(max_examples=30, deadline=None)
    @given(task_graphs(min_nodes=2, max_nodes=7))
    def test_invariant_under_relabeling_hypothesis(self, graph):
        system = ProcessorSystem.fully_connected(3)
        assert instance_fingerprint(permuted(graph, 5), system) == \
            instance_fingerprint(graph, system)

    def test_sensitive_to_every_component(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=5))
        system = ProcessorSystem.fully_connected(4)
        fp = instance_fingerprint(graph, system)
        # Different node weight.
        w2 = list(graph.weights)
        w2[0] += 1.0
        assert instance_fingerprint(
            TaskGraph(w2, graph.edges), system) != fp
        # Different edge cost.
        edges = dict(graph.edges)
        (u, w), c = next(iter(edges.items()))
        edges[(u, w)] = c + 1.0
        assert instance_fingerprint(
            TaskGraph(graph.weights, edges), system) != fp
        # Different system.
        assert instance_fingerprint(
            graph, ProcessorSystem.fully_connected(5)) != fp
        assert instance_fingerprint(graph, ProcessorSystem.ring(4)) != fp
        # Different cost model.
        assert instance_fingerprint(graph, system, cost="improved") != fp

    def test_name_is_not_semantic(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=8, ccr=1.0, seed=6))
        renamed = TaskGraph(graph.weights, graph.edges, name="other-name")
        system = ProcessorSystem.fully_connected(3)
        assert instance_fingerprint(graph, system) == \
            instance_fingerprint(renamed, system)

    def test_stable_literal_value(self):
        """Fingerprints are persisted; the digest must never drift."""
        graph = TaskGraph([2.0, 3.0], {(0, 1): 1.0})
        system = ProcessorSystem.fully_connected(2)
        fp = instance_fingerprint(graph, system)
        assert len(fp) == 32
        assert fp == instance_fingerprint(graph, system)


class TestCanonicalAssignment:
    def test_round_trip_across_relabelings(self):
        from repro.schedule.schedule import Schedule
        from repro.search.astar import astar_schedule

        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=7))
        system = ProcessorSystem.fully_connected(3)
        other = permuted(graph, seed=11)

        sched = astar_schedule(graph, system).schedule
        rows = canonical_assignment(sched, canonical_order(graph))
        # Replay the canonical rows onto the *relabeled* twin.
        replayed = Schedule(
            other, system,
            assignment_from_canonical(canonical_order(other), rows),
        )
        from repro.schedule.validate import validate_schedule

        validate_schedule(replayed)  # feasible on the twin, not just equal
        assert replayed.length == pytest.approx(sched.length)
