"""Portfolio solver: anytime guarantees, selection heuristic, provenance."""

import pytest
from hypothesis import given, settings

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.schedule.validate import validate_schedule
from repro.search.astar import astar_schedule
from repro.service.portfolio import (
    portfolio_schedule,
    select_engine,
    solve_auto,
)
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances


class TestGuarantees:
    @settings(max_examples=20, deadline=None)
    @given(scheduling_instances(max_nodes=6, max_pes=3))
    def test_never_worse_than_list_and_matches_astar(self, instance):
        """The acceptance-criteria property, on tier-1-sized instances."""
        graph, system = instance
        result = portfolio_schedule(graph, system)
        listed = fast_upper_bound_schedule(graph, system)
        assert result.length <= listed.length + 1e-9
        assert result.optimal
        assert result.length == pytest.approx(
            astar_schedule(graph, system).length
        )
        validate_schedule(result.schedule)

    @pytest.mark.parametrize("v,ccr,seed", [
        (10, 0.1, 11), (12, 1.0, 12), (10, 10.0, 13),
    ])
    def test_paper_style_instances_prove_optimal(self, v, ccr, seed):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        system = ProcessorSystem.fully_connected(4)
        result = portfolio_schedule(graph, system, deadline=30.0)
        assert result.optimal and result.certificate == "proven"
        assert result.bound == 1.0
        assert result.length == pytest.approx(
            astar_schedule(graph, system).length
        )

    def test_zero_deadline_falls_back_to_list_schedule(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=1.0, seed=9))
        system = ProcessorSystem.fully_connected(4)
        result = portfolio_schedule(graph, system, deadline=0.0)
        listed = fast_upper_bound_schedule(graph, system)
        assert result.length == pytest.approx(listed.length)
        assert not result.optimal
        assert result.certificate == "budget"
        assert result.winner == "list"
        assert [s.stage for s in result.stages] == ["list"]

    def test_improver_bound_survives_exact_timeout(self):
        """A completed WA* stage proves 1+ε even when exact search can't."""
        graph = paper_random_graph(PaperGraphSpec(num_nodes=18, ccr=10.0, seed=2))
        system = ProcessorSystem.fully_connected(6)
        result = portfolio_schedule(
            graph, system, epsilon=0.5, max_expansions=3_000
        )
        # Whatever happened, the bound is one of: unproven, the improver's
        # 1+ε factor, or a full proof — never something in between.
        assert (
            result.bound == float("inf")
            or result.bound <= 1.5 + 1e-9
        )
        if result.optimal:
            assert result.bound == 1.0


class TestProvenance:
    def test_stages_are_recorded_in_order(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=3))
        system = ProcessorSystem.fully_connected(3)
        result = portfolio_schedule(graph, system)
        names = [s.stage for s in result.stages]
        assert names[0] == "list"
        assert names[-1] == "exact"
        assert result.winner in names
        assert result.stages[0].improved  # the incumbent stage always "improves"

    def test_as_search_result_flattens(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=8, ccr=1.0, seed=4))
        system = ProcessorSystem.fully_connected(3)
        flat = portfolio_schedule(graph, system).as_search_result()
        assert flat.algorithm.startswith("portfolio(")
        assert flat.optimal and flat.certificate == "proven"

    def test_stage_report_as_dict(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=8, ccr=1.0, seed=5))
        system = ProcessorSystem.fully_connected(3)
        result = portfolio_schedule(graph, system)
        row = result.stages[0].as_dict()
        assert row["stage"] == "list" and "makespan" in row


class TestSelection:
    def test_small_instances_pick_astar(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=6))
        assert select_engine(graph, ProcessorSystem.fully_connected(4)) == "astar"

    def test_high_ccr_picks_bnb(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=20, ccr=10.0, seed=7))
        assert select_engine(graph, ProcessorSystem.fully_connected(4)) == "bnb"

    def test_large_sparse_picks_wastar(self):
        # A long chain: large v, minimal density, low CCR.
        v = 24
        graph = TaskGraph(
            [5.0] * v, {(i, i + 1): 1.0 for i in range(v - 1)}
        )
        assert select_engine(graph, ProcessorSystem.fully_connected(4)) == "wastar"

    def test_solve_auto_runs_selected_engine(self):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=8))
        system = ProcessorSystem.fully_connected(3)
        result = solve_auto(graph, system)
        assert result.algorithm.startswith("astar")
        assert result.length == pytest.approx(
            astar_schedule(graph, system).length
        )

    def test_scarce_pes_pick_combined_cost(self):
        from repro.service.portfolio import select_cost

        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=6))
        assert select_cost(graph, ProcessorSystem.fully_connected(2)) == "combined"

    def test_abundant_pes_pick_paper_cost(self):
        """With a PE per task the load bound degenerates to the mean
        weight; the paper's cheap h wins (its own Table-1 argument)."""
        from repro.service.portfolio import select_cost

        graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=6))
        assert select_cost(graph, ProcessorSystem.fully_connected(12)) == "paper"

    def test_auto_cost_resolves_and_matches_paper_result(self):
        """cost=None/'auto' must route through select_cost and return
        the same optimal makespan as an explicit paper-cost run."""
        graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=9))
        system = ProcessorSystem.fully_connected(2)
        explicit = solve_auto(graph, system, cost="paper")
        auto = solve_auto(graph, system, cost="auto")
        default = solve_auto(graph, system)
        assert auto.length == explicit.length == default.length
        pres = portfolio_schedule(graph, system, cost="auto")
        assert pres.length == explicit.length


class TestDeadlineAccounting:
    """Regression tests (ISSUE 3): every stage's engine receives the
    *remaining* deadline (``deadline - elapsed``), never the original
    allotment — driven by a fake clock so stage overruns are exact."""

    def _fake_clock(self, monkeypatch):
        import repro.service.portfolio as pf

        clock = {"t": 1000.0}
        monkeypatch.setattr(pf.time, "perf_counter", lambda: clock["t"])
        return clock

    def _stub_result(self):
        import math

        from repro.search.result import SearchResult, SearchStats

        return SearchResult(
            schedule=None, optimal=False, bound=math.inf,
            stats=SearchStats(), algorithm="stub",
        )

    def test_exact_stage_receives_remaining_not_allotment(self, monkeypatch):
        import repro.service.portfolio as pf

        clock = self._fake_clock(monkeypatch)
        graph = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=1.0, seed=3))
        system = ProcessorSystem.fully_connected(4)

        real_list = pf.fast_upper_bound_schedule

        def slow_list(g, s):
            sched = real_list(g, s)
            clock["t"] += 1.0  # list stage burns 1s
            return sched

        def slow_improver(g, s, eps, *, cost, budget, state_cls, probe=None,
                          pruning=None):
            assert budget.max_seconds == pytest.approx((10.0 - 1.0) * 0.25)
            clock["t"] += 6.0  # overruns its 2.25s share by far
            return self._stub_result()

        captured = {}

        def capture_exact(name, g, s, *, budget, **kw):
            captured["name"] = name
            captured["max_seconds"] = budget.max_seconds
            return self._stub_result()

        monkeypatch.setattr(pf, "fast_upper_bound_schedule", slow_list)
        monkeypatch.setattr(pf, "weighted_astar_schedule", slow_improver)
        monkeypatch.setattr(pf, "_run_engine", capture_exact)

        result = pf.portfolio_schedule(graph, system, deadline=10.0)
        # The exact stage gets deadline - elapsed = 10 - 1 - 6 = 3, not
        # the original 10 (nor the improver's planned-but-overrun share).
        assert captured["max_seconds"] == pytest.approx(3.0)
        assert result.winner == "list"  # stubs never improved anything

    def test_exact_stage_skipped_when_improver_eats_the_deadline(
        self, monkeypatch
    ):
        import repro.service.portfolio as pf

        clock = self._fake_clock(monkeypatch)
        graph = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=1.0, seed=3))
        system = ProcessorSystem.fully_connected(4)

        def slow_improver(g, s, eps, *, cost, budget, state_cls, probe=None,
                          pruning=None):
            clock["t"] += 60.0  # blows way past the whole deadline
            return self._stub_result()

        def exact_must_not_run(*a, **kw):  # pragma: no cover - the bug
            raise AssertionError("exact stage ran past the deadline")

        monkeypatch.setattr(pf, "weighted_astar_schedule", slow_improver)
        monkeypatch.setattr(pf, "_run_engine", exact_must_not_run)

        result = pf.portfolio_schedule(graph, system, deadline=10.0)
        assert [s.stage for s in result.stages] == ["list", "improve"]
        assert not result.optimal

    def test_workers_hand_large_exact_stage_to_hda(self, monkeypatch):
        import repro.service.portfolio as pf

        graph = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=1.0, seed=3))
        system = ProcessorSystem.fully_connected(4)
        captured = {}

        def capture(name, g, s, *, workers=1, **kw):
            captured["name"] = name
            captured["workers"] = workers
            return self._stub_result()

        monkeypatch.setattr(pf, "weighted_astar_schedule",
                            lambda *a, **kw: self._stub_result())
        monkeypatch.setattr(pf, "_run_engine", capture)
        pf.portfolio_schedule(graph, system, workers=3)
        assert captured == {"name": "hda", "workers": 3}
        # Small instances stay serial even with workers granted.
        small = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=3))
        pf.portfolio_schedule(small, ProcessorSystem.fully_connected(3), workers=3)
        assert captured["name"] != "hda"
        # High-CCR instances keep the selector's memory-safe B&B: HDA*
        # is A*-family and would hold full OPEN lists in every worker.
        heavy = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=10.0, seed=3))
        pf.portfolio_schedule(heavy, ProcessorSystem.fully_connected(4), workers=3)
        assert captured["name"] == "bnb"
