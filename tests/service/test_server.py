"""End-to-end tests of the solver daemon over real HTTP.

A :class:`SolverServer` runs on a background thread with a real
process pool; requests go through :class:`ServerClient` (stdlib
``http.client``), so these exercise the full request path: HTTP parse →
admission → fingerprint dedupe → cache → portfolio on the pool → fan-out
→ JSON response.  The SIGTERM drain test runs ``repro serve`` as an
actual subprocess (slow tier).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.service.cache import ResultCache
from repro.service.client import ServerClient, ServerError
from repro.service.server import SolverServer
from repro.system.processors import ProcessorSystem
from tests.service.test_fingerprint import permuted


def graph_for(seed: int, v: int = 9):
    return paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))


@pytest.fixture(scope="module")
def server():
    srv = SolverServer(port=0, solver_workers=2, queue_limit=8,
                       max_expansions=50_000)
    thread = srv.serve_in_thread()
    yield srv
    srv.shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def client(server):
    return ServerClient(port=server.port)


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_metrics_shape(self, client):
        m = client.metrics()
        assert {"queue_depth", "queue_limit", "running", "in_flight",
                "jobs", "engines", "cache", "cache_hit_rate",
                "pool_workers", "draining"} <= set(m)
        assert m["queue_limit"] == 8 and m["pool_workers"] == 2

    def test_unknown_route_404(self, client):
        status, data = client.request("GET", "/nope")
        assert status == 404 and "error" in data

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as err:
            client.job("j999999")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        status, _ = client.request("POST", "/healthz", {})
        assert status == 405
        status, _ = client.request("GET", "/v1/solve")
        assert status == 405

    def test_bad_json_400(self, client):
        import http.client as hc

        conn = hc.HTTPConnection(client.host, client.port, timeout=30)
        conn.request("POST", "/v1/solve", body="{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert "invalid JSON" in json.loads(response.read())["error"]
        conn.close()

    def test_bad_graph_400(self, client):
        status, data = client.request(
            "POST", "/v1/solve", {"graph": {"schema": 99}})
        assert status == 400 and "bad request" in data["error"]

    def test_non_object_body_400(self, client):
        status, data = client.request("POST", "/v1/solve", [1, 2, 3])
        assert status == 400

    def test_negative_content_length_400(self, client):
        import socket

        with socket.create_connection((client.host, client.port),
                                      timeout=30) as sock:
            sock.sendall(b"POST /v1/solve HTTP/1.1\r\n"
                         b"Content-Length: -1\r\n\r\n")
            response = sock.recv(4096).decode()
        assert response.startswith("HTTP/1.1 400")

    def test_bad_solver_options_400(self, client):
        body = client.solve_request(graph_for(seed=26), pes=3,
                                    solver_workers=500)
        status, data = client.request("POST", "/v1/solve", body)
        assert status == 400 and "solver_workers" in data["error"]


class TestSolve:
    def test_sync_solve_returns_feasible_schedule(self, client):
        graph = graph_for(seed=21)
        system = ProcessorSystem.fully_connected(3)
        out = client.solve(graph, system, name="sync-demo")
        assert out["status"] == "done" and out["via"] == "solve"
        result = out["result"]
        assert result["name"] == "sync-demo"
        schedule = Schedule(
            graph, system,
            {int(n): (int(pe), float(st))
             for n, pe, st in result["assignment"]},
        )
        validate_schedule(schedule)
        assert schedule.length == pytest.approx(result["makespan"])

    def test_repeat_request_hits_cache(self, client):
        graph = graph_for(seed=22)
        first = client.solve(graph, pes=3)
        again = client.solve(graph, pes=3)
        assert first["via"] == "solve" and again["via"] == "cache"
        assert again["result"]["makespan"] == first["result"]["makespan"]
        assert client.metrics()["jobs"]["cache_hits"] >= 1

    def test_relabeled_twin_hits_cache_across_http(self, client):
        """Canonical fingerprinting end to end: a permuted copy of an
        already-served instance is answered from the cache, remapped
        into the twin's own node numbering."""
        graph = graph_for(seed=23)
        system = ProcessorSystem.fully_connected(3)
        original = client.solve(graph, system)
        twin = permuted(graph, seed=7)
        served = client.solve(twin, system)
        assert served["via"] == "cache"
        assert served["fingerprint"] == original["fingerprint"]
        validate_schedule(Schedule(
            twin, system,
            {int(n): (int(pe), float(st))
             for n, pe, st in served["result"]["assignment"]},
        ))

    def test_async_submit_then_poll(self, client):
        job_id = client.submit(graph_for(seed=24), pes=3)
        snapshot = client.wait(job_id, timeout=60)
        assert snapshot["status"] == "done"
        assert snapshot["result"]["makespan"] > 0

    def test_concurrent_duplicates_fan_out(self, client):
        """The acceptance scenario: N concurrent identical requests are
        solved once; the rest ride as followers, visible in /metrics."""
        before = client.metrics()["jobs"]
        graph = graph_for(seed=25, v=12)
        results = []
        def go():
            results.append(client.solve(graph, pes=4))
        threads = [threading.Thread(target=go) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        vias = sorted(r["via"] for r in results)
        assert vias.count("solve") == 1
        assert set(vias) <= {"solve", "dedup", "cache"}
        after = client.metrics()["jobs"]
        assert after["solved"] - before["solved"] == 1
        fanned = after["dedup_fanout"] - before["dedup_fanout"]
        cached = vias.count("cache")
        assert fanned == 3 - cached and fanned >= 1
        lengths = {r["result"]["makespan"] for r in results}
        assert len(lengths) == 1


class TestAdmissionControl:
    def test_queue_overflow_returns_429(self):
        srv = SolverServer(port=0, solver_workers=1, queue_limit=1,
                           max_expansions=100_000)
        thread = srv.serve_in_thread()
        client = ServerClient(port=srv.port)
        try:
            codes = []
            for seed in range(10):
                body = client.solve_request(
                    graph_for(seed=300 + seed, v=13), pes=4, wait=False)
                status, _ = client.request("POST", "/v1/solve", body)
                codes.append(status)
            assert 429 in codes
            assert codes[0] == 202  # the first was accepted
            assert client.metrics()["jobs"]["rejected"] >= 1
        finally:
            srv.shutdown()
            thread.join(timeout=120)

    def test_sqlite_cache_persists_in_thread_mode(self, tmp_path):
        """The embedded serve_in_thread() mode must actually persist to
        a file-backed cache: the SQLite connection is created on the
        event-loop thread (cross-thread use would be silently swallowed
        as 'stale' by the cache's corruption handling)."""
        path = tmp_path / "embedded.db"
        srv = SolverServer(port=0, solver_workers=1, cache=path)
        thread = srv.serve_in_thread()
        client = ServerClient(port=srv.port)
        try:
            out = client.solve(graph_for(seed=41), pes=3)
            assert out["via"] == "solve"
            metrics = client.metrics()
            assert metrics["cache"]["stored_entries"] == 1
            assert metrics["cache"]["stale"] == 0
        finally:
            srv.shutdown()
            thread.join(timeout=60)
        with ResultCache(path) as reopened:
            assert reopened.get(out["fingerprint"]) is not None

    def test_healthz_responsive_during_stalled_cache_put(self):
        """Cache I/O must stay off the event loop: while a put() is
        wedged on a slow store, /healthz and /metrics keep answering
        (ROADMAP "Known limits" item — the put runs on the dedicated
        cache thread, blocking only its own runner coroutine)."""
        entered = threading.Event()
        release = threading.Event()

        class StallingCache(ResultCache):
            def put(self, entry):
                entered.set()
                assert release.wait(timeout=60), "test never released put()"
                return super().put(entry)

        cache = StallingCache()
        srv = SolverServer(port=0, solver_workers=1, cache=cache,
                           max_expansions=20_000)
        thread = srv.serve_in_thread()
        client = ServerClient(port=srv.port)
        try:
            job_id = client.submit(graph_for(seed=51), pes=3)
            assert entered.wait(timeout=60), "solve never reached put()"
            # The put is now blocked mid-write; the loop must still serve.
            t0 = time.perf_counter()
            assert client.healthz()["status"] == "ok"
            metrics = client.metrics()
            assert time.perf_counter() - t0 < 5.0
            assert metrics["jobs"]["accepted"] >= 1
            release.set()
            snapshot = client.wait(job_id, timeout=60)
            assert snapshot["status"] == "done"
        finally:
            release.set()
            srv.shutdown()
            thread.join(timeout=60)
        assert cache.stored_entries == 1

    def test_draining_returns_503(self):
        srv = SolverServer(port=0, solver_workers=1, queue_limit=4)
        thread = srv.serve_in_thread()
        client = ServerClient(port=srv.port)
        try:
            assert srv.manager is not None
            srv.manager.draining = True
            status, data = client.request(
                "POST", "/v1/solve",
                client.solve_request(graph_for(seed=31), pes=3))
            assert status == 503 and "draining" in data["error"]
            assert client.healthz()["status"] == "draining"
        finally:
            srv.shutdown()
            thread.join(timeout=60)


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_drains_without_losing_results(self, tmp_path):
        """Accepted async jobs all finish and land in the persistent
        cache before the process exits."""
        cache_path = tmp_path / "serve.db"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--solver-workers", "2", "--queue-limit", "32",
             "--cache", str(cache_path), "--max-expansions", "50000"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline()
            assert "listening on" in ready, ready
            port = int(ready.split(":")[-1].split()[0].strip("/"))
            client = ServerClient(port=port)
            graphs = [graph_for(seed=500 + s, v=10) for s in range(6)]
            accepted = []
            for graph in graphs:
                body = client.solve_request(graph, pes=3, wait=False)
                status, data = client.request("POST", "/v1/solve", body)
                assert status == 202
                accepted.append(data["fingerprint"])
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=180)
            assert proc.returncode == 0, err
            assert "drained" in out
            # Drain report: every accepted job completed, none failed.
            assert f"{len(accepted)} accepted" in out
            assert f"{len(accepted)} completed" in out
            assert "0 failed" in out
            # No lost results: every accepted fingerprint was flushed to
            # the persistent cache.
            cache = ResultCache(cache_path)
            try:
                for fp in accepted:
                    assert cache.get(fp) is not None, f"lost result {fp}"
            finally:
                cache.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


class TestMetricsSchema:
    """Pin the legacy ``/metrics`` JSON schema.

    External scrapers were built against these exact keys; new
    telemetry must be *additive* (the ``latency`` map is), never a
    rename or removal.  If this test fails, you broke a consumer —
    add keys, don't change these.
    """

    LEGACY_TOP_LEVEL = {
        "uptime_seconds", "draining", "queue_depth", "queue_limit",
        "running", "in_flight", "pool_workers", "jobs", "failures",
        "cache_hit_rate", "engines", "cache",
    }
    LEGACY_JOB_COUNTERS = {
        "submitted", "accepted", "rejected", "completed", "failed",
        "cache_hits", "dedup_fanout", "solved", "pool_rebuilds",
        "degraded", "cache_errors",
    }
    LEGACY_FAILURE_CAUSES = {
        "broken_pool", "worker_error", "completion_error",
    }

    def test_legacy_keys_pinned(self, client):
        m = client.metrics()
        assert self.LEGACY_TOP_LEVEL <= set(m)
        assert self.LEGACY_JOB_COUNTERS <= set(m["jobs"])
        assert self.LEGACY_FAILURE_CAUSES <= set(m["failures"])
        assert isinstance(m["uptime_seconds"], float)
        assert isinstance(m["draining"], bool)
        assert isinstance(m["cache_hit_rate"], float)
        for section in ("jobs", "failures", "engines", "cache"):
            assert isinstance(m[section], dict)

    def test_latency_section_is_additive_and_json_safe(self, client, server):
        # Drive one solve through so latency histograms are populated.
        graph = graph_for(seed=431, v=8)
        ServerClient(port=server.port).solve(graph, pes=2)
        m = client.metrics()
        assert "request_seconds" in m["latency"]
        assert "queue_wait_seconds" in m["latency"]
        assert any(k.startswith("solve_seconds{engine=")
                   for k in m["latency"])
        for summary in m["latency"].values():
            assert set(summary) == {"count", "sum", "p50", "p99"}
            for v in summary.values():
                # strict JSON: None or a finite float, never nan/inf
                assert v is None or (isinstance(v, float)
                                     and v == v and abs(v) != float("inf"))
        # Round-trips through strict JSON (allow_nan=False raises on
        # any nan/Infinity that snuck in).
        json.dumps(m, allow_nan=False)


class TestPrometheusEndpoint:
    def _scrape(self, server, query="format=prometheus"):
        import http.client as hc
        conn = hc.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", f"/metrics?{query}")
            resp = conn.getresponse()
            return resp.status, dict(
                (k.lower(), v) for k, v in resp.getheaders()
            ), resp.read().decode()
        finally:
            conn.close()

    def test_text_exposition_format(self, server):
        graph = graph_for(seed=433, v=8)
        ServerClient(port=server.port).solve(graph, pes=2)
        status, headers, body = self._scrape(server)
        assert status == 200
        assert headers["content-type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        assert "# TYPE repro_request_seconds histogram" in body
        assert 'repro_request_seconds_bucket{le="+Inf"}' in body
        assert "repro_request_seconds_sum" in body
        assert "repro_request_seconds_count" in body
        assert "# TYPE repro_jobs_total counter" in body
        assert 'repro_jobs_total{event="completed"}' in body
        assert "# TYPE repro_queue_depth gauge" in body
        assert "repro_uptime_seconds" in body
        # Every sample line is "name{labels} value" with a float value.
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) is not None

    def test_unknown_format_is_400(self, server):
        status, _, body = self._scrape(server, query="format=xml")
        assert status == 400
        assert "error" in json.loads(body)

    def test_json_remains_the_default(self, client):
        m = client.metrics()
        assert "jobs" in m  # decoded as JSON, not text


class TestDeepReadiness:
    """``/healthz?deep=1`` — the probe the fleet router points at."""

    def test_deep_ok_on_a_healthy_daemon(self, client):
        status, data = client.request("GET", "/healthz?deep=1")
        assert status == 200
        assert data["status"] == "ok"
        assert data["checks"] == {"pool": "ok", "cache": "ok"}

    def test_shallow_healthz_payload_unchanged(self, client):
        # The historical liveness contract: no checks, no new keys.
        assert client.healthz() == {"status": "ok"}

    def test_cache_probe_fault_flips_deep_to_503(self, tmp_path, monkeypatch):
        from repro.testing import faults

        server = SolverServer(port=0, solver_workers=1, queue_limit=4,
                              cache=tmp_path / "deep.db",
                              max_expansions=20_000)
        thread = server.serve_in_thread()
        try:
            client = ServerClient(port=server.port, retries=0)
            status, data = client.request("GET", "/healthz?deep=1")
            assert status == 200 and data["checks"]["cache"] == "ok"
            monkeypatch.setenv(faults.ENV_VAR, "cache-probe-error")
            status, data = client.request("GET", "/healthz?deep=1")
            assert status == 503
            assert data["status"] == "unhealthy"
            assert "InjectedFault" in data["checks"]["cache"]
            assert data["checks"]["pool"] == "ok"  # pool stayed green
            # The fault fires once; readiness recovers on the next probe
            # (and routine traffic was never affected).
            status, data = client.request("GET", "/healthz?deep=1")
            assert status == 200 and data["status"] == "ok"
        finally:
            monkeypatch.delenv(faults.ENV_VAR, raising=False)
            server.shutdown()
            thread.join(timeout=60)
            assert not thread.is_alive()


class TestFleetIdentity:
    def test_shard_id_labels_metrics_and_deep_health(self):
        server = SolverServer(port=0, solver_workers=1, queue_limit=4,
                              shard_id="s9", max_expansions=20_000)
        thread = server.serve_in_thread()
        try:
            client = ServerClient(port=server.port)
            assert client.metrics()["shard"] == "s9"
            status, data = client.request("GET", "/healthz?deep=1")
            assert status == 200 and data["shard"] == "s9"
        finally:
            server.shutdown()
            thread.join(timeout=60)
            assert not thread.is_alive()

    def test_unlabeled_daemon_has_no_shard_key(self, client):
        assert "shard" not in client.metrics()


class TestAdaptiveRetryAfter:
    def test_dedup_followers_exposed_in_metrics(self, client, server):
        m = client.metrics()
        assert "dedup_followers" in m
        assert isinstance(m["dedup_followers"], int)

    def test_dedup_followers_in_prometheus(self, server):
        import http.client as hc

        conn = hc.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/metrics?format=prometheus")
            body = conn.getresponse().read().decode()
        finally:
            conn.close()
        assert "# TYPE repro_dedup_followers gauge" in body
        assert "repro_dedup_followers" in body

    def test_429_carries_an_adaptive_retry_after(self):
        """With the queue wedged full by a slow solve, the Retry-After
        on the 429 reflects the backlog estimate, not the historical
        constant 1."""
        from repro.testing import faults

        server = SolverServer(port=0, solver_workers=1, queue_limit=1,
                              max_expansions=20_000)
        thread = server.serve_in_thread()
        try:
            # Nudge the EWMA so the estimate is distinguishable from 1s.
            server.manager._solve_ewma = 10.0
            client = ServerClient(port=server.port, retries=0)
            import http.client as hc

            # Wedge: one slow request occupies the runner, one more
            # fills the queue, the next is rejected.
            monkeypatch_env = faults.ENV_VAR
            os.environ[monkeypatch_env] = "solve-slow:2.0"
            try:
                slow = [graph_for(seed=600 + s, v=10) for s in range(3)]
                statuses = []
                retry_afters = []
                for graph in slow:
                    body = client.solve_request(graph, pes=3, wait=False)
                    conn = hc.HTTPConnection("127.0.0.1", server.port,
                                             timeout=30)
                    try:
                        conn.request("POST", "/v1/solve",
                                     body=json.dumps(body),
                                     headers={"Content-Type":
                                              "application/json"})
                        resp = conn.getresponse()
                        statuses.append(resp.status)
                        retry_afters.append(resp.getheader("Retry-After"))
                        resp.read()
                    finally:
                        conn.close()
                assert 429 in statuses
                hint = int(retry_afters[statuses.index(429)])
                # >= 2 pending x 10s EWMA / 1 runner, capped at 30.
                assert hint > 1
                assert hint <= 30
            finally:
                os.environ.pop(monkeypatch_env, None)
        finally:
            server.shutdown()
            thread.join(timeout=120)
            assert not thread.is_alive()
