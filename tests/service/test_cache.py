"""Result cache: LRU behaviour, persistence, and replacement policy."""

import pytest

from repro.service.cache import CacheEntry, ResultCache


def entry(fp: str, makespan: float = 10.0, certificate: str = "proven",
          algorithm: str = "astar") -> CacheEntry:
    return CacheEntry(
        fingerprint=fp,
        assignment=((0, 0.0), (1, 2.0)),
        makespan=makespan,
        certificate=certificate,
        bound=1.0 if certificate == "proven" else float("inf"),
        algorithm=algorithm,
    )


class TestMemoryTier:
    def test_round_trip(self):
        cache = ResultCache()
        assert cache.get("aa") is None
        assert cache.put(entry("aa"))
        got = cache.get("aa")
        assert got is not None
        assert got.assignment == ((0, 0.0), (1, 2.0))
        assert got.proven
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(entry("aa"))
        cache.put(entry("bb"))
        cache.get("aa")  # touch: aa becomes most-recent
        cache.put(entry("cc"))  # evicts bb
        assert "aa" in cache and "cc" in cache
        assert "bb" not in cache

    def test_replacement_keeps_better(self):
        cache = ResultCache()
        cache.put(entry("aa", makespan=10.0, certificate="proven"))
        # Worse certificate never replaces a proof.
        assert not cache.put(entry("aa", makespan=5.0, certificate="budget"))
        assert cache.get("aa").makespan == 10.0
        # A proof with a shorter makespan does.
        assert cache.put(entry("aa", makespan=8.0, certificate="proven"))
        assert cache.get("aa").makespan == 8.0

    def test_unproven_improves_on_unproven(self):
        cache = ResultCache()
        cache.put(entry("aa", makespan=10.0, certificate="budget"))
        assert cache.put(entry("aa", makespan=9.0, certificate="budget"))
        assert cache.put(entry("aa", makespan=12.0, certificate="proven"))
        assert cache.get("aa").makespan == 12.0

    def test_stale_counter(self):
        cache = ResultCache()
        cache.put(entry("aa", certificate="budget"))
        assert cache.get("aa", require_proven=True) is None
        assert cache.stale == 1
        assert cache.hits == 0
        # Plain reads still serve the unproven entry.
        assert cache.get("aa") is not None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestPersistentTier:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa", makespan=7.0))
        with ResultCache(path) as cache:
            got = cache.get("aa")
            assert got is not None and got.makespan == 7.0
            assert got.created > 0  # stamped on first put

    def test_eviction_does_not_lose_persisted_entries(self, tmp_path):
        path = tmp_path / "cache.db"
        with ResultCache(path, capacity=1) as cache:
            cache.put(entry("aa"))
            cache.put(entry("bb"))  # evicts aa from memory only
            assert len(cache) == 1
            assert cache.get("aa") is not None  # reloaded from SQLite
            assert cache.stored_entries == 2

    def test_replacement_policy_applies_across_tiers(self, tmp_path):
        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa", makespan=10.0, certificate="proven"))
        with ResultCache(path, capacity=8) as cache:
            # Memory tier is empty; the existing proof is on disk only.
            assert not cache.put(entry("aa", makespan=5.0, certificate="budget"))
            assert cache.get("aa").makespan == 10.0

    def test_corrupt_payload_reads_as_miss_and_is_overwritable(self, tmp_path):
        import sqlite3

        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa", makespan=7.0))
        db = sqlite3.connect(path)
        db.execute("UPDATE results SET payload = '{\"not\": \"an entry\"}'")
        db.commit()
        db.close()
        with ResultCache(path) as cache:
            assert cache.get("aa") is None  # miss, not a crash
            assert cache.put(entry("aa", makespan=9.0))  # overwrites bad row
            assert cache.get("aa").makespan == 9.0

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        import json as _json
        import sqlite3

        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa"))
        db = sqlite3.connect(path)
        (payload,) = db.execute("SELECT payload FROM results").fetchone()
        doc = _json.loads(payload)
        doc["schema"] = 999
        db.execute("UPDATE results SET payload = ?", (_json.dumps(doc),))
        db.commit()
        db.close()
        with ResultCache(path) as cache:
            assert cache.get("aa") is None

    def test_counters_shape(self, tmp_path):
        with ResultCache(tmp_path / "c.db") as cache:
            cache.put(entry("aa"))
            cache.get("aa")
            cache.get("zz")
            counters = cache.counters()
        assert counters == {
            "hits": 1, "misses": 1, "stale": 0,
            "memory_entries": 1, "stored_entries": 1,
        }
