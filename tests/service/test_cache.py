"""Result cache: LRU behaviour, persistence, and replacement policy."""

import pytest

from repro.service.cache import CacheEntry, ResultCache


def entry(fp: str, makespan: float = 10.0, certificate: str = "proven",
          algorithm: str = "astar") -> CacheEntry:
    return CacheEntry(
        fingerprint=fp,
        assignment=((0, 0.0), (1, 2.0)),
        makespan=makespan,
        certificate=certificate,
        bound=1.0 if certificate == "proven" else float("inf"),
        algorithm=algorithm,
    )


class TestMemoryTier:
    def test_round_trip(self):
        cache = ResultCache()
        assert cache.get("aa") is None
        assert cache.put(entry("aa"))
        got = cache.get("aa")
        assert got is not None
        assert got.assignment == ((0, 0.0), (1, 2.0))
        assert got.proven
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(entry("aa"))
        cache.put(entry("bb"))
        cache.get("aa")  # touch: aa becomes most-recent
        cache.put(entry("cc"))  # evicts bb
        assert "aa" in cache and "cc" in cache
        assert "bb" not in cache

    def test_replacement_keeps_better(self):
        cache = ResultCache()
        cache.put(entry("aa", makespan=10.0, certificate="proven"))
        # Worse certificate never replaces a proof.
        assert not cache.put(entry("aa", makespan=5.0, certificate="budget"))
        assert cache.get("aa").makespan == 10.0
        # A proof with a shorter makespan does.
        assert cache.put(entry("aa", makespan=8.0, certificate="proven"))
        assert cache.get("aa").makespan == 8.0

    def test_unproven_improves_on_unproven(self):
        cache = ResultCache()
        cache.put(entry("aa", makespan=10.0, certificate="budget"))
        assert cache.put(entry("aa", makespan=9.0, certificate="budget"))
        assert cache.put(entry("aa", makespan=12.0, certificate="proven"))
        assert cache.get("aa").makespan == 12.0

    def test_stale_counter(self):
        cache = ResultCache()
        cache.put(entry("aa", certificate="budget"))
        assert cache.get("aa", require_proven=True) is None
        assert cache.stale == 1
        assert cache.hits == 0
        # Plain reads still serve the unproven entry.
        assert cache.get("aa") is not None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestPersistentTier:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa", makespan=7.0))
        with ResultCache(path) as cache:
            got = cache.get("aa")
            assert got is not None and got.makespan == 7.0
            assert got.created > 0  # stamped on first put

    def test_eviction_does_not_lose_persisted_entries(self, tmp_path):
        path = tmp_path / "cache.db"
        with ResultCache(path, capacity=1) as cache:
            cache.put(entry("aa"))
            cache.put(entry("bb"))  # evicts aa from memory only
            assert len(cache) == 1
            assert cache.get("aa") is not None  # reloaded from SQLite
            assert cache.stored_entries == 2

    def test_replacement_policy_applies_across_tiers(self, tmp_path):
        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa", makespan=10.0, certificate="proven"))
        with ResultCache(path, capacity=8) as cache:
            # Memory tier is empty; the existing proof is on disk only.
            assert not cache.put(entry("aa", makespan=5.0, certificate="budget"))
            assert cache.get("aa").makespan == 10.0

    def test_corrupt_payload_reads_as_miss_and_is_overwritable(self, tmp_path):
        import sqlite3

        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa", makespan=7.0))
        db = sqlite3.connect(path)
        db.execute("UPDATE results SET payload = '{\"not\": \"an entry\"}'")
        db.commit()
        db.close()
        with ResultCache(path) as cache:
            assert cache.get("aa") is None  # miss, not a crash
            assert cache.put(entry("aa", makespan=9.0))  # overwrites bad row
            assert cache.get("aa").makespan == 9.0

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        import json as _json
        import sqlite3

        path = tmp_path / "cache.db"
        with ResultCache(path) as cache:
            cache.put(entry("aa"))
        db = sqlite3.connect(path)
        (payload,) = db.execute("SELECT payload FROM results").fetchone()
        doc = _json.loads(payload)
        doc["schema"] = 999
        db.execute("UPDATE results SET payload = ?", (_json.dumps(doc),))
        db.commit()
        db.close()
        with ResultCache(path) as cache:
            assert cache.get("aa") is None

    def test_counters_shape(self, tmp_path):
        with ResultCache(tmp_path / "c.db") as cache:
            cache.put(entry("aa"))
            cache.get("aa")
            cache.get("zz")
            counters = cache.counters()
        assert counters == {
            "hits": 1, "misses": 1, "stale": 0,
            "memory_entries": 1, "stored_entries": 1,
        }


class TestCorruptStore:
    """Regression tests (ISSUE 3): file-level SQLite corruption must
    read as a miss (counted stale), never crash a batch run."""

    def _corrupt_data_page(self, path):
        """Overwrite the table's data page, sparing page 1 (the header
        and schema), so connecting and CREATE TABLE still succeed but
        touching the row raises sqlite3.DatabaseError."""
        blob = bytearray(path.read_bytes())
        assert len(blob) > 4096, "store too small to hold a second page"
        for i in range(4096, min(len(blob), 8192)):
            blob[i] = 0xFF
        path.write_bytes(bytes(blob))

    def test_malformed_blob_reads_as_stale_miss(self, tmp_path):
        db = tmp_path / "cache.db"
        with ResultCache(db) as cache:
            cache.put(entry("aa"))
        self._corrupt_data_page(db)
        with ResultCache(db) as cache:  # schema page intact: opens fine
            assert cache.get("aa") is None  # DatabaseError absorbed
            assert cache.stale == 1
            assert cache.misses == 1

    def test_corrupt_store_does_not_abort_puts(self, tmp_path):
        db = tmp_path / "cache.db"
        with ResultCache(db) as cache:
            cache.put(entry("aa"))
        self._corrupt_data_page(db)
        with ResultCache(db) as cache:
            assert cache.put(entry("bb", makespan=7.0))  # swallowed, counted
            assert cache.stale >= 1
            # The entry is still served from the memory tier.
            assert cache.get("bb").makespan == 7.0

    def test_malformed_row_blob_injected_directly(self, tmp_path):
        """A structurally-valid DB holding a garbage payload row."""
        import sqlite3 as sql

        db = tmp_path / "cache.db"
        ResultCache(db).close()  # create the schema
        con = sql.connect(db)
        con.execute(
            "INSERT INTO results (fingerprint, payload, makespan, proven,"
            " created) VALUES (?, ?, ?, ?, ?)",
            ("aa", b"\x00\xffnot json\xfe", 1.0, 1, 0.0),
        )
        con.commit()
        con.close()
        with ResultCache(db) as cache:
            assert cache.get("aa") is None
            assert cache.misses == 1
            # The solver's fresh result overwrites the bad row.
            assert cache.put(entry("aa", makespan=4.0))
        with ResultCache(db) as cache:
            assert cache.get("aa").makespan == 4.0


class TestLifecycle:
    """Context-manager / close() behaviour under exceptions mid-put."""

    def test_exception_mid_put_closes_connection_and_db_survives(
        self, tmp_path
    ):
        db = tmp_path / "cache.db"
        bad = entry("bb")
        # stats must be JSON-serializable; an object() is not, so the
        # put raises *after* the memory admit, mid-persistence.
        bad = type(bad)(
            fingerprint=bad.fingerprint,
            assignment=bad.assignment,
            makespan=bad.makespan,
            certificate=bad.certificate,
            bound=bad.bound,
            algorithm=bad.algorithm,
            stats={"oops": object()},
        )
        with pytest.raises(TypeError):
            with ResultCache(db) as cache:
                assert cache.put(entry("aa"))
                cache.put(bad)
        assert cache._db is None  # __exit__ ran: no leaked connection
        # The store is intact and still readable afterwards.
        with ResultCache(db) as reopened:
            assert reopened.get("aa").makespan == 10.0
            assert reopened.get("bb") is None  # never persisted

    def test_close_is_idempotent_and_get_after_close_uses_memory(self):
        cache = ResultCache()
        cache.put(entry("aa"))
        cache.close()
        cache.close()  # no-op twice
        assert cache.get("aa") is not None  # memory tier still serves

    def test_double_close_with_persistent_store(self, tmp_path):
        db = tmp_path / "cache.db"
        cache = ResultCache(db)
        cache.put(entry("aa"))
        cache.close()
        cache.close()  # second close must not touch the dead handle
        assert cache._db is None
        with ResultCache(db) as reopened:
            assert reopened.get("aa").makespan == 10.0

    def test_put_after_close_degrades_to_memory_only(self, tmp_path):
        """A put racing shutdown lands in the memory tier without
        raising — the entry is simply not durable."""
        db = tmp_path / "cache.db"
        cache = ResultCache(db)
        cache.put(entry("aa"))
        cache.close()
        assert cache.put(entry("bb"))  # no crash, admitted to memory
        assert cache.get("bb") is not None
        with ResultCache(db) as reopened:
            assert reopened.get("aa") is not None  # persisted before close
            assert reopened.get("bb") is None  # post-close put was not

    def test_executor_shutdown_races_in_flight_put(self, tmp_path, monkeypatch):
        """The daemon routes cache I/O through a single-worker executor
        and shuts it down while a put may still be running (drain).  A
        slow in-flight put must complete and persist; queued work that
        shutdown cancels must not corrupt the store."""
        from concurrent.futures import CancelledError, ThreadPoolExecutor

        from repro.testing import faults

        db = tmp_path / "cache.db"
        cache = ResultCache(db)
        pool = ThreadPoolExecutor(max_workers=1)
        monkeypatch.setenv(faults.ENV_VAR, "cache-slow:0.3")
        in_flight = pool.submit(cache.put, entry("aa"))  # sleeps 0.3s
        queued = pool.submit(cache.put, entry("bb"))
        pool.shutdown(wait=True, cancel_futures=True)
        assert in_flight.result(timeout=5) is True
        with pytest.raises(CancelledError):
            queued.result(timeout=5)
        cache.close()
        monkeypatch.delenv(faults.ENV_VAR)
        with ResultCache(db) as reopened:
            assert reopened.get("aa").makespan == 10.0  # survived the race
            assert reopened.get("bb") is None  # cancelled cleanly
