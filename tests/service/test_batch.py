"""Batch front-end: dedupe, cache reuse, loaders, and fan-out."""

import json

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.io import graph_to_dict, save_graph_json
from repro.errors import WorkloadError
from repro.schedule.validate import validate_schedule
from repro.parallel.hda import hda_astar_schedule
from repro.search.astar import astar_schedule
from repro.service.batch import (
    BatchItem,
    items_from_suite,
    load_items,
    run_batch,
)
from repro.service.cache import ResultCache
from repro.system.processors import ProcessorSystem
from tests.service.test_fingerprint import permuted


def make_item(name: str, v: int = 8, seed: int = 1, pes: int = 3) -> BatchItem:
    graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))
    return BatchItem(
        name=name, graph=graph, system=ProcessorSystem.fully_connected(pes)
    )


class TestDedupe:
    def test_identical_requests_solved_once(self):
        items = [make_item("a"), make_item("b"), make_item("c", seed=2)]
        report = run_batch(items, max_expansions=50_000)
        assert report.solved == 2  # two unique fingerprints
        assert report.deduped == 1
        a, b, c = report.outcomes
        assert not a.shared and b.shared and not c.shared
        assert a.fingerprint == b.fingerprint != c.fingerprint
        assert a.makespan == pytest.approx(b.makespan)

    def test_relabeled_twin_dedupes_onto_original(self):
        """The whole point of canonical fingerprints, end to end."""
        base = make_item("orig")
        twin = BatchItem(
            name="twin", graph=permuted(base.graph, seed=17), system=base.system
        )
        report = run_batch([base, twin], max_expansions=50_000)
        assert report.solved == 1 and report.deduped == 1
        orig, shared = report.outcomes
        assert shared.shared
        assert orig.makespan == pytest.approx(shared.makespan)
        # The fanned-out schedule must be feasible in the twin's own
        # node numbering, not just equal in length.
        validate_schedule(shared.schedule)


class TestCacheIntegration:
    def test_solve_then_hit_returns_identical_schedule(self, tmp_path):
        cache = ResultCache(tmp_path / "c.db")
        item = make_item("x")
        cold = run_batch([item], cache=cache, max_expansions=50_000)
        warm = run_batch([item], cache=cache)
        assert cold.solved == 1 and cold.cache_hits == 0
        assert warm.solved == 0 and warm.cache_hits == 1
        assert warm.outcomes[0].cached
        assert warm.outcomes[0].schedule == cold.outcomes[0].schedule
        assert warm.outcomes[0].certificate == cold.outcomes[0].certificate
        cache.close()

    def test_cached_optimum_matches_astar(self, tmp_path):
        cache = ResultCache(tmp_path / "c.db")
        item = make_item("x")
        run_batch([item], cache=cache, max_expansions=50_000)
        warm = run_batch([item], cache=cache)
        opt = astar_schedule(item.graph, item.system)
        assert warm.outcomes[0].makespan == pytest.approx(opt.length)
        cache.close()

    def test_require_proven_resolves_stale_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c.db")
        item = make_item("x", v=10)
        # A tiny budget cannot prove optimality -> "budget" certificate.
        first = run_batch(
            [item], cache=cache, max_expansions=1, mode="auto"
        )
        assert first.outcomes[0].certificate == "budget"
        # Plain rerun serves the unproven entry...
        assert run_batch([item], cache=cache).outcomes[0].cached
        # ...but require_proven re-solves and upgrades it.
        fixed = run_batch(
            [item], cache=cache, require_proven=True, max_expansions=100_000
        )
        assert not fixed.outcomes[0].cached
        assert fixed.outcomes[0].certificate == "proven"
        assert cache.stale >= 1
        cache.close()


class TestWorkers:
    def test_multiprocess_matches_serial(self):
        items = [make_item(f"i{k}", seed=k) for k in range(3)]
        serial = run_batch(items, max_expansions=50_000)
        fanned = run_batch(items, workers=2, max_expansions=50_000)
        assert [o.makespan for o in serial.outcomes] == \
            pytest.approx([o.makespan for o in fanned.outcomes])
        assert all(o.certificate == "proven" for o in fanned.outcomes)

    def test_caller_provided_pool_is_reused_not_closed(self):
        """run_batch(pool=...) dispatches on the persistent pool and
        leaves its lifetime to the caller (the daemon's usage)."""
        from repro.parallel.mp_backend import SolverPool

        items = [make_item(f"p{k}", seed=k) for k in range(3)]
        serial = run_batch(items, max_expansions=50_000)
        with SolverPool(2) as pool:
            pool.warm()
            first = run_batch(items, pool=pool, max_expansions=50_000)
            second = run_batch(items, pool=pool, max_expansions=50_000)
            assert not pool.closed
        assert [o.makespan for o in first.outcomes] == \
            pytest.approx([o.makespan for o in serial.outcomes])
        assert [o.makespan for o in second.outcomes] == \
            pytest.approx([o.makespan for o in serial.outcomes])


class TestLoaders:
    def test_directory_of_graphs(self, tmp_path):
        for k in range(2):
            graph = paper_random_graph(
                PaperGraphSpec(num_nodes=6, ccr=1.0, seed=k)
            )
            save_graph_json(graph, tmp_path / f"g{k}.json")
        items = load_items(tmp_path, pes=3)
        assert [item.name for item in items] == ["g0", "g1"]
        assert all(item.system.num_pes == 3 for item in items)

    def test_jsonl_stream(self, tmp_path):
        graph = paper_random_graph(PaperGraphSpec(num_nodes=6, ccr=1.0, seed=3))
        lines = [
            json.dumps({"name": "j1", "graph": graph_to_dict(graph), "pes": 2}),
            "",  # blank lines are skipped
            json.dumps({"graph": graph_to_dict(graph)}),
        ]
        path = tmp_path / "req.jsonl"
        path.write_text("\n".join(lines))
        items = load_items(path)
        assert items[0].name == "j1" and items[0].system.num_pes == 2
        assert items[1].name == "line-3"  # default PEs: v
        assert items[1].system.num_pes == 6

    def test_empty_input_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_items(tmp_path)

    def test_suite_items(self):
        items = items_from_suite()
        assert len(items) == 18  # 3 CCRs x 6 default sizes
        assert all(isinstance(item, BatchItem) for item in items)


class TestReport:
    def test_render_and_dicts(self):
        report = run_batch([make_item("a", v=6)], max_expansions=50_000)
        text = report.render()
        assert "batch results" in text and "1 instances" in text
        row = report.outcomes[0].as_dict()
        assert row["name"] == "a" and len(row["assignment"]) == 6
        agg = report.as_dict()
        assert agg["instances"] == 1 and agg["instances_per_second"] > 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_batch([make_item("a")], mode="nope")


@pytest.mark.slow
class TestSolverWorkers:
    def test_solver_workers_reach_the_hda_engine(self):
        """`solver_workers > 1` must route a large exact solve through
        the multiprocess HDA* engine on the in-process path."""
        from repro.workloads.suite import paper_suite

        inst = paper_suite().get(0.1, 16)
        item = BatchItem(name="big", graph=inst.graph, system=inst.system)
        # portfolio mode: the exact stage always runs, and with workers
        # granted it must be the hda engine on a v > 14 instance.
        report = run_batch(
            [item], mode="portfolio", solver_workers=2, deadline=8.0,
            max_expansions=None,
        )
        out = report.outcomes[0]
        assert out.certificate == "proven"
        assert "hda" in out.algorithm
        # Cross-check against the engine called directly.  (Serial A*
        # is no baseline here: this instance's list bound is already
        # optimal and serial A* grinds the f == U plateau for minutes —
        # the exact behaviour the HDA* incumbent pruning eliminates.)
        direct = hda_astar_schedule(inst.graph, inst.system, workers=2)
        assert direct.optimal
        assert out.makespan == direct.length

    def test_solver_workers_on_small_instances_stay_serial(self):
        report = run_batch(
            [make_item("small", v=6)], mode="auto", solver_workers=2,
        )
        out = report.outcomes[0]
        assert "hda" not in out.algorithm
        assert out.certificate == "proven"
