"""Job lifecycle unit tests: admission, dedupe, cache, drain, failure.

These drive :class:`JobManager` directly on an event loop with a
thread-backed pool stand-in, so the state machine is tested without
sockets or process spawn.  The real process pool and HTTP layer are
covered by ``test_server.py``.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.io import graph_to_dict
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.service.cache import ResultCache
from repro.service.jobs import DONE, QUEUED, Draining, JobManager, QueueFull
from repro.system.processors import ProcessorSystem
from tests.service.test_fingerprint import permuted


class ThreadPool:
    """SolverPool stand-in: same interface, threads instead of processes."""

    def __init__(self, workers: int = 1):
        self.workers = workers
        self.executor = ThreadPoolExecutor(max_workers=workers)
        self.liveness_report = ""  # "" == live, like SolverPool.liveness

    def liveness(self):
        return self.liveness_report

    def close(self):
        self.executor.shutdown()


def request_obj(v: int = 8, seed: int = 1, pes: int = 3, **extra):
    graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=1.0, seed=seed))
    obj = {"graph": graph_to_dict(graph), "pes": pes,
           "max_expansions": 50_000}
    obj.update(extra)
    return obj


def make_manager(**kwargs):
    pool = ThreadPool(kwargs.pop("workers", 1))
    return JobManager(pool, **kwargs), pool


async def finish(manager, *jobs):
    for job in jobs:
        await asyncio.wait_for(job.done.wait(), timeout=60)


class TestSolveLifecycle:
    def test_submit_runs_to_done(self):
        async def scenario():
            manager, pool = make_manager()
            manager.start()
            job = manager.submit(request_obj(name="one"))
            assert job.state == QUEUED
            await finish(manager, job)
            assert job.state == DONE and job.via == "solve"
            assert job.result["makespan"] > 0
            assert len(job.result["assignment"]) == job.item.graph.num_nodes
            # The returned assignment must be a feasible schedule in the
            # requester's own node numbering.
            validate_schedule(Schedule(
                job.item.graph, job.item.system,
                {int(n): (int(pe), float(st))
                 for n, pe, st in job.result["assignment"]},
            ))
            assert manager.counters["completed"] == 1
            assert manager.counters["solved"] == 1
            assert sum(manager.engine_counts.values()) == 1
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_snapshot_shape(self):
        async def scenario():
            manager, pool = make_manager()
            manager.start()
            job = manager.submit(request_obj())
            await finish(manager, job)
            snap = job.snapshot()
            assert snap["status"] == "done"
            assert {"id", "name", "fingerprint", "submitted", "started",
                    "finished", "via", "result"} <= set(snap)
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_bad_mode_rejected_at_submit(self):
        manager, pool = make_manager()
        with pytest.raises(ValueError, match="mode"):
            manager.submit(request_obj(mode="nonsense"))
        pool.close()

    def test_option_bounds_validated_at_submit(self):
        """Request bodies cannot amplify resources or smuggle bad types
        into the pool worker — they fail fast at submit (HTTP 400)."""
        manager, pool = make_manager()
        with pytest.raises(ValueError, match="solver_workers"):
            manager.submit(request_obj(solver_workers=200))
        with pytest.raises(ValueError, match="deadline"):
            manager.submit(request_obj(deadline="5s"))
        with pytest.raises(ValueError, match="epsilon"):
            manager.submit(request_obj(epsilon=-0.5))
        with pytest.raises(ValueError, match="max_expansions"):
            manager.submit(request_obj(max_expansions=0))
        assert manager.counters["accepted"] == 0
        pool.close()

    def test_worker_failure_degrades_primary_and_followers(self, monkeypatch):
        """A worker exception no longer fails the job: the manager
        serves the list-schedule incumbent as a degraded answer (with
        the failure reason attached) to the primary and every
        follower."""
        async def scenario():
            manager, pool = make_manager()
            primary = manager.submit(request_obj(seed=5))
            follower = manager.submit(request_obj(seed=5))
            assert follower.via == "dedup"

            def boom(job):
                raise RuntimeError("worker exploded")

            monkeypatch.setattr("repro.service.jobs._worker_solve", boom)
            manager.start()
            await finish(manager, primary, follower)
            for job in (primary, follower):
                assert job.state == DONE
                assert job.result["certificate"] == "degraded"
                assert "worker exploded" in job.result["reason"]
            assert manager.counters["failed"] == 0
            assert manager.counters["degraded"] == 2
            assert manager.failures["worker_error"] == 1
            await manager.drain()
            pool.close()

        asyncio.run(scenario())


class TestDedupe:
    def test_mismatched_options_do_not_dedupe(self):
        """A request asking for different solver options (e.g. its own
        epsilon) must not inherit the in-flight twin's weaker result —
        it gets its own queue slot."""
        async def scenario():
            manager, pool = make_manager(workers=2)
            a = manager.submit(request_obj(seed=21))
            b = manager.submit(request_obj(seed=21, epsilon=0.0))
            assert b.via is None and manager.counters["dedup_fanout"] == 0
            # A third request matching b's options rides b.
            c = manager.submit(request_obj(seed=21, epsilon=0.0))
            assert c.via == "dedup"
            manager.start()
            await finish(manager, a, b, c)
            assert manager.counters["solved"] == 2
            assert b.result["makespan"] == pytest.approx(a.result["makespan"])
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_auto_cost_resolves_before_fingerprinting(self):
        """An "auto"-costed request must share its fingerprint (and
        therefore dedupe/followers/cache entries) with a request naming
        the resolved cost explicitly — resolution happens in prepare(),
        before hashing, not inside the solver."""
        async def scenario():
            from repro.service.portfolio import select_cost

            manager, pool = make_manager()
            obj = request_obj(seed=5, pes=2)  # 2 PEs: resolves "combined"
            graph = paper_random_graph(
                PaperGraphSpec(num_nodes=8, ccr=1.0, seed=5)
            )
            resolved = select_cost(graph, ProcessorSystem.fully_connected(2))
            assert resolved == "combined"
            a = manager.submit(dict(obj))
            b = manager.submit(dict(obj, cost=resolved))
            assert a.options["cost"] == resolved
            assert a.fingerprint == b.fingerprint
            assert b.via == "dedup"
            manager.start()
            await finish(manager, a, b)
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_follower_attaches_before_runners_start(self):
        async def scenario():
            manager, pool = make_manager()
            a = manager.submit(request_obj(seed=2))
            b = manager.submit(request_obj(seed=2))
            assert b.via == "dedup" and manager.counters["dedup_fanout"] == 1
            manager.start()
            await finish(manager, a, b)
            assert a.via == "solve" and b.via == "dedup"
            assert a.result["makespan"] == pytest.approx(b.result["makespan"])
            assert manager.counters["solved"] == 1
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_relabeled_twin_dedupes_via_fingerprint(self):
        async def scenario():
            manager, pool = make_manager()
            graph = paper_random_graph(
                PaperGraphSpec(num_nodes=9, ccr=1.0, seed=11))
            system = ProcessorSystem.fully_connected(3)
            obj = {"graph": graph_to_dict(graph), "pes": 3,
                   "max_expansions": 50_000}
            twin_obj = {"graph": graph_to_dict(permuted(graph, seed=13)),
                        "pes": 3, "max_expansions": 50_000}
            a = manager.submit(obj)
            b = manager.submit(twin_obj)
            assert a.fingerprint == b.fingerprint
            assert b.via == "dedup"
            manager.start()
            await finish(manager, a, b)
            # Fan-out must be feasible in the twin's own numbering.
            validate_schedule(Schedule(
                b.item.graph, system,
                {int(n): (int(pe), float(st))
                 for n, pe, st in b.result["assignment"]},
            ))
            assert a.result["makespan"] == pytest.approx(b.result["makespan"])
            await manager.drain()
            pool.close()

        asyncio.run(scenario())


class TestFaultTolerance:
    def test_completion_error_degrades_job_without_killing_runner(self, monkeypatch):
        """An exception while building the result must still answer
        that job (degraded, done event set) and leave the runner alive
        for the next one."""
        async def scenario():
            manager, pool = make_manager()
            bad = manager.submit(request_obj(seed=31))

            real_complete = manager._complete

            def explode(job, payload):
                raise RuntimeError("canonical mismatch")

            manager._complete = explode
            manager.start()
            await finish(manager, bad)
            assert bad.state == DONE
            assert bad.result["certificate"] == "degraded"
            assert "canonical mismatch" in bad.result["reason"]
            assert manager.failures["completion_error"] == 1
            # The runner survived: a subsequent job completes normally.
            manager._complete = real_complete
            good = manager.submit(request_obj(seed=32))
            await finish(manager, good)
            assert good.state == DONE
            assert good.result["certificate"] != "degraded"
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_broken_pool_is_rebuilt_and_serving_continues(self, monkeypatch):
        """A worker that dies mid-job (OOM kill) degrades only that
        job; the pool is replaced and later jobs solve normally."""
        import os

        from repro.parallel.mp_backend import SolverPool

        async def scenario(tmp_flag):
            pool = SolverPool(1)
            manager = JobManager(pool, max_expansions=50_000)
            monkeypatch.setattr(
                "repro.service.jobs._worker_solve", _crash_or_solve
            )
            os.environ["REPRO_TEST_CRASH_FLAG"] = tmp_flag
            open(tmp_flag, "w").close()
            manager.start()
            doomed = manager.submit(request_obj(seed=33))
            await finish(manager, doomed)
            assert doomed.state == DONE
            assert doomed.result["certificate"] == "degraded"
            assert manager.counters["pool_rebuilds"] == 1
            assert manager.failures["broken_pool"] == 1
            os.unlink(tmp_flag)  # next forked worker solves for real
            healthy = manager.submit(request_obj(seed=34))
            await finish(manager, healthy)
            assert healthy.state == DONE and healthy.via == "solve"
            await manager.drain()
            pool.close()

        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            asyncio.run(scenario(f"{tmp}/crash"))


def _crash_or_solve(job):
    """Worker-side helper: hard-exit while the flag file exists."""
    import os

    from repro.service import batch

    if os.path.exists(os.environ.get("REPRO_TEST_CRASH_FLAG", "")):
        os._exit(17)
    return batch._worker_solve(job)


class TestAdmission:
    def test_queue_full_raises_but_duplicates_still_ride(self):
        manager, pool = make_manager(queue_limit=1)
        first = manager.submit(request_obj(seed=1))
        with pytest.raises(QueueFull):
            manager.submit(request_obj(seed=2))
        assert manager.counters["rejected"] == 1
        # Dedupe sits in front of the queue: a twin of the queued job is
        # accepted even at capacity.
        rider = manager.submit(request_obj(seed=1))
        assert rider.via == "dedup"
        assert first.state == QUEUED
        pool.close()

    def test_rejected_job_not_pollable(self):
        manager, pool = make_manager(queue_limit=1)
        manager.submit(request_obj(seed=1))
        before = set(manager._jobs)
        with pytest.raises(QueueFull):
            manager.submit(request_obj(seed=2))
        assert set(manager._jobs) == before
        pool.close()


class TestCacheIntegration:
    def test_second_submit_served_from_cache(self):
        async def scenario():
            cache = ResultCache()
            manager, pool = make_manager(cache=cache)
            manager.start()
            a = manager.submit(request_obj(seed=3))
            await finish(manager, a)
            b = manager.submit(request_obj(seed=3))
            # Cache hits complete synchronously at submit.
            assert b.state == DONE and b.via == "cache"
            assert b.result["makespan"] == pytest.approx(a.result["makespan"])
            assert manager.counters["cache_hits"] == 1
            assert manager.counters["solved"] == 1
            await manager.drain()
            pool.close()

        asyncio.run(scenario())

    def test_require_proven_override_skips_budget_entries(self):
        async def scenario():
            cache = ResultCache()
            manager, pool = make_manager(cache=cache)
            manager.start()
            # A tiny expansion budget yields an unproven certificate.
            a = manager.submit(request_obj(seed=4, v=10, max_expansions=1))
            await finish(manager, a)
            assert a.result["certificate"] != "proven"
            b = manager.submit(request_obj(seed=4, v=10, require_proven=True,
                                           max_expansions=50_000))
            assert b.state == QUEUED  # stale entry not served
            await finish(manager, b)
            assert b.via == "solve" and b.result["certificate"] == "proven"
            await manager.drain()
            pool.close()

        asyncio.run(scenario())


class TestDrain:
    def test_drain_completes_accepted_then_rejects(self):
        async def scenario():
            manager, pool = make_manager(workers=2, queue_limit=16)
            jobs = [manager.submit(request_obj(seed=s)) for s in range(5)]
            manager.start()
            await manager.drain()
            assert all(j.state == DONE for j in jobs)
            with pytest.raises(Draining):
                manager.submit(request_obj(seed=99))
            pool.close()

        asyncio.run(scenario())

    def test_metrics_shape(self):
        async def scenario():
            manager, pool = make_manager()
            manager.start()
            job = manager.submit(request_obj())
            await finish(manager, job)
            m = manager.metrics()
            assert m["queue_depth"] == 0
            assert m["jobs"]["submitted"] == 1
            assert m["jobs"]["completed"] == 1
            assert "cache_hit_rate" in m and "engines" in m
            assert m["pool_workers"] == 1
            await manager.drain()
            assert manager.metrics()["draining"] is True
            pool.close()

        asyncio.run(scenario())


class TestHistoryEviction:
    def test_finished_jobs_evicted_beyond_limit(self):
        async def scenario():
            manager, pool = make_manager(history_limit=2)
            manager.start()
            jobs = [manager.submit(request_obj(seed=s)) for s in range(4)]
            for job in jobs:
                await finish(manager, job)
            # One more submission triggers eviction of old finished jobs.
            last = manager.submit(request_obj(seed=9))
            await finish(manager, last)
            assert manager.get(jobs[0].id) is None
            assert manager.get(last.id) is last
            await manager.drain()
            pool.close()

        asyncio.run(scenario())


class TestFleetReadiness:
    """The JobManager surface the fleet router depends on: deep
    checks, the adaptive Retry-After hint, and dedupe-follower
    visibility."""

    def test_deep_checks_healthy(self):
        async def scenario():
            manager, pool = make_manager()
            checks = await manager.deep_checks()
            assert checks == {"pool": "ok", "cache": "ok"}
            pool.close()

        asyncio.run(scenario())

    def test_deep_checks_report_a_sick_pool(self):
        async def scenario():
            manager, pool = make_manager()
            pool.liveness_report = "1 of 2 worker processes dead"
            checks = await manager.deep_checks()
            assert checks["pool"] == "1 of 2 worker processes dead"
            pool.close()

        asyncio.run(scenario())

    def test_deep_checks_report_a_broken_cache(self):
        from repro.service.shardcache import CacheBackend, CacheBackendError

        class DeadStore(CacheBackend):
            kind = "dead"

            def load(self, fingerprint):
                return None

            def store(self, entry):
                raise CacheBackendError("disk gone")

            def count(self):
                return 0

            def contains(self, fingerprint):
                return False

            def probe(self):
                raise CacheBackendError("disk gone")

        async def scenario():
            pool = ThreadPool()
            manager = JobManager(pool, cache=ResultCache(DeadStore()))
            checks = await manager.deep_checks()
            assert checks["pool"] == "ok"
            assert "disk gone" in checks["cache"]
            pool.close()

        asyncio.run(scenario())

    def test_retry_after_hint_scales_with_backlog(self):
        manager, pool = make_manager()
        assert manager.retry_after_hint() == 1  # idle: the floor
        for seed in range(4):
            manager.submit(request_obj(seed=seed))  # not started: queued
        manager._solve_ewma = 5.0
        # 4 pending x 5s each / 1 runner = 20s.
        assert manager.retry_after_hint() == 20
        manager._solve_ewma = 100.0
        assert manager.retry_after_hint() == 30  # clamped to the cap
        pool.close()

    def test_dedup_followers_counted_separately_from_queue(self):
        manager, pool = make_manager()
        first = manager.submit(request_obj(seed=3))
        follower = manager.submit(request_obj(seed=3))  # same fingerprint
        assert follower.fingerprint == first.fingerprint
        assert manager.followers_waiting() == 1
        m = manager.metrics()
        assert m["dedup_followers"] == 1
        assert m["queue_depth"] == 1  # uniques only
        pool.close()

    def test_shard_id_labels_metrics(self):
        pool = ThreadPool()
        manager = JobManager(pool, shard_id="s7")
        assert manager.metrics()["shard"] == "s7"
        assert "shard" not in make_manager()[0].metrics()
        pool.close()
