"""The fleet router: ring, breaker, and routing behavior.

The routing tests run the real :class:`ShardRouter` against in-file
*stub shards* — tiny asyncio HTTP servers with scripted behavior — so
failover, breaker gating, drain, and id rewriting are exercised over
real sockets without paying for solver pools.  One slow test at the
end routes into genuine :class:`SolverServer` daemons.

Async scenarios follow the repo idiom (see ``test_jobs.py``): plain
test functions running one ``asyncio.run(scenario())`` each.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import Counter

import pytest

from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.io import graph_to_dict
from repro.service import httpwire
from repro.service.router import CircuitBreaker, HashRing, Shard, ShardRouter

# ---------------------------------------------------------------------------
# HashRing


def uniform_keys(count: int) -> list[str]:
    """Fingerprint-shaped keys (the real ones are BLAKE2b hex)."""
    return [
        hashlib.blake2b(str(i).encode(), digest_size=16).hexdigest()
        for i in range(count)
    ]


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = uniform_keys(300)
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # construction order irrelevant
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_all_members_get_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        owners = Counter(ring.owner(k) for k in uniform_keys(2000))
        assert set(owners) == {"s0", "s1", "s2", "s3"}
        assert min(owners.values()) > 0

    def test_removal_remaps_only_the_removed_segment(self):
        keys = uniform_keys(1000)
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.owner(k) for k in keys}
        ring.remove("s1")
        moved = [k for k in keys if before[k] != "s1" and ring.owner(k) != before[k]]
        assert moved == []  # consistent hashing's minimal-remap property

    def test_rejoin_restores_exact_ownership(self):
        keys = uniform_keys(500)
        ring = HashRing(["s0", "s1", "s2"])
        before = {k: ring.owner(k) for k in keys}
        ring.remove("s2")
        ring.add("s2")
        assert {k: ring.owner(k) for k in keys} == before

    def test_preference_covers_all_members_owner_first(self):
        ring = HashRing(["s0", "s1", "s2"])
        for key in uniform_keys(50):
            pref = ring.preference(key)
            assert pref[0] == ring.owner(key)
            assert sorted(pref) == ["s0", "s1", "s2"]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("ab" * 16) is None
        assert ring.preference("ab" * 16) == []


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("reset_timeout", 1.0)
        kwargs.setdefault("max_reset_timeout", 4.0)
        return CircuitBreaker(clock=lambda: self.now, **kwargs)

    def test_trips_after_consecutive_failures(self):
        breaker = self.make()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_allows_exactly_one_trial(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 1.0
        assert breaker.allow()  # the trial
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # no second concurrent trial

    def test_trial_success_closes(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trial_failure_reopens_with_doubled_timeout(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()  # open until t=1, next timeout 2
        self.now = 1.0
        assert breaker.allow()
        breaker.record_failure()  # re-open until t=3
        self.now = 2.9
        assert not breaker.allow()
        self.now = 3.0
        assert breaker.allow()

    def test_timeout_is_capped(self):
        breaker = self.make()
        for _ in range(6):  # trip repeatedly: 1, 2, 4, 4, ... capped
            breaker.record_failure()
            breaker.record_failure()
            self.now += 100.0
            assert breaker.allow()
        breaker.record_failure()  # re-open from half-open
        assert breaker.seconds_until_trial() <= 4.0

    def test_success_resets_the_timeout_ladder(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 1.0
        assert breaker.allow()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        # Back to the initial 1s period, not the doubled one.
        assert breaker.seconds_until_trial() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Shard specs


class TestShardSpec:
    def test_from_spec_with_name(self):
        shard = Shard.from_spec("127.0.0.1:8081=alpha", 0)
        assert (shard.name, shard.host, shard.port) == ("alpha", "127.0.0.1", 8081)

    def test_from_spec_default_name_is_positional(self):
        assert Shard.from_spec("localhost:9000", 3).name == "shard3"

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            Shard.from_spec("no-port", 0)

    def test_colon_in_name_rejected(self):
        with pytest.raises(ValueError, match="shard name"):
            Shard("a:b", "h", 1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardRouter(["h:1=x", "h:2=x"])

    def test_router_needs_a_shard(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardRouter([])


# ---------------------------------------------------------------------------
# Routing over stub shards


class StubShard:
    """A scripted shard: ``behavior(method, path, body)`` returns
    ``(status, payload, extra_headers)`` — or ``None`` to slam the
    connection shut (the crashed-shard transport error)."""

    def __init__(self, behavior):
        self.behavior = behavior
        self.requests: list[tuple[str, str]] = []
        self.port = 0
        self._server: asyncio.AbstractServer | None = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        method, path, body = await httpwire.read_request(reader)
        self.requests.append((method, path))
        out = self.behavior(method, path, body)
        if out is None:
            writer.close()
            return
        status, payload, extra = out
        await httpwire.deliver_response(
            writer, httpwire.render_response(status, payload, extra_headers=extra)
        )


def ok_shard(tag: str):
    """A healthy stub: answers solves and job polls with done jobs."""

    def behavior(method, path, body):
        if path == "/v1/solve":
            return 200, {"id": f"{tag}-job", "status": "done",
                         "result": {"makespan": 1.0}}, ""
        if path.startswith("/v1/jobs/"):
            return 200, {"id": path.rsplit("/", 1)[1], "status": "done"}, ""
        if path.startswith("/metrics"):
            return 200, {"queue_depth": 0, "dedup_followers": 0,
                         "running": 0, "in_flight": 0}, ""
        return 200, {"status": "ok"}, ""

    return behavior


def solve_body() -> bytes:
    graph = paper_random_graph(PaperGraphSpec(num_nodes=8, ccr=1.0, seed=1))
    return json.dumps({"graph": graph_to_dict(graph), "pes": 2}).encode()


async def make_router(*stubs: StubShard, **kwargs) -> ShardRouter:
    kwargs.setdefault("probe_interval", 0)  # probes off: deterministic
    kwargs.setdefault("retry_base", 0.001)
    router = ShardRouter(
        [Shard(f"s{i}", "127.0.0.1", stub.port) for i, stub in enumerate(stubs)],
        port=0,
        **kwargs,
    )
    await router.start()
    return router


async def solve_via(router: ShardRouter, body: bytes | None = None):
    return await httpwire.fetch(
        "127.0.0.1", router.port, "POST", "/v1/solve",
        body if body is not None else solve_body(),
    )


class TestRouting:
    def test_solve_routed_and_id_prefixed(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0, \
                    StubShard(ok_shard("b")) as s1:
                router = await make_router(s0, s1)
                try:
                    status, _, data = await solve_via(router)
                    assert status == 200
                    out = json.loads(data)
                    shard, _, raw = out["id"].partition(":")
                    assert shard in ("s0", "s1") and raw.endswith("-job")
                    assert out["shard"] == shard
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_duplicates_route_to_the_same_shard(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0, \
                    StubShard(ok_shard("b")) as s1:
                router = await make_router(s0, s1)
                try:
                    first = json.loads((await solve_via(router))[2])
                    second = json.loads((await solve_via(router))[2])
                    assert first["shard"] == second["shard"]
                    # Exactly one stub saw traffic.
                    assert bool(s0.requests) != bool(s1.requests)
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_dead_owner_fails_over(self):
        async def scenario():
            async with StubShard(lambda *a: None) as dead, \
                    StubShard(ok_shard("b")) as live:
                router = await make_router(dead, live)
                try:
                    status, _, data = await solve_via(router)
                    assert status == 200
                    assert json.loads(data)["shard"] == "s1"
                    m = router.metrics()
                    # Either s0 owned the key (one failover) or s1 did
                    # (clean route); run both fingerprints to force at
                    # least one failover across the pair.
                    status2, _, data2 = await solve_via(
                        router, solve_body_for_owner(router, "s0"))
                    assert status2 == 200
                    assert json.loads(data2)["shard"] == "s1"
                    m = router.metrics()
                    assert m["routing"]["failovers"] >= 1
                    assert m["shards"]["s0"]["errors"] >= 1
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_all_shards_dead_is_a_gateway_error(self):
        async def scenario():
            async with StubShard(lambda *a: None) as s0, \
                    StubShard(lambda *a: None) as s1:
                router = await make_router(s0, s1)
                try:
                    status, headers, data = await solve_via(router)
                    assert status == 502
                    assert "unreachable" in json.loads(data)["error"]
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_breaker_opens_and_unroutable_is_503_with_retry_after(self):
        async def scenario():
            async with StubShard(lambda *a: None) as s0:
                router = await make_router(s0, failure_threshold=2)
                try:
                    await solve_via(router)
                    await solve_via(router)  # second failure trips it
                    assert (router.shards["s0"].breaker.state
                            == CircuitBreaker.OPEN)
                    status, headers, data = await solve_via(router)
                    assert status == 503
                    assert "no shard available" in json.loads(data)["error"]
                    assert int(headers["retry-after"]) >= 1
                    assert router.metrics()["routing"]["no_shard"] == 1
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_429_propagates_without_failover(self):
        async def scenario():
            behavior = lambda *a: (429, {"error": "queue full"},
                                   "Retry-After: 9\r\n")
            async with StubShard(behavior) as s0, \
                    StubShard(behavior) as s1:
                router = await make_router(s0, s1)
                try:
                    status, headers, _ = await solve_via(router)
                    assert status == 429
                    assert headers["retry-after"] == "9"
                    # Backpressure is the owner's to report: exactly one
                    # shard was asked, no spill onto its neighbor.
                    assert len(s0.requests) + len(s1.requests) == 1
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_shard_5xx_fails_over_and_feeds_the_breaker(self):
        async def scenario():
            async with StubShard(
                    lambda *a: (503, {"error": "draining"}, "")) as drainer, \
                    StubShard(ok_shard("b")) as live:
                router = await make_router(drainer, live)
                try:
                    status, _, data = await solve_via(
                        router, solve_body_for_owner(router, "s0"))
                    assert status == 200
                    assert json.loads(data)["shard"] == "s1"
                    assert router.shards["s0"].breaker.consecutive_failures >= 1
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_bad_body_is_a_400_not_a_route(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0:
                router = await make_router(s0)
                try:
                    status, _, data = await solve_via(router, b"{not json")
                    assert status == 400
                    status, _, data = await solve_via(
                        router, json.dumps({"graph": {"schema": 99}}).encode())
                    assert status == 400
                    assert s0.requests == []  # never forwarded
                    assert router.metrics()["routing"]["bad_requests"] == 2
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_job_poll_routed_by_prefix(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0, \
                    StubShard(ok_shard("b")) as s1:
                router = await make_router(s0, s1)
                try:
                    status, _, data = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/v1/jobs/s1:j7")
                    assert status == 200
                    out = json.loads(data)
                    assert out["id"] == "s1:j7" and out["shard"] == "s1"
                    assert ("GET", "/v1/jobs/j7") in s1.requests
                    assert s0.requests == []
                    status, _, _ = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/v1/jobs/nope:j7")
                    assert status == 404
                    status, _, _ = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/v1/jobs/unprefixed")
                    assert status == 404
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_drain_and_rejoin_move_only_traffic_not_state(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0, \
                    StubShard(ok_shard("b")) as s1:
                router = await make_router(s0, s1)
                try:
                    owner = json.loads((await solve_via(router))[2])["shard"]
                    other = "s1" if owner == "s0" else "s0"
                    status, _, data = await httpwire.fetch(
                        "127.0.0.1", router.port, "POST",
                        f"/admin/shards/{owner}/drain")
                    assert status == 200
                    assert json.loads(data)["ring_members"] == [other]
                    rerouted = json.loads((await solve_via(router))[2])["shard"]
                    assert rerouted == other
                    status, _, _ = await httpwire.fetch(
                        "127.0.0.1", router.port, "POST",
                        f"/admin/shards/{owner}/rejoin")
                    assert status == 200
                    back = json.loads((await solve_via(router))[2])["shard"]
                    assert back == owner  # exact segment restored
                    status, _, _ = await httpwire.fetch(
                        "127.0.0.1", router.port, "POST",
                        "/admin/shards/ghost/drain")
                    assert status == 404
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_healthz_deep_reflects_routability(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0:
                router = await make_router(s0, failure_threshold=1)
                try:
                    status, _, data = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/healthz?deep=1")
                    assert status == 200
                    router.shards["s0"].breaker.record_failure()
                    status, _, data = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/healthz?deep=1")
                    assert status == 503
                    assert json.loads(data)["status"] == "unhealthy"
                    # Shallow healthz stays 200: the router itself is up.
                    status, _, _ = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/healthz")
                    assert status == 200
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_health_probe_closes_an_open_breaker(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0:
                router = await make_router(s0)
                try:
                    breaker = router.shards["s0"].breaker
                    for _ in range(3):
                        breaker.record_failure()
                    assert breaker.state == CircuitBreaker.OPEN
                    await router._probe(router.shards["s0"])
                    assert breaker.state == CircuitBreaker.CLOSED
                    assert router.shards["s0"].healthy is True
                    assert ("GET", "/healthz?deep=1") in s0.requests
                finally:
                    await router.drain()

        asyncio.run(scenario())

    def test_metrics_shapes(self):
        async def scenario():
            async with StubShard(ok_shard("a")) as s0:
                router = await make_router(s0)
                try:
                    await solve_via(router)
                    status, _, data = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET", "/metrics")
                    assert status == 200
                    m = json.loads(data)
                    assert {"uptime_seconds", "draining", "routing",
                            "shards", "ring"} <= set(m)
                    assert m["shards"]["s0"]["forwarded"] == 1
                    status, _, data = await httpwire.fetch(
                        "127.0.0.1", router.port, "GET",
                        "/metrics?format=prometheus")
                    assert status == 200
                    text = data.decode()
                    assert 'repro_router_shard_up{shard="s0"} 1' in text
                    assert "repro_router_requests_total 1" in text
                finally:
                    await router.drain()

        asyncio.run(scenario())


def solve_body_for_owner(router: ShardRouter, want: str) -> bytes:
    """A solve body whose fingerprint the ring assigns to ``want``."""
    for seed in range(200):
        graph = paper_random_graph(
            PaperGraphSpec(num_nodes=8, ccr=1.0, seed=seed))
        body = {"graph": graph_to_dict(graph), "pes": 2}
        fingerprint = router._routing_key(body)
        if router.ring.owner(fingerprint) == want:
            return json.dumps(body).encode()
    raise AssertionError(f"no seed owned by {want} in 200 tries")


# ---------------------------------------------------------------------------
# End to end against real daemons (slow tier)


@pytest.mark.slow
class TestRouterOverRealShards:
    def test_solve_and_poll_through_the_fleet(self, tmp_path):
        from repro.service.client import ServerClient
        from repro.service.server import SolverServer

        shards = [
            SolverServer(port=0, solver_workers=1, queue_limit=8,
                         max_expansions=50_000, shard_id=f"s{i}",
                         cache=f"shared:{tmp_path / 'fleet.db'}")
            for i in range(2)
        ]
        threads = [s.serve_in_thread() for s in shards]
        router = ShardRouter(
            [Shard(f"s{i}", s.host, s.port) for i, s in enumerate(shards)],
            port=0, probe_interval=0.2,
        )
        router_thread = router.serve_in_thread()
        try:
            client = ServerClient(port=router.port)
            graph = paper_random_graph(
                PaperGraphSpec(num_nodes=9, ccr=1.0, seed=3))
            out = client.solve(graph, pes=4)
            assert out["status"] == "done"
            shard_name, _, _ = out["id"].partition(":")
            assert shard_name in ("s0", "s1")
            # Async path: submit, then poll through the router.
            job_id = client.submit(graph, pes=4)
            done = client.wait(job_id, timeout=120)
            assert done["status"] == "done"
            assert (done["result"]["makespan"]
                    == out["result"]["makespan"])
        finally:
            router.shutdown()
            router_thread.join(timeout=30)
            for shard in shards:
                shard.shutdown()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
