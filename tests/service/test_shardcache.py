"""The pluggable cache-backend layer under :class:`ResultCache`.

The fleet mode leans on two properties tested here: backend selection
via the one-string spec grammar (``repro serve --cache``), and the
``shared:`` SQLite mode letting several shard processes read each
other's results — failover replays must warm-hit on the substitute
shard.
"""

from __future__ import annotations

import multiprocessing as mp
import sqlite3

import pytest

from repro.service.cache import ResultCache
from repro.service.shardcache import (
    CacheBackend,
    CacheBackendError,
    CacheEntry,
    SQLiteBackend,
    backend_from_spec,
)


def entry_for(fp: str, makespan: float = 10.0, proven: bool = True):
    return CacheEntry(
        fingerprint=fp,
        assignment=((0, 0.0),),
        makespan=makespan,
        certificate="proven" if proven else "epsilon",
        bound=makespan if proven else makespan - 1,
        algorithm="astar",
        stats={"expanded": 1},
    )


class TestSpecGrammar:
    def test_none_and_memory_mean_no_backend(self):
        assert backend_from_spec(None) is None
        assert backend_from_spec("") is None
        assert backend_from_spec("memory") is None

    def test_path_makes_private_sqlite(self, tmp_path):
        backend = backend_from_spec(tmp_path / "c.db")
        try:
            assert isinstance(backend, SQLiteBackend)
            assert not backend.shared
        finally:
            backend.close()

    def test_shared_prefix_makes_shared_sqlite(self, tmp_path):
        backend = backend_from_spec(f"shared:{tmp_path / 'c.db'}")
        try:
            assert isinstance(backend, SQLiteBackend)
            assert backend.shared
        finally:
            backend.close()

    def test_bare_shared_prefix_rejected(self):
        with pytest.raises(ValueError, match="shared:"):
            backend_from_spec("shared:")

    def test_backend_instance_passes_through(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        try:
            assert backend_from_spec(backend) is backend
        finally:
            backend.close()


class TestSQLiteBackend:
    def test_round_trip(self, tmp_path):
        with SQLiteBackend(tmp_path / "c.db") as backend:
            entry = entry_for("ab" * 16)
            backend.store(entry)
            got = backend.load(entry.fingerprint)
            assert got is not None and got.makespan == 10.0
            assert backend.count() == 1
            assert backend.contains(entry.fingerprint)
            assert not backend.contains("cd" * 16)

    def test_probe_round_trips_a_write(self, tmp_path):
        with SQLiteBackend(tmp_path / "c.db") as backend:
            backend.probe()  # no exception == writable

    def test_probe_after_close_raises(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        backend.close()
        assert backend.closed
        with pytest.raises(CacheBackendError):
            backend.probe()

    def test_shared_mode_uses_wal(self, tmp_path):
        with SQLiteBackend(tmp_path / "c.db", shared=True) as backend:
            mode = backend.connection.execute(
                "PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"

    def test_two_connections_see_each_others_writes(self, tmp_path):
        """The shared-mode contract inside one process: a second
        backend on the same file reads the first one's stores."""
        path = tmp_path / "c.db"
        with SQLiteBackend(path, shared=True) as writer, \
                SQLiteBackend(path, shared=True) as reader:
            writer.store(entry_for("ab" * 16, makespan=7.0))
            got = reader.load("ab" * 16)
            assert got is not None and got.makespan == 7.0


def _store_in_child(path: str, fp: str) -> None:
    with SQLiteBackend(path, shared=True) as backend:
        backend.store(entry_for(fp, makespan=3.0))


class TestSharedAcrossProcesses:
    def test_child_process_write_is_visible(self, tmp_path):
        """The actual fleet topology: another *process* stores a
        result; this process's read-through cache serves it as a hit."""
        path = tmp_path / "fleet.db"
        fp = "12" * 16
        ctx = mp.get_context("spawn")
        child = ctx.Process(target=_store_in_child, args=(str(path), fp))
        child.start()
        child.join(60)
        assert child.exitcode == 0
        with ResultCache(f"shared:{path}") as cache:
            got = cache.get(fp)
            assert got is not None and got.makespan == 3.0
            assert cache.counters()["hits"] == 1


class TestResultCacheOverBackends:
    def test_cache_accepts_backend_instance(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        with ResultCache(backend) as cache:
            cache.put(entry_for("ef" * 16))
            assert cache.get("ef" * 16) is not None
        assert backend.closed  # cache owns and closes its backend

    def test_cache_shared_spec_repr_mentions_shared(self, tmp_path):
        with ResultCache(f"shared:{tmp_path / 'c.db'}") as cache:
            assert "shared" in repr(cache)

    def test_memory_tier_serves_when_backend_breaks(self, tmp_path):
        """A backend that starts failing costs durability, not
        correctness: entries admitted to memory keep being served."""

        class Flaky(CacheBackend):
            kind = "flaky"
            broken = False

            def load(self, fingerprint):
                if self.broken:
                    raise CacheBackendError("backend offline")
                return None

            def store(self, entry):
                if self.broken:
                    raise CacheBackendError("backend offline")

            def count(self):
                return 0

            def contains(self, fingerprint):
                return False

        backend = Flaky()
        cache = ResultCache(backend)
        cache.put(entry_for("aa" * 16))
        backend.broken = True
        cache.put(entry_for("bb" * 16))  # store fails -> stale, no raise
        assert cache.get("aa" * 16) is not None
        assert cache.get("bb" * 16) is not None
        assert cache.counters()["stale"] >= 1

    def test_undecodable_row_is_a_miss(self, tmp_path):
        path = tmp_path / "c.db"
        with SQLiteBackend(path) as backend:
            backend.store(entry_for("cd" * 16))
            conn = sqlite3.connect(path)
            conn.execute("UPDATE results SET payload = 'not json'")
            conn.commit()
            conn.close()
            assert backend.load("cd" * 16) is None
