"""Unit tests for repro.util.rng."""

from repro.util.rng import RngStream, spawn_streams


class TestRngStream:
    def test_deterministic_same_seed(self):
        a = RngStream(42)
        b = RngStream(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_diverge(self):
        a = RngStream(1)
        b = RngStream(2)
        assert [a.randint(0, 10_000) for _ in range(8)] != [
            b.randint(0, 10_000) for _ in range(8)
        ]

    def test_uniform_int_mean_positive(self):
        rng = RngStream(0)
        xs = [rng.uniform_int_mean(40) for _ in range(500)]
        assert all(x >= 1 for x in xs)

    def test_uniform_int_mean_approximates_mean(self):
        rng = RngStream(7)
        xs = [rng.uniform_int_mean(40) for _ in range(5000)]
        assert 37 < sum(xs) / len(xs) < 43

    def test_uniform_int_small_mean(self):
        rng = RngStream(0)
        xs = [rng.uniform_int_mean(1.0) for _ in range(100)]
        assert all(x >= 1 for x in xs)

    def test_uniform_ints_vectorised_matches_range(self):
        rng = RngStream(3)
        xs = rng.uniform_ints_mean(10, size=1000)
        assert xs.min() >= 1
        assert xs.max() <= 19

    def test_randint_bounds_inclusive(self):
        rng = RngStream(11)
        xs = {rng.randint(2, 4) for _ in range(200)}
        assert xs == {2, 3, 4}

    def test_random_unit_interval(self):
        rng = RngStream(5)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_shuffle_permutes(self):
        rng = RngStream(9)
        xs = list(range(20))
        shuffled = list(xs)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == xs

    def test_choice_without_replacement(self):
        rng = RngStream(13)
        picked = rng.choice(range(10), size=5, replace=False)
        assert len(set(int(x) for x in picked)) == 5

    def test_spawn_is_stable(self):
        a = RngStream(42).spawn("child")
        b = RngStream(42).spawn("child")
        assert a.randint(0, 10**6) == b.randint(0, 10**6)

    def test_spawn_differs_from_parent(self):
        parent = RngStream(42)
        child = parent.spawn("x")
        assert parent.randint(0, 10**9) != child.randint(0, 10**9)


class TestSpawnStreams:
    def test_named_streams_independent(self):
        streams = spawn_streams(0, ["graphs", "costs"])
        a = [streams["graphs"].randint(0, 10**6) for _ in range(5)]
        b = [streams["costs"].randint(0, 10**6) for _ in range(5)]
        assert a != b

    def test_reproducible_across_calls(self):
        s1 = spawn_streams(123, ["x"])["x"]
        s2 = spawn_streams(123, ["x"])["x"]
        assert s1.randint(0, 10**9) == s2.randint(0, 10**9)

    def test_master_seed_matters(self):
        s1 = spawn_streams(1, ["x"])["x"]
        s2 = spawn_streams(2, ["x"])["x"]
        assert s1.randint(0, 10**9) != s2.randint(0, 10**9)
