"""Unit tests for repro.util.timing."""

import time

from repro.util.timing import Budget, Timer


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_unused_timer_elapsed_zero(self):
        assert Timer().elapsed == 0.0

    def test_running_elapsed_grows(self):
        with Timer() as t:
            first = t.elapsed
            time.sleep(0.01)
            assert t.elapsed > first

    def test_reentry_resets(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed <= first + 1.0  # fresh measurement, not cumulative


class TestBudget:
    def test_unlimited_never_trips(self):
        b = Budget.unlimited()
        b.start()
        assert not b.exhausted(10**9, 10**9)

    def test_expansion_limit(self):
        b = Budget(max_expanded=10)
        b.start()
        assert not b.exhausted(9, 0)
        assert b.exhausted(10, 0)

    def test_generation_limit(self):
        b = Budget(max_generated=5)
        b.start()
        assert not b.exhausted(0, 4)
        assert b.exhausted(0, 5)

    def test_time_limit_sampled(self):
        b = Budget(max_seconds=0.0, time_check_interval=1)
        b.start()
        time.sleep(0.001)
        assert b.exhausted(0, 0)

    def test_expired_budget_trips_on_first_check(self):
        # Regression (ISSUE 3): a stage handed an already-expired
        # deadline remainder must stop before its first expansion, not
        # after a whole sampling window of overrun.
        b = Budget(max_seconds=0.0, time_check_interval=1000)
        b.start()
        assert b.time_exhausted()

    def test_time_check_interval_skips_between_samples(self):
        b = Budget(max_seconds=0.0, time_check_interval=1000)
        b.start()
        b.time_exhausted()  # first check: clock consulted
        # Checks 2..999 short-circuit without a clock read.
        assert not b.time_exhausted()

    def test_combined_any_trips(self):
        b = Budget(max_expanded=1, max_generated=100)
        b.start()
        assert b.exhausted(1, 0)
