"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import format_cell, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "—"

    def test_float_formatting(self):
        assert format_cell(3.14159) == "3.142"

    def test_custom_float_fmt(self):
        assert format_cell(3.14159, "{:.1f}") == "3.1"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert set(out.splitlines()[1]) == {"="}

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_column_widths_accommodate_cells(self):
        out = render_table(["h"], [["a-very-long-cell"]])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("a-very-long-cell")

    def test_right_alignment(self):
        out = render_table(["name", "val"], [["x", 1], ["y", 22]])
        rows = out.splitlines()[2:]
        # Numbers right-aligned: the last char of both rows is a digit.
        assert rows[0].rstrip()[-1] == "1"
        assert rows[1].rstrip()[-1] == "2"

    def test_none_cells_render(self):
        out = render_table(["a"], [[None]])
        assert "—" in out

    def test_left_alignment_mode(self):
        out = render_table(
            ["name", "val"], [["x", 1], ["y", 22]], align_right=False
        )
        rows = out.splitlines()[2:]
        # Left-aligned: both numbers start at the same column.
        assert rows[0].index("1") == rows[1].index("22")

    def test_custom_float_fmt_applies_to_table(self):
        out = render_table(["v"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out
        assert "1.235" not in out
