"""Unit tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import OnlineStats, geometric_mean, summarize


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == 5.0
        assert s.max == 5.0

    def test_known_values(self):
        s = OnlineStats()
        s.extend([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.variance == pytest.approx(4.0)
        assert s.stdev == pytest.approx(2.0)

    def test_min_max(self):
        s = OnlineStats()
        s.extend([3.0, -1.0, 7.0])
        assert s.min == -1.0
        assert s.max == 7.0


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.n == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.min == 1.0
        assert summary.max == 3.0

    def test_empty_iterable(self):
        summary = summarize([])
        assert summary.n == 0


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)


@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
def test_online_matches_two_pass(xs):
    s = OnlineStats()
    s.extend(xs)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
    assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-4)
    assert math.isclose(s.min, min(xs))
    assert math.isclose(s.max, max(xs))
