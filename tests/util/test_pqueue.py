"""Unit tests for repro.util.pqueue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.pqueue import AddressablePQ, LazyPQ


class TestLazyPQ:
    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            LazyPQ().pop()

    def test_empty_peek_raises(self):
        with pytest.raises(IndexError):
            LazyPQ().peek()

    def test_fifo_on_ties(self):
        pq = LazyPQ()
        pq.push("a", 1)
        pq.push("b", 1)
        pq.push("c", 1)
        assert [pq.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_priority_order(self):
        pq = LazyPQ()
        for item, pri in [("c", 3), ("a", 1), ("b", 2)]:
            pq.push(item, pri)
        assert [pq.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_len_tracks_live(self):
        pq = LazyPQ()
        pq.push_keyed("k1", "x", 5)
        pq.push_keyed("k2", "y", 6)
        assert len(pq) == 2
        pq.remove_keyed("k1")
        assert len(pq) == 1
        assert pq.pop() == ("y", 6)
        assert not pq

    def test_keyed_replacement(self):
        pq = LazyPQ()
        pq.push_keyed("k", "old", 10)
        pq.push_keyed("k", "new", 1)
        item, pri = pq.pop()
        assert (item, pri) == ("new", 1)
        assert len(pq) == 0

    def test_remove_missing_key_is_noop(self):
        pq = LazyPQ()
        pq.remove_keyed("ghost")
        assert len(pq) == 0

    def test_peek_does_not_remove(self):
        pq = LazyPQ()
        pq.push("a", 1)
        assert pq.peek() == ("a", 1)
        assert len(pq) == 1

    def test_compact_preserves_content(self):
        pq = LazyPQ()
        for i in range(20):
            pq.push_keyed(i, f"item{i}", i)
        for i in range(0, 20, 2):
            pq.remove_keyed(i)
        pq.compact()
        assert [pq.pop()[0] for _ in range(len(pq))] == [
            f"item{i}" for i in range(1, 20, 2)
        ]

    def test_drain(self):
        pq = LazyPQ()
        for i in [5, 1, 3]:
            pq.push(i, i)
        assert [x for x, _ in pq.drain()] == [1, 3, 5]

    def test_min_priority(self):
        pq = LazyPQ()
        pq.push("x", 7)
        pq.push("y", 3)
        assert pq.min_priority() == 3


class TestAddressablePQ:
    def test_push_pop(self):
        pq = AddressablePQ()
        pq.push("a", 2)
        pq.push("b", 1)
        assert pq.pop() == ("b", 1)
        assert pq.pop() == ("a", 2)

    def test_duplicate_push_raises(self):
        pq = AddressablePQ()
        pq.push("a", 1)
        with pytest.raises(KeyError):
            pq.push("a", 2)

    def test_update_decrease(self):
        pq = AddressablePQ()
        pq.push("a", 10)
        pq.push("b", 5)
        pq.update("a", 1)
        assert pq.pop()[0] == "a"

    def test_update_increase(self):
        pq = AddressablePQ()
        pq.push("a", 1)
        pq.push("b", 5)
        pq.update("a", 10)
        assert pq.pop()[0] == "b"

    def test_push_or_update(self):
        pq = AddressablePQ()
        pq.push_or_update("a", 5)
        pq.push_or_update("a", 1)
        assert pq.priority_of("a") == 1

    def test_remove(self):
        pq = AddressablePQ()
        for x, p in [("a", 1), ("b", 2), ("c", 3)]:
            pq.push(x, p)
        pq.remove("b")
        assert "b" not in pq
        assert [pq.pop()[0] for _ in range(2)] == ["a", "c"]

    def test_contains(self):
        pq = AddressablePQ()
        pq.push("a", 1)
        assert "a" in pq
        assert "z" not in pq

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            AddressablePQ().pop()

    def test_peek(self):
        pq = AddressablePQ()
        pq.push("a", 4)
        assert pq.peek() == ("a", 4)
        assert len(pq) == 1

    def test_items_iteration(self):
        pq = AddressablePQ()
        for x, p in [("a", 1), ("b", 2)]:
            pq.push(x, p)
        assert dict(pq.items()) == {"a": 1, "b": 2}

    def test_fifo_on_ties(self):
        pq = AddressablePQ()
        for name in ["first", "second", "third"]:
            pq.push(name, 1)
        assert [pq.pop()[0] for _ in range(3)] == ["first", "second", "third"]


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 100)), max_size=200))
def test_lazy_pq_sorts(pairs):
    pq = LazyPQ()
    for i, (val, pri) in enumerate(pairs):
        pq.push((val, i), pri)
    priorities = [pri for _, pri in pq.drain()]
    assert priorities == sorted(priorities)


@given(st.dictionaries(st.integers(0, 50), st.integers(0, 100), max_size=40))
def test_addressable_pq_heap_invariant(entries):
    pq = AddressablePQ()
    for item, pri in entries.items():
        pq.push(item, pri)
    # Interleave updates that halve priorities.
    for item in list(entries)[::2]:
        pq.update(item, entries[item] // 2)
        entries[item] //= 2
    out = []
    while pq:
        out.append(pq.pop())
    assert [p for _, p in out] == sorted(entries.values())
    assert {i for i, _ in out} == set(entries)
