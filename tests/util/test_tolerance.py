"""Scale-aware float comparisons (ISSUE 3 ε-termination fix)."""

import math

from repro.util.tolerance import REL_TOL, geq, gt, leq, lt, proves_bound, tolerance


class TestDriftAbsorption:
    def test_classic_binary_drift(self):
        # 0.1 + 0.2 == 0.30000000000000004: drift, not a real excess.
        assert not gt(0.1 + 0.2, 0.3)
        assert leq(0.1 + 0.2, 0.3)
        assert geq(0.3, 0.1 + 0.2)
        assert not lt(0.3, 0.1 + 0.2)

    def test_real_differences_survive(self):
        assert gt(0.31, 0.3)
        assert lt(0.3, 0.31)
        assert not leq(0.31, 0.3)
        assert not geq(0.3, 0.31)

    def test_scales_with_magnitude(self):
        # At 3e8 an absolute 1e-9 is below one ulp; the relative
        # tolerance still absorbs a one-ulp drift there.
        big = 3e8
        drifted = big + math.ulp(big)
        assert not gt(drifted, big)
        assert leq(drifted, big)
        # ...but a real difference at that scale is still seen.
        assert gt(big + 1.0, big)

    def test_absolute_floor_near_zero(self):
        assert tolerance(0.0, 0.0) == REL_TOL
        assert leq(REL_TOL / 2, 0.0)
        assert not gt(REL_TOL / 2, 0.0)
        assert gt(3 * REL_TOL, 0.0)


class TestProvesBound:
    def test_exact_epsilon_zero(self):
        assert proves_bound(0.3, 0.0, 0.1 + 0.2)  # drift must not spin
        assert proves_bound(0.1 + 0.2, 0.0, 0.3)  # ...in either direction
        assert not proves_bound(0.31, 0.0, 0.3)  # nor terminate early

    def test_epsilon_relaxation(self):
        assert proves_bound(1.2, 0.25, 1.0)
        assert not proves_bound(1.3, 0.25, 1.0)

    def test_empty_open_lists_always_prove(self):
        assert proves_bound(42.0, 0.0, math.inf)
