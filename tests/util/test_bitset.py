"""Unit tests for repro.util.bitset."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit_count,
    bit_indices,
    bits_from_iterable,
    first_set_bit,
    has_bit,
)


class TestBitsFromIterable:
    def test_empty(self):
        assert bits_from_iterable([]) == 0

    def test_single(self):
        assert bits_from_iterable([3]) == 8

    def test_multiple(self):
        assert bits_from_iterable([0, 2, 5]) == 0b100101

    def test_duplicates_idempotent(self):
        assert bits_from_iterable([1, 1, 1]) == 2


class TestBitIndices:
    def test_empty(self):
        assert list(bit_indices(0)) == []

    def test_roundtrip(self):
        indices = [0, 3, 7, 40]
        assert list(bit_indices(bits_from_iterable(indices))) == indices

    def test_order_ascending(self):
        assert list(bit_indices(0b1011)) == [0, 1, 3]


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_counts(self):
        assert bit_count(0b101101) == 4

    def test_large(self):
        assert bit_count((1 << 100) | 1) == 2


class TestHasBit:
    def test_present(self):
        assert has_bit(0b100, 2)

    def test_absent(self):
        assert not has_bit(0b100, 1)

    def test_high_index(self):
        assert not has_bit(0b1, 64)


class TestFirstSetBit:
    def test_empty(self):
        assert first_set_bit(0) == -1

    def test_low(self):
        assert first_set_bit(0b1010) == 1

    def test_bit_zero(self):
        assert first_set_bit(1) == 0


@given(st.sets(st.integers(0, 80), max_size=20))
def test_roundtrip_property(indices):
    mask = bits_from_iterable(indices)
    assert set(bit_indices(mask)) == indices
    assert bit_count(mask) == len(indices)
    for i in indices:
        assert has_bit(mask, i)
    if indices:
        assert first_set_bit(mask) == min(indices)
