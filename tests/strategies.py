"""Hypothesis strategies for property-based tests.

Strategies generate *valid* problem instances: connected weighted DAGs
with positive node weights and non-negative edge weights, plus processor
systems covering the shipped topologies and heterogeneous speeds.
Sizes are kept small enough for exhaustive cross-checks.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.taskgraph import TaskGraph
from repro.system.processors import ProcessorSystem


@st.composite
def task_graphs(
    draw,
    min_nodes: int = 1,
    max_nodes: int = 7,
    max_weight: int = 20,
    max_comm: int = 20,
) -> TaskGraph:
    """Random DAG: edges always point from lower to higher node id."""
    v = draw(st.integers(min_nodes, max_nodes))
    weights = [draw(st.integers(1, max_weight)) for _ in range(v)]
    edges = {}
    for u in range(v):
        for w in range(u + 1, v):
            if draw(st.booleans()):
                edges[(u, w)] = draw(st.integers(0, max_comm))
    return TaskGraph(weights, edges, name="hypothesis")


@st.composite
def processor_systems(
    draw,
    min_pes: int = 1,
    max_pes: int = 3,
    allow_hetero: bool = True,
    allow_distance_scaled: bool = False,
) -> ProcessorSystem:
    """Random small system over the shipped topologies.

    ``allow_distance_scaled=True`` additionally samples the hop-scaled
    communication model, the regime where several pruning/preprocessing
    rules must self-gate off — off by default so existing properties
    keep their historical instance distribution.
    """
    p = draw(st.integers(min_pes, max_pes))
    kind = draw(st.sampled_from(["clique", "ring", "chain", "star"]))
    if allow_hetero and draw(st.booleans()):
        speeds = [draw(st.sampled_from([0.5, 1.0, 2.0])) for _ in range(p)]
    else:
        speeds = None
    factory = {
        "clique": ProcessorSystem.fully_connected,
        "ring": ProcessorSystem.ring,
        "chain": ProcessorSystem.chain,
        "star": ProcessorSystem.star,
    }[kind]
    system = factory(p, speeds=speeds)
    if allow_distance_scaled and draw(st.booleans()):
        system = ProcessorSystem(
            p, system.links, speeds,
            distance_scaled=True, name=f"{system.name}-ds",
        )
    return system


@st.composite
def scheduling_instances(draw, max_nodes: int = 6, max_pes: int = 3):
    """A (graph, system) pair sized for exhaustive ground-truthing."""
    graph = draw(task_graphs(max_nodes=max_nodes))
    system = draw(processor_systems(max_pes=max_pes))
    return graph, system


@st.composite
def equivalence_instances(
    draw,
    max_nodes: int = 5,
    max_pes: int = 3,
    max_clones: int = 2,
):
    """A (graph, system) pair guaranteed to contain a Definition-3
    equivalence group.

    ``task_graphs``/``paper_instances`` draw node weights and edge costs
    from wide uniform ranges, so two tasks with *identical* weight and
    identical parent/child edge sets essentially never occur — the
    interchangeable-task machinery went property-untested under those
    strategies.  Here we clone one node 1–2 times (same weight, same
    in/out edges with the same costs, fresh highest ids), which makes the
    clones and the target mutually interchangeable by construction.
    Total size stays ≤ ``max_nodes + max_clones`` so the exhaustive
    oracle remains tractable.
    """
    base = draw(task_graphs(min_nodes=1, max_nodes=max_nodes))
    v = base.num_nodes
    target = draw(st.integers(0, v - 1))
    clones = draw(st.integers(1, max_clones))
    weights = list(base.weights) + [base.weight(target)] * clones
    edges = dict(base.edges)
    for i in range(clones):
        c = v + i
        for p, cost in base.pred_edges(target):
            edges[(p, c)] = cost
        for s, cost in base.succ_edges(target):
            edges[(c, s)] = cost
    graph = TaskGraph(weights, edges, name="equivalence")
    system = draw(processor_systems(max_pes=max_pes))
    return graph, system


@st.composite
def paper_instances(draw, max_nodes: int = 7, max_pes: int = 3):
    """A §4.1-style (graph, system) pair: the paper's random-graph
    generator (uniform node costs of mean 40, out-degrees of mean v/10,
    edge costs scaled by CCR) at exhaustively-checkable sizes, on a
    homogeneous clique — the workload shape the benchmark gates run on.
    """
    from repro.graph.generators.random_paper import (
        PaperGraphSpec,
        paper_random_graph,
    )
    from repro.system.processors import ProcessorSystem

    spec = PaperGraphSpec(
        num_nodes=draw(st.integers(4, max_nodes)),
        ccr=draw(st.sampled_from([0.1, 1.0, 10.0])),
        seed=draw(st.integers(0, 2**16)),
    )
    system = ProcessorSystem.fully_connected(draw(st.integers(2, max_pes)))
    return paper_random_graph(spec), system
