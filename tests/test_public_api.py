"""The public API surface: everything in __all__ exists and works."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing public name {name}"

    def test_version(self):
        assert repro.__version__

    def test_error_hierarchy(self):
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.CycleError, repro.GraphError)
        assert issubclass(repro.ScheduleError, repro.ReproError)
        assert issubclass(repro.SearchError, repro.ReproError)
        assert issubclass(repro.BudgetExceeded, repro.SearchError)
        assert issubclass(repro.WorkloadError, repro.ReproError)

    def test_budget_exceeded_payload(self):
        err = repro.BudgetExceeded("out of gas", best_found=None, states_expanded=7)
        assert err.states_expanded == 7
        assert err.best_found is None

    def test_docstring_quickstart_runs(self):
        """The module docstring's doctest scenario."""
        g = repro.TaskGraph(
            [2, 3, 3, 4, 5, 2],
            {(0, 1): 1, (0, 2): 1, (0, 3): 2, (1, 4): 1, (2, 4): 1,
             (3, 5): 4, (4, 5): 5},
        )
        result = repro.astar_schedule(g, repro.ProcessorSystem.ring(3))
        assert result.schedule.length == 14.0

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.experiments
        import repro.graph.generators
        import repro.parallel
        import repro.workloads

        assert repro.baselines and repro.experiments
        assert repro.graph.generators and repro.parallel and repro.workloads
