"""Unit tests for repro.schedule.schedule."""

import pytest

from repro.errors import ScheduleError
from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem


def optimal_fig4_schedule():
    """The paper's Figure-4 optimal schedule (length 14)."""
    return Schedule(
        paper_example_dag(),
        paper_example_system(),
        {0: (0, 0.0), 1: (0, 2.0), 2: (1, 3.0), 3: (2, 4.0), 4: (0, 7.0), 5: (0, 12.0)},
    )


class TestConstruction:
    def test_figure4_length(self):
        assert optimal_fig4_schedule().length == 14.0

    def test_missing_node_rejected(self):
        g = TaskGraph([1, 1], {(0, 1): 1})
        s = ProcessorSystem(2)
        with pytest.raises(ScheduleError, match="missing"):
            Schedule(g, s, {0: (0, 0.0)})

    def test_unknown_node_rejected(self):
        g = TaskGraph([1], {})
        s = ProcessorSystem(1)
        with pytest.raises(ScheduleError):
            Schedule(g, s, {0: (0, 0.0), 7: (0, 5.0)})

    def test_unknown_pe_rejected(self):
        g = TaskGraph([1], {})
        with pytest.raises(ScheduleError, match="unknown PE"):
            Schedule(g, ProcessorSystem(1), {0: (3, 0.0)})

    def test_negative_start_rejected(self):
        g = TaskGraph([1], {})
        with pytest.raises(ScheduleError, match="negative"):
            Schedule(g, ProcessorSystem(1), {0: (0, -1.0)})


class TestAccessors:
    def test_task_lookup(self):
        sched = optimal_fig4_schedule()
        t = sched.task(4)
        assert (t.pe, t.start, t.finish) == (0, 7.0, 12.0)

    def test_pe_start_finish(self):
        sched = optimal_fig4_schedule()
        assert sched.pe_of(3) == 2
        assert sched.start_time(1) == 2.0
        assert sched.finish_time(5) == 14.0

    def test_tasks_sorted_by_start(self):
        starts = [t.start for t in optimal_fig4_schedule().tasks]
        assert starts == sorted(starts)

    def test_tasks_on_pe(self):
        sched = optimal_fig4_schedule()
        nodes = [t.node for t in sched.tasks_on(0)]
        assert nodes == [0, 1, 4, 5]

    def test_used_pes(self):
        sched = optimal_fig4_schedule()
        assert sched.used_pes == (0, 1, 2)
        assert sched.num_used_pes == 3

    def test_heterogeneous_duration(self):
        g = TaskGraph([10], {})
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        sched = Schedule(g, s, {0: (1, 0.0)})
        assert sched.task(0).duration == 5.0
        assert sched.length == 5.0


class TestMetrics:
    def test_idle_time(self):
        sched = optimal_fig4_schedule()
        busy = 2 + 3 + 3 + 4 + 5 + 2
        assert sched.idle_time() == pytest.approx(3 * 14 - busy)

    def test_efficiency_between_zero_one(self):
        eff = optimal_fig4_schedule().efficiency()
        assert 0.0 < eff <= 1.0

    def test_as_assignment_roundtrip(self):
        sched = optimal_fig4_schedule()
        again = Schedule(sched.graph, sched.system, sched.as_assignment())
        assert again == sched


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert optimal_fig4_schedule() == optimal_fig4_schedule()
        assert hash(optimal_fig4_schedule()) == hash(optimal_fig4_schedule())

    def test_different_assignment_differs(self):
        base = optimal_fig4_schedule()
        other = Schedule(
            base.graph, base.system,
            {0: (0, 0.0), 1: (1, 3.0), 2: (0, 2.0), 3: (2, 4.0), 4: (0, 7.0), 5: (0, 12.0)},
        )
        assert base != other

    def test_repr(self):
        assert "length=14" in repr(optimal_fig4_schedule())
