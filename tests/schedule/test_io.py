"""Unit tests for schedule serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.errors import ScheduleError
from repro.graph.examples import paper_example_dag, paper_example_system
from repro.schedule.io import (
    load_schedule_json,
    save_schedule_json,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedule.schedule import Schedule
from repro.search.astar import astar_schedule
from tests.strategies import scheduling_instances


def fig4():
    return Schedule(
        paper_example_dag(),
        paper_example_system(),
        {0: (0, 0.0), 1: (0, 2.0), 2: (1, 3.0), 3: (2, 4.0), 4: (0, 7.0), 5: (0, 12.0)},
    )


class TestRoundtrip:
    def test_dict_roundtrip(self):
        sched = fig4()
        again = schedule_from_dict(schedule_to_dict(sched))
        assert again == sched
        assert again.length == 14.0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "sched.json"
        save_schedule_json(fig4(), path)
        assert load_schedule_json(path).length == 14.0

    def test_json_safe(self):
        json.dumps(schedule_to_dict(fig4()))


class TestValidationOnLoad:
    def test_bad_schema(self):
        with pytest.raises(ScheduleError, match="schema"):
            schedule_from_dict({"schema": 9})

    def test_missing_fields(self):
        with pytest.raises(ScheduleError, match="malformed"):
            schedule_from_dict({"schema": 1, "graph": graph_dict()})

    def test_tampered_assignment_rejected(self):
        data = schedule_to_dict(fig4())
        # Move n6 before its inputs arrive.
        data["assignment"] = [
            [n, pe, (0.0 if n == 5 else st)] for n, pe, st in data["assignment"]
        ]
        with pytest.raises(ScheduleError):
            schedule_from_dict(data)

    def test_tampered_length_rejected(self):
        data = schedule_to_dict(fig4())
        data["length"] = 10.0
        with pytest.raises(ScheduleError, match="disagrees"):
            schedule_from_dict(data)


def graph_dict():
    from repro.graph.io import graph_to_dict

    return graph_to_dict(paper_example_dag())


@settings(max_examples=25, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_roundtrip_property(instance):
    graph, system = instance
    sched = astar_schedule(graph, system).schedule
    again = schedule_from_dict(schedule_to_dict(sched))
    assert again.length == pytest.approx(sched.length)
    assert again.as_assignment() == sched.as_assignment()
