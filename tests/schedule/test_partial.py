"""Unit tests for repro.schedule.partial — the search-state payload."""

import pytest
from hypothesis import given

from repro.errors import ScheduleError
from repro.schedule.partial import PartialSchedule
from repro.schedule.validate import schedule_violations
from repro.system.processors import ProcessorSystem
from tests.strategies import task_graphs


class TestEmptyState:
    def test_initial_invariants(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        assert ps.num_scheduled == 0
        assert ps.makespan == 0.0
        assert ps.mask == 0
        assert ps.last_node == -1
        assert not ps.is_complete()

    def test_only_entry_ready(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        assert ps.ready_nodes() == [0]


class TestExtend:
    def test_first_placement(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        assert ps.num_scheduled == 1
        assert ps.starts[0] == 0.0
        assert ps.finishes[0] == 2.0
        assert ps.makespan == 2.0
        assert ps.ready_time[0] == 2.0
        assert ps.last_node == 0

    def test_ready_set_updates(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        assert ps.ready_nodes() == [1, 2, 3]

    def test_same_pe_no_comm(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        # n2 on the same PE starts right after n1 (no communication).
        assert ps.est(1, 0) == 2.0

    def test_cross_pe_comm_delay(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        # n2 on another PE waits for the c(n1,n2)=1 message.
        assert ps.est(1, 1) == 3.0
        # n4 has edge cost 2.
        assert ps.est(3, 1) == 4.0

    def test_pe_busy_delays_start(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        ps = ps.extend(0, 0).extend(1, 0)
        # PE 0 is busy until 5; n3 can only start then (local data at 2).
        assert ps.est(2, 0) == 5.0

    def test_immutability(self, fig1_graph, fig1_system):
        base = PartialSchedule.empty(fig1_graph, fig1_system)
        child = base.extend(0, 0)
        assert base.num_scheduled == 0
        assert child is not base

    def test_unready_node_rejected(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        with pytest.raises(ScheduleError, match="not ready"):
            ps.extend(5, 0)  # exit node needs all parents first

    def test_double_schedule_rejected(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        with pytest.raises(ScheduleError):
            ps.extend(0, 1)

    def test_unknown_pe_rejected(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        with pytest.raises(ScheduleError, match="unknown PE"):
            ps.extend(0, 9)

    def test_heterogeneous_exec_time(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph([10, 10], {(0, 1): 0})
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        ps = PartialSchedule.empty(g, s).extend(0, 1)
        assert ps.finishes[0] == 5.0


class TestPaperWalkthrough:
    """Re-derive the g values of the paper's Figure-3 search tree."""

    def test_level2_costs(self, fig1_graph, fig1_system):
        root = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        # n2 -> PE 0: g = 5; n2 -> PE 1: g = 6.
        assert root.extend(1, 0).makespan == 5.0
        assert root.extend(1, 1).makespan == 6.0
        # n4 -> PE 0: g = 6; n4 -> PE 1: g = 8.
        assert root.extend(3, 0).makespan == 6.0
        assert root.extend(3, 1).makespan == 8.0

    def test_goal_path(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        ps = ps.extend(0, 0).extend(1, 0).extend(2, 1).extend(3, 2)
        ps = ps.extend(4, 0).extend(5, 0)
        assert ps.is_complete()
        assert ps.makespan == 14.0
        sched = ps.to_schedule()
        assert schedule_violations(sched) == []


class TestSignature:
    def test_order_independent(self, fig1_graph, fig1_system):
        a = PartialSchedule.empty(fig1_graph, fig1_system)
        x = a.extend(0, 0).extend(1, 0).extend(3, 1)
        y = a.extend(0, 0).extend(3, 1).extend(1, 0)
        assert x.signature == y.signature
        assert x == y
        assert hash(x) == hash(y)

    def test_pe_choice_changes_signature(self, fig1_graph, fig1_system):
        a = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        assert a.extend(1, 0).signature != a.extend(1, 1).signature


class TestCompletion:
    def test_incomplete_to_schedule_rejected(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        with pytest.raises(ScheduleError, match="covers"):
            ps.to_schedule()

    def test_used_pes_mask(self, fig1_graph, fig1_system):
        ps = PartialSchedule.empty(fig1_graph, fig1_system)
        ps = ps.extend(0, 0).extend(1, 2)
        assert ps.used_pes_mask() == 0b101


@given(task_graphs(max_nodes=6))
def test_topological_completion_is_valid(graph):
    """Scheduling any topological order greedily yields a feasible schedule."""
    system = ProcessorSystem.fully_connected(2)
    ps = PartialSchedule.empty(graph, system)
    for i, node in enumerate(graph.topological_order):
        ps = ps.extend(node, i % 2)
    assert ps.is_complete()
    assert schedule_violations(ps.to_schedule()) == []


@given(task_graphs(max_nodes=6))
def test_makespan_monotone_under_extension(graph):
    system = ProcessorSystem.fully_connected(2)
    ps = PartialSchedule.empty(graph, system)
    prev = 0.0
    for node in graph.topological_order:
        ps = ps.extend(node, 0)
        assert ps.makespan >= prev
        prev = ps.makespan
