"""Unit tests for repro.schedule.gantt."""

from repro.graph.examples import paper_example_dag, paper_example_system
from repro.schedule.gantt import render_gantt, render_timeline
from repro.schedule.schedule import Schedule


def fig4():
    return Schedule(
        paper_example_dag(),
        paper_example_system(),
        {0: (0, 0.0), 1: (0, 2.0), 2: (1, 3.0), 3: (2, 4.0), 4: (0, 7.0), 5: (0, 12.0)},
    )


class TestGantt:
    def test_mentions_length_and_pes(self):
        out = render_gantt(fig4())
        assert "14" in out
        assert "PE  0" in out and "PE  2" in out

    def test_row_per_pe(self):
        out = render_gantt(fig4())
        assert sum(1 for line in out.splitlines() if line.startswith("PE")) == 3

    def test_width_parameter(self):
        narrow = render_gantt(fig4(), width=30)
        wide = render_gantt(fig4(), width=90)
        assert len(wide.splitlines()[1]) > len(narrow.splitlines()[1])


class TestTimeline:
    def test_all_nodes_listed(self):
        out = render_timeline(fig4())
        for label in ("n1", "n2", "n3", "n4", "n5", "n6"):
            assert label in out

    def test_length_line(self):
        assert "schedule length = 14" in render_timeline(fig4())
