"""Unit tests for the preprocessing pass internals.

Semantic (optimum-preserving) behaviour is property-tested against
exhaustive enumeration in ``tests/oracle``; this module pins the
mechanics — memoization, config toggles, bookkeeping, the removal
condition's arithmetic — on hand-checkable fixtures.
"""

import pytest

from repro.graph.taskgraph import TaskGraph
from repro.schedule.preprocess import (
    PreprocessConfig,
    clear_preprocess_cache,
    node_equivalence_classes,
    preprocess_instance,
    removable_transitive_edges,
)
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.system.processors import ProcessorSystem


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_preprocess_cache()
    yield
    clear_preprocess_cache()


def _diamond_with_shortcut():
    """0 -> 1 -> 2 plus shortcut (0, 2); w(1) = 5 makes the shortcut
    redundant: 5/s_max + min(1, 1) >= 3 for s_max <= 2."""
    return TaskGraph(
        [1, 5, 1], {(0, 1): 1, (1, 2): 1, (0, 2): 3}, name="diamond"
    )


class TestRemovalCondition:
    def test_redundant_shortcut_removed(self):
        graph = _diamond_with_shortcut()
        system = ProcessorSystem.fully_connected(2)
        assert removable_transitive_edges(graph, system) == ((0, 2),)

    def test_fast_pe_tightens_the_condition(self):
        """The witness divides the relay weight by the fastest speed:
        with s_max = 2 the relay still covers cost 3 (2.5 + 1), but a
        hypothetical s_max = 10 would not (0.5 + 1 < 3)."""
        graph = _diamond_with_shortcut()
        fast = ProcessorSystem.fully_connected(2, speeds=[1.0, 2.0])
        assert removable_transitive_edges(graph, fast) == ((0, 2),)
        faster = ProcessorSystem.fully_connected(2, speeds=[1.0, 10.0])
        assert removable_transitive_edges(graph, faster) == ()

    def test_expensive_shortcut_kept(self):
        graph = TaskGraph(
            [1, 1, 1], {(0, 1): 1, (1, 2): 1, (0, 2): 5}, name="kept"
        )
        system = ProcessorSystem.fully_connected(2)
        assert removable_transitive_edges(graph, system) == ()

    def test_deterministic(self):
        graph = _diamond_with_shortcut()
        system = ProcessorSystem.fully_connected(2)
        assert removable_transitive_edges(
            graph, system
        ) == removable_transitive_edges(graph, system)


class TestConfigToggles:
    def test_transitive_reduction_off(self):
        pre = preprocess_instance(
            _diamond_with_shortcut(),
            ProcessorSystem.fully_connected(2),
            PreprocessConfig(transitive_reduction=False),
        )
        assert pre.removed_edges == ()
        assert pre.graph.num_edges == 3

    def test_chain_contraction_off(self):
        graph = TaskGraph([1, 2, 3], {(0, 1): 1, (1, 2): 1}, name="chain")
        pre = preprocess_instance(
            graph,
            ProcessorSystem.fully_connected(2),
            PreprocessConfig(chain_contraction=False),
        )
        assert pre.chain_plan is None

    def test_root_symmetry_off(self):
        graph = TaskGraph([1, 2], {}, name="pair")
        pre = preprocess_instance(
            graph,
            ProcessorSystem.fully_connected(3),
            PreprocessConfig(root_symmetry=False),
        )
        assert not pre.root_symmetry
        assert pre.pruning_overrides() == {}


class TestSymmetryEligibility:
    def test_homogeneous_multi_pe_is_eligible(self):
        graph = TaskGraph([1, 2], {}, name="pair")
        pre = preprocess_instance(graph, ProcessorSystem.ring(3))
        assert pre.root_symmetry
        assert pre.pruning_overrides() == {"root_symmetry": True}

    def test_single_pe_is_not(self):
        graph = TaskGraph([1, 2], {}, name="pair")
        pre = preprocess_instance(graph, ProcessorSystem.fully_connected(1))
        assert not pre.root_symmetry

    def test_heterogeneous_is_not(self):
        graph = TaskGraph([1, 2], {}, name="pair")
        system = ProcessorSystem.fully_connected(2, speeds=[1.0, 2.0])
        assert not preprocess_instance(graph, system).root_symmetry

    def test_distance_scaled_is_not(self):
        graph = TaskGraph([1, 2], {}, name="pair")
        system = ProcessorSystem(
            2, [(0, 1)], distance_scaled=True, name="ds"
        )
        assert not preprocess_instance(graph, system).root_symmetry


class TestMemo:
    def test_hit_returns_identical_object(self):
        graph = _diamond_with_shortcut()
        system = ProcessorSystem.fully_connected(2)
        first = preprocess_instance(graph, system)
        again = preprocess_instance(graph, system)
        assert again is first

    def test_value_keyed_not_identity_keyed(self):
        """An equal-by-value graph built separately must hit the memo —
        this is what amortizes duplicate daemon requests."""
        system = ProcessorSystem.fully_connected(2)
        first = preprocess_instance(_diamond_with_shortcut(), system)
        again = preprocess_instance(_diamond_with_shortcut(), system)
        assert again is first

    def test_config_is_part_of_the_key(self):
        graph = _diamond_with_shortcut()
        system = ProcessorSystem.fully_connected(2)
        full = preprocess_instance(graph, system)
        bare = preprocess_instance(
            graph, system, PreprocessConfig(transitive_reduction=False)
        )
        assert bare is not full
        assert bare.removed_edges == () and full.removed_edges != ()

    def test_clear_cache_forgets(self):
        graph = _diamond_with_shortcut()
        system = ProcessorSystem.fully_connected(2)
        first = preprocess_instance(graph, system)
        clear_preprocess_cache()
        assert preprocess_instance(graph, system) is not first


class TestBookkeeping:
    def test_stats_keys(self):
        pre = preprocess_instance(
            _diamond_with_shortcut(), ProcessorSystem.fully_connected(2)
        )
        assert pre.stats == {
            "preprocess_edges_removed": 1,
            "preprocess_nodes_contracted": 0,
            "preprocess_equivalence_groups": 0,
            "preprocess_equivalence_members": 0,
        }

    def test_identity_result(self):
        graph = TaskGraph([1, 2, 3], {(0, 2): 9, (1, 2): 9}, name="plain")
        pre = preprocess_instance(graph, ProcessorSystem.fully_connected(2))
        assert pre.is_identity
        assert pre.members == ((0,), (1,), (2,))

    def test_removal_merges_equivalence_classes(self):
        """The compounding effect the pass exists for: clones 2 and 3
        are identical but for a redundant shortcut (0, 3); the raw graph
        keeps them apart, the reduced graph merges them."""
        graph = TaskGraph(
            [1, 5, 1, 1],
            {(0, 1): 2, (1, 2): 1, (1, 3): 1, (0, 3): 2},
            name="merge",
        )
        assert all(len(g) == 1 for g in node_equivalence_classes(graph))
        pre = preprocess_instance(graph, ProcessorSystem.fully_connected(2))
        assert pre.removed_edges == ((0, 3),)
        assert (2, 3) in pre.equivalence_groups
        assert pre.stats["preprocess_equivalence_groups"] == 1
        assert pre.stats["preprocess_equivalence_members"] == 1

    def test_single_pe_contraction_members_and_restore(self):
        graph = TaskGraph(
            [2, 3, 4], {(0, 1): 5, (1, 2): 1}, name="chain"
        )
        system = ProcessorSystem.fully_connected(1)
        pre = preprocess_instance(graph, system)
        assert pre.graph.num_nodes == 1
        assert pre.members == ((0, 1, 2),)
        assert pre.stats["preprocess_nodes_contracted"] == 2
        block = Schedule(pre.graph, system, {0: (0, 0.0)})
        restored = pre.restore(block)
        validate_schedule(restored)
        assert restored.length == pytest.approx(9.0)
        assert [t.node for t in restored.tasks] == [0, 1, 2]

    def test_chain_plan_on_multi_pe(self):
        graph = TaskGraph(
            [2, 3, 4], {(0, 1): 5, (1, 2): 1}, name="chain"
        )
        pre = preprocess_instance(graph, ProcessorSystem.fully_connected(2))
        assert pre.graph.num_nodes == 3  # untouched: contraction unsound
        assert pre.chain_plan is not None
        assert pre.chain_plan.graph.num_nodes == 1
        assert pre.chain_plan.members == ((0, 1, 2),)
