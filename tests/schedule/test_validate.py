"""Unit tests for repro.schedule.validate."""

import pytest

from repro.errors import ScheduleError
from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.schedule.validate import schedule_violations, validate_schedule
from repro.system.processors import ProcessorSystem


def fig4():
    return Schedule(
        paper_example_dag(),
        paper_example_system(),
        {0: (0, 0.0), 1: (0, 2.0), 2: (1, 3.0), 3: (2, 4.0), 4: (0, 7.0), 5: (0, 12.0)},
    )


class TestValidSchedules:
    def test_figure4_is_feasible(self):
        assert schedule_violations(fig4()) == []
        validate_schedule(fig4())

    def test_single_node(self):
        sched = Schedule(TaskGraph([3], {}), ProcessorSystem(1), {0: (0, 0.0)})
        validate_schedule(sched)


class TestOverlapDetection:
    def test_overlap_on_same_pe(self):
        g = TaskGraph([5, 5], {})
        sched = Schedule(g, ProcessorSystem(1), {0: (0, 0.0), 1: (0, 3.0)})
        problems = schedule_violations(sched)
        assert len(problems) == 1
        assert "overlap" in problems[0]

    def test_touching_tasks_allowed(self):
        g = TaskGraph([5, 5], {})
        sched = Schedule(g, ProcessorSystem(1), {0: (0, 0.0), 1: (0, 5.0)})
        assert schedule_violations(sched) == []

    def test_different_pes_may_overlap(self):
        g = TaskGraph([5, 5], {})
        sched = Schedule(g, ProcessorSystem(2), {0: (0, 0.0), 1: (1, 0.0)})
        assert schedule_violations(sched) == []


class TestPrecedenceDetection:
    def test_child_before_parent(self):
        g = TaskGraph([2, 2], {(0, 1): 1})
        sched = Schedule(g, ProcessorSystem(2), {0: (0, 0.0), 1: (1, 0.0)})
        problems = schedule_violations(sched)
        assert any("precedence" in p for p in problems)

    def test_comm_delay_enforced_cross_pe(self):
        g = TaskGraph([2, 2], {(0, 1): 5})
        # Data ready at 2 + 5 = 7 on the other PE; starting at 6 is invalid.
        bad = Schedule(g, ProcessorSystem(2), {0: (0, 0.0), 1: (1, 6.0)})
        assert any("precedence" in p for p in schedule_violations(bad))
        ok = Schedule(g, ProcessorSystem(2), {0: (0, 0.0), 1: (1, 7.0)})
        assert schedule_violations(ok) == []

    def test_same_pe_no_comm_needed(self):
        g = TaskGraph([2, 2], {(0, 1): 100})
        sched = Schedule(g, ProcessorSystem(1), {0: (0, 0.0), 1: (0, 2.0)})
        assert schedule_violations(sched) == []

    def test_validate_raises_first(self):
        g = TaskGraph([2, 2], {(0, 1): 1})
        bad = Schedule(g, ProcessorSystem(2), {0: (0, 0.0), 1: (1, 0.0)})
        with pytest.raises(ScheduleError):
            validate_schedule(bad)


class TestDistanceScaledValidation:
    def test_hop_scaling_enforced(self):
        g = TaskGraph([1, 1], {(0, 1): 2})
        s = ProcessorSystem(3, links=[(0, 1), (1, 2)], distance_scaled=True)
        # 2 hops from PE0 to PE2 → delay 4; data ready at 1 + 4 = 5.
        bad = Schedule(g, s, {0: (0, 0.0), 1: (2, 3.0)})
        assert any("precedence" in p for p in schedule_violations(bad))
        ok = Schedule(g, s, {0: (0, 0.0), 1: (2, 5.0)})
        assert schedule_violations(ok) == []
