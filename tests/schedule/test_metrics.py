"""Unit tests for schedule metrics."""

import pytest
from hypothesis import given, settings

from repro.graph.examples import paper_example_dag, paper_example_system
from repro.schedule.metrics import analyze_schedule, communication_volume
from repro.schedule.schedule import Schedule
from repro.search.astar import astar_schedule
from tests.strategies import scheduling_instances


def fig4():
    return Schedule(
        paper_example_dag(),
        paper_example_system(),
        {0: (0, 0.0), 1: (0, 2.0), 2: (1, 3.0), 3: (2, 4.0), 4: (0, 7.0), 5: (0, 12.0)},
    )


class TestCommunicationVolume:
    def test_figure4(self):
        volume, count = communication_volume(fig4())
        # Cross-PE edges: n1→n3 (1), n1→n4 (2), n3→n5 (1), n4→n6 (4) = 8.
        assert volume == 8.0
        assert count == 4

    def test_single_pe_zero(self):
        from repro.graph.taskgraph import TaskGraph
        from repro.system.processors import ProcessorSystem

        g = TaskGraph([1, 1], {(0, 1): 100})
        sched = Schedule(g, ProcessorSystem(1), {0: (0, 0.0), 1: (0, 1.0)})
        assert communication_volume(sched) == (0.0, 0)


class TestAnalyzeSchedule:
    def test_figure4_metrics(self):
        m = analyze_schedule(fig4())
        assert m.length == 14.0
        assert m.serial_length == 19.0
        assert m.speedup == pytest.approx(19.0 / 14.0)
        assert m.used_pes == 3
        assert m.efficiency == pytest.approx(m.speedup / 3)
        assert m.comm_volume == 8.0
        assert m.cp_slack == pytest.approx(14.0 - 12.0)
        assert m.load_balance >= 1.0

    def test_perfect_balance_case(self):
        from repro.graph.taskgraph import TaskGraph
        from repro.system.processors import ProcessorSystem

        g = TaskGraph([5, 5], {})
        sched = Schedule(g, ProcessorSystem(2), {0: (0, 0.0), 1: (1, 0.0)})
        m = analyze_schedule(sched)
        assert m.load_balance == pytest.approx(1.0)
        assert m.speedup == pytest.approx(2.0)
        assert m.idle_time == 0.0


@settings(max_examples=30, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=3))
def test_metrics_invariants(instance):
    graph, system = instance
    sched = astar_schedule(graph, system).schedule
    m = analyze_schedule(sched)
    assert m.length > 0
    assert m.used_pes >= 1
    assert m.idle_time >= -1e-9
    assert m.comm_volume >= 0
    assert m.load_balance >= 1.0 - 1e-9
    if set(system.speeds) == {1.0}:
        # On unit-speed PEs the unit-speed serialization baseline means
        # speedup cannot exceed the number of used PEs.
        assert m.speedup <= m.used_pes + 1e-9
