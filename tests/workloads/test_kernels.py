"""Unit tests for the kernel workload suite."""

import pytest

from repro.graph.analysis import graph_ccr
from repro.workloads.kernels import KERNEL_FAMILIES, kernel_suite


class TestKernelSuite:
    def test_default_shape(self):
        suite = kernel_suite()
        assert len(suite) == 4 * 2 * 2  # families × scales × ccrs

    def test_sample_ccr_exact(self):
        for inst in kernel_suite(scales=(1,), ccrs=(0.1, 1.0)):
            assert graph_ccr(inst.graph) == pytest.approx(inst.ccr)

    def test_names_encode_parameters(self):
        suite = kernel_suite(families=("fft",), scales=(2,), ccrs=(1.0,))
        assert suite.instances[0].graph.name == "fft-s2-ccr1.0"

    def test_shared_system(self):
        suite = kernel_suite(num_pes=3)
        assert all(inst.system.num_pes == 3 for inst in suite)

    def test_family_registry(self):
        assert set(KERNEL_FAMILIES) == {"gauss", "fft", "laplace", "dnc"}
        for builder in KERNEL_FAMILIES.values():
            g = builder(1)
            assert g.num_nodes >= 1

    def test_subset_families(self):
        suite = kernel_suite(families=("gauss",), scales=(1,), ccrs=(1.0,))
        assert len(suite) == 1
        assert suite.instances[0].graph.name.startswith("gauss")
