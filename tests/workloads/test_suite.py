"""Unit tests for the §4.1 workload suite."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.suite import (
    DEFAULT_SIZES,
    PAPER_CCRS,
    PAPER_SIZES,
    paper_suite,
    paper_target_system,
)


class TestPaperConstants:
    def test_ccrs(self):
        assert PAPER_CCRS == (0.1, 1.0, 10.0)

    def test_full_sizes(self):
        assert PAPER_SIZES == tuple(range(10, 33, 2))
        assert len(PAPER_SIZES) == 12  # "each set contains 12 graphs"

    def test_default_sizes_subset(self):
        assert set(DEFAULT_SIZES) <= set(PAPER_SIZES)


class TestPaperSuite:
    def test_default_shape(self):
        suite = paper_suite()
        assert len(suite) == len(PAPER_CCRS) * len(DEFAULT_SIZES)
        assert suite.ccrs == PAPER_CCRS
        assert suite.sizes == DEFAULT_SIZES

    def test_full_suite(self):
        suite = paper_suite(full=True, ccrs=(1.0,))
        assert suite.sizes == PAPER_SIZES

    def test_by_ccr_sorted(self):
        suite = paper_suite(sizes=(10, 12))
        insts = suite.by_ccr(1.0)
        assert [i.size for i in insts] == [10, 12]

    def test_by_ccr_missing(self):
        with pytest.raises(WorkloadError):
            paper_suite().by_ccr(3.3)

    def test_get(self):
        suite = paper_suite(sizes=(10,))
        inst = suite.get(0.1, 10)
        assert inst.graph.num_nodes == 10

    def test_get_missing(self):
        with pytest.raises(WorkloadError):
            paper_suite(sizes=(10,)).get(0.1, 30)

    def test_deterministic(self):
        a = paper_suite(sizes=(10, 12))
        b = paper_suite(sizes=(10, 12))
        for x, y in zip(a, b):
            assert x.graph == y.graph

    def test_seeds_unique(self):
        suite = paper_suite()
        seeds = [inst.seed for inst in suite]
        assert len(seeds) == len(set(seeds))

    def test_instance_key_stable(self):
        inst = paper_suite(sizes=(10,)).get(1.0, 10)
        assert str(inst.size) in inst.key and str(inst.ccr) in inst.key

    def test_system_is_clique_of_v(self):
        inst = paper_suite(sizes=(12,)).get(1.0, 12)
        assert inst.system.num_pes == 12


class TestTargetSystem:
    def test_default_v_pes(self):
        assert paper_target_system(14).num_pes == 14

    def test_cap(self):
        assert paper_target_system(14, max_pes=8).num_pes == 8

    def test_cap_above_v(self):
        assert paper_target_system(6, max_pes=10).num_pes == 6
