"""Unit tests for the Chen & Yu baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines.chen_yu import ChenYuCost, chen_yu_schedule
from repro.schedule.partial import PartialSchedule
from repro.schedule.validate import schedule_violations
from repro.search.astar import astar_schedule
from repro.search.enumerate import enumerate_optimal
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget
from tests.strategies import scheduling_instances, task_graphs


class TestChenYuCost:
    def test_empty_state_zero(self, fig1_graph, fig1_system):
        cost = ChenYuCost(fig1_graph, fig1_system)
        assert cost.h(PartialSchedule.empty(fig1_graph, fig1_system)) == 0.0

    def test_exit_node_zero_remaining(self, fig1_graph, fig1_system):
        cost = ChenYuCost(fig1_graph, fig1_system)
        assert cost._max_path_bound(5, 0) == 0.0

    def test_path_enumeration_equals_dp(self, fig1_graph, fig1_system):
        """Exhaustive path matching equals the closed-form DP (see module
        docstring) — validated on the worked example for every (node, pe)."""
        cost = ChenYuCost(fig1_graph, fig1_system, max_paths=10_000)
        for node in range(fig1_graph.num_nodes):
            for pe in range(fig1_system.num_pes):
                assert cost._max_path_bound(node, pe) == pytest.approx(
                    cost.dp_bound(node, pe)
                )

    def test_instrumentation_counts_paths(self, fig1_graph, fig1_system):
        cost = ChenYuCost(fig1_graph, fig1_system)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        cost.h(ps)
        assert cost.paths_enumerated > 0

    def test_cap_fallback_still_admissible(self, fig1_graph, fig1_system):
        """With a tiny path cap the bound may tighten but must stay ≤ true
        remaining (checked via full completion)."""
        capped = ChenYuCost(fig1_graph, fig1_system, max_paths=1)
        ps = PartialSchedule.empty(fig1_graph, fig1_system).extend(0, 0)
        f = ps.makespan + capped.h(ps)
        assert f <= 14.0 + 1e-9  # optimal completion through any prefix state


class TestChenYuSchedule:
    def test_paper_example_optimal(self, fig1_graph, fig1_system):
        result = chen_yu_schedule(fig1_graph, fig1_system)
        assert result.optimal
        assert result.length == 14.0
        assert schedule_violations(result.schedule) == []

    def test_more_expensive_than_astar(self, fig1_graph, fig1_system):
        """The Table-1 claim: same answer, far costlier cost evaluation."""
        import time

        t0 = time.perf_counter()
        chen = chen_yu_schedule(fig1_graph, fig1_system)
        chen_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        astar = astar_schedule(fig1_graph, fig1_system)
        astar_time = time.perf_counter() - t0
        assert chen.length == astar.length
        # Per-evaluation cost dominates: Chen & Yu walks path sets while
        # the paper's h reads one array; compare per-state cost.
        chen_per_state = chen_time / max(1, chen.stats.cost_evaluations)
        astar_per_state = astar_time / max(1, astar.stats.cost_evaluations)
        assert chen_per_state > astar_per_state

    def test_budget(self, fig1_graph, fig1_system):
        result = chen_yu_schedule(
            fig1_graph, fig1_system, budget=Budget(max_expanded=2)
        )
        assert not result.optimal
        assert result.schedule is not None

    def test_algorithm_label(self, fig1_graph, fig1_system):
        assert chen_yu_schedule(fig1_graph, fig1_system).algorithm == "chen-yu"

    def test_paths_recorded_in_stats(self, fig1_graph, fig1_system):
        result = chen_yu_schedule(fig1_graph, fig1_system)
        assert result.stats.pruning.extra["paths_enumerated"] > 0


@settings(max_examples=25, deadline=None)
@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_chen_yu_matches_exhaustive(instance):
    graph, system = instance
    c = chen_yu_schedule(graph, system)
    e = enumerate_optimal(graph, system)
    assert c.optimal
    assert c.length == pytest.approx(e.length)


@settings(max_examples=20, deadline=None)
@given(task_graphs(max_nodes=5))
def test_path_dp_equality_property(graph):
    """max-over-paths of min-matching == tree DP, on random DAGs."""
    system = ProcessorSystem.fully_connected(2)
    cost = ChenYuCost(graph, system, max_paths=100_000)
    for node in range(graph.num_nodes):
        for pe in range(system.num_pes):
            assert cost._max_path_bound(node, pe) == pytest.approx(
                cost.dp_bound(node, pe)
            )


@settings(max_examples=15, deadline=None)
@given(scheduling_instances(max_nodes=4, max_pes=2))
def test_chen_yu_distance_scaled(instance):
    graph, _ = instance
    system = ProcessorSystem(3, links=[(0, 1), (1, 2)], distance_scaled=True)
    c = chen_yu_schedule(graph, system)
    e = enumerate_optimal(graph, system)
    assert c.length == pytest.approx(e.length)
