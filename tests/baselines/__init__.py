"""Test package (unique module paths avoid basename clashes)."""
