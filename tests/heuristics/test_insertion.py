"""Unit tests for repro.heuristics.insertion."""

from hypothesis import given

from repro.graph.generators.classic import fork_join_graph
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.insertion import insertion_list_schedule
from repro.schedule.validate import schedule_violations
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances


class TestInsertion:
    def test_feasible_on_fork_join(self):
        g = fork_join_graph(4, comp=10, comm=3)
        sched = insertion_list_schedule(g, ProcessorSystem(2))
        assert schedule_violations(sched) == []

    def test_uses_gap(self):
        # Node 2 (independent, small) fits into PE 0's idle gap created
        # by waiting for node 1's message.
        g = TaskGraph(
            [2, 2, 2, 2],
            {(0, 1): 0, (0, 3): 10, (1, 3): 10},
        )
        sched = insertion_list_schedule(g, ProcessorSystem(1))
        assert schedule_violations(sched) == []

    def test_respects_explicit_order(self, fig1_graph, fig1_system):
        order = tuple(fig1_graph.topological_order)
        sched = insertion_list_schedule(fig1_graph, fig1_system, order=order)
        assert schedule_violations(sched) == []

    def test_heterogeneous_feasible(self):
        g = fork_join_graph(3, comp=10, comm=5)
        s = ProcessorSystem(3, speeds=[1.0, 2.0, 0.5])
        sched = insertion_list_schedule(g, s)
        assert schedule_violations(sched) == []


@given(scheduling_instances())
def test_insertion_always_feasible(instance):
    graph, system = instance
    sched = insertion_list_schedule(graph, system)
    assert schedule_violations(sched) == []


@given(scheduling_instances(max_nodes=5, max_pes=2))
def test_insertion_per_task_start_no_later_than_ready(instance):
    """Every task starts at or after its data-ready time (insertion can
    move starts earlier than append-only, never violate readiness)."""
    graph, system = instance
    sched = insertion_list_schedule(graph, system)
    for (u, v), c in graph.edges.items():
        tu, tv = sched.task(u), sched.task(v)
        delay = system.comm_time(c, tu.pe, tv.pe)
        assert tv.start >= tu.finish + delay - 1e-9
