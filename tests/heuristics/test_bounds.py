"""Unit tests for repro.heuristics.bounds."""

import pytest
from hypothesis import given, settings

from repro.graph.generators.classic import chain_graph, independent_tasks
from repro.heuristics.bounds import makespan_lower_bound, upper_bound_cost
from repro.search.enumerate import enumerate_optimal
from repro.system.processors import ProcessorSystem
from tests.strategies import task_graphs


class TestUpperBound:
    def test_paper_example(self, fig1_graph, fig1_system):
        u = upper_bound_cost(fig1_graph, fig1_system)
        assert u >= 14.0

    def test_tighten_never_looser(self, small_random_graphs):
        s = ProcessorSystem.fully_connected(3)
        for g in small_random_graphs:
            loose = upper_bound_cost(g, s, tighten=False)
            tight = upper_bound_cost(g, s, tighten=True)
            assert tight <= loose


class TestLowerBound:
    def test_chain_equals_cp(self):
        g = chain_graph(4, comp=10, comm=5)
        assert makespan_lower_bound(g, ProcessorSystem(2)) == 40.0

    def test_work_bound_dominates_wide_graphs(self):
        g = independent_tasks(8, comp=10)
        # 80 total work on 2 PEs → ≥ 40.
        assert makespan_lower_bound(g, ProcessorSystem(2)) == 40.0

    def test_heterogeneous_uses_fastest(self):
        g = chain_graph(2, comp=10, comm=0)
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        assert makespan_lower_bound(g, s) == pytest.approx(10.0)


@settings(max_examples=30, deadline=None)
@given(task_graphs(max_nodes=5))
def test_bounds_sandwich_optimum(graph):
    system = ProcessorSystem.fully_connected(2)
    lb = makespan_lower_bound(graph, system)
    ub = upper_bound_cost(graph, system)
    opt = enumerate_optimal(graph, system).length
    assert lb - 1e-9 <= opt <= ub + 1e-9
