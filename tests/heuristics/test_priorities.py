"""Unit tests for repro.heuristics.priorities."""

import pytest
from hypothesis import given

from repro.errors import SearchError
from repro.graph.examples import paper_example_dag
from repro.heuristics.priorities import (
    PRIORITY_SCHEMES,
    priority_list,
    topological_priority_list,
)
from tests.strategies import task_graphs


class TestPriorityList:
    def test_all_schemes_cover_all_nodes(self):
        g = paper_example_dag()
        for scheme in PRIORITY_SCHEMES:
            assert sorted(priority_list(g, scheme)) == list(range(6))

    def test_blevel_order_paper_example(self):
        # b-levels: n1=19, n2=n3=16, n5=12, n4=10, n6=2.
        order = priority_list(paper_example_dag(), "b-level")
        assert order == (0, 1, 2, 4, 3, 5)

    def test_tlevel_prefers_early_nodes(self):
        order = priority_list(paper_example_dag(), "t-level")
        assert order[0] == 0  # entry has t-level 0
        assert order[-1] == 5  # exit has the largest t-level

    def test_unknown_scheme_raises(self):
        with pytest.raises(SearchError, match="unknown priority scheme"):
            priority_list(paper_example_dag(), "bogus")

    def test_deterministic(self):
        g = paper_example_dag()
        assert priority_list(g) == priority_list(g)


class TestTopologicalPriorityList:
    def test_is_topological(self):
        g = paper_example_dag()
        order = topological_priority_list(g)
        pos = {n: i for i, n in enumerate(order)}
        for (u, v) in g.edges:
            assert pos[u] < pos[v]

    def test_prefers_priority_among_ready(self):
        # After n1, nodes n2/n3 (b=16) should precede n4 (b=10).
        order = topological_priority_list(paper_example_dag(), "b-level")
        assert order.index(1) < order.index(3)
        assert order.index(2) < order.index(3)


@given(task_graphs())
def test_topological_priority_list_property(graph):
    for scheme in PRIORITY_SCHEMES:
        order = topological_priority_list(graph, scheme)
        assert sorted(order) == list(range(graph.num_nodes))
        pos = {n: i for i, n in enumerate(order)}
        for (u, v) in graph.edges:
            assert pos[u] < pos[v]
