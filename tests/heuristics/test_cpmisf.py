"""Unit tests for repro.heuristics.cpmisf."""

from hypothesis import given

from repro.graph.examples import paper_example_dag
from repro.heuristics.cpmisf import cpmisf_priority_order, cpmisf_schedule
from repro.schedule.validate import schedule_violations
from tests.strategies import scheduling_instances


class TestPriorityOrder:
    def test_topological(self):
        g = paper_example_dag()
        order = cpmisf_priority_order(g)
        pos = {n: i for i, n in enumerate(order)}
        for (u, v) in g.edges:
            assert pos[u] < pos[v]

    def test_critical_path_first(self):
        # n1 (b=19) leads; among ready nodes n2/n3 (b=16) precede n4 (b=10).
        order = cpmisf_priority_order(paper_example_dag())
        assert order[0] == 0
        assert order.index(1) < order.index(3)

    def test_successor_count_breaks_ties(self):
        from repro.graph.taskgraph import TaskGraph

        # Nodes 1 and 2 have equal b-level but node 2 has two children.
        g = TaskGraph(
            [1, 5, 5, 1, 1, 4],
            {(0, 1): 0, (0, 2): 0, (2, 3): 0, (2, 4): 0, (1, 5): 1},
        )
        from repro.graph.analysis import compute_levels

        levels = compute_levels(g)
        if levels.b_level[1] == levels.b_level[2]:
            order = cpmisf_priority_order(g)
            assert order.index(2) < order.index(1)


class TestSchedule:
    def test_paper_example_feasible_and_bounded(self, fig1_graph, fig1_system):
        sched = cpmisf_schedule(fig1_graph, fig1_system)
        assert schedule_violations(sched) == []
        assert sched.length >= 14.0


@given(scheduling_instances())
def test_cpmisf_always_feasible(instance):
    graph, system = instance
    sched = cpmisf_schedule(graph, system)
    assert schedule_violations(sched) == []
