"""Unit tests for repro.heuristics.listsched."""

from hypothesis import given

from repro.graph.generators.classic import chain_graph, fork_join_graph, independent_tasks
from repro.heuristics.listsched import fast_upper_bound_schedule, list_schedule
from repro.schedule.validate import schedule_violations
from repro.system.processors import ProcessorSystem
from tests.strategies import scheduling_instances


class TestListSchedule:
    def test_chain_stays_on_one_pe(self):
        g = chain_graph(5, comp=10, comm=100)
        sched = list_schedule(g, ProcessorSystem(4))
        assert sched.num_used_pes == 1
        assert sched.length == 50.0

    def test_independent_tasks_spread(self):
        g = independent_tasks(4, comp=10)
        sched = list_schedule(g, ProcessorSystem(4))
        assert sched.length == 10.0
        assert sched.num_used_pes == 4

    def test_fork_join_feasible(self):
        g = fork_join_graph(3, comp=10, comm=2)
        sched = list_schedule(g, ProcessorSystem(3))
        assert schedule_violations(sched) == []

    def test_explicit_order_respected(self, fig1_graph, fig1_system):
        order = tuple(fig1_graph.topological_order)
        sched = list_schedule(fig1_graph, fig1_system, order=order)
        assert schedule_violations(sched) == []

    def test_heterogeneous_prefers_fast_pe(self):
        g = independent_tasks(1, comp=10)
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        sched = list_schedule(g, s)
        assert sched.pe_of(0) == 1
        assert sched.length == 5.0


class TestFastUpperBound:
    def test_paper_example_at_least_optimal(self, fig1_graph, fig1_system):
        sched = fast_upper_bound_schedule(fig1_graph, fig1_system)
        assert sched.length >= 14.0
        assert schedule_violations(sched) == []

    def test_feasible_everywhere(self, small_random_graphs):
        for g in small_random_graphs:
            sched = fast_upper_bound_schedule(g, ProcessorSystem.fully_connected(3))
            assert schedule_violations(sched) == []


@given(scheduling_instances())
def test_list_schedule_always_feasible(instance):
    graph, system = instance
    sched = list_schedule(graph, system)
    assert schedule_violations(sched) == []
    assert sched.length > 0
