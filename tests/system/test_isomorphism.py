"""Unit tests for Definition-2 processor isomorphism."""

from repro.system.isomorphism import isomorphism_classes, processors_isomorphic
from repro.system.processors import ProcessorSystem


class TestPairwise:
    def test_reflexive(self):
        s = ProcessorSystem.ring(4)
        assert processors_isomorphic(s, 2, 2)

    def test_clique_all_isomorphic(self):
        s = ProcessorSystem.fully_connected(4)
        for i in range(4):
            for j in range(4):
                assert processors_isomorphic(s, i, j)

    def test_three_ring_all_isomorphic(self):
        # The paper's example: PE 1 and PE 2 equivalent to PE 0 initially.
        s = ProcessorSystem.ring(3)
        assert processors_isomorphic(s, 0, 1)
        assert processors_isomorphic(s, 1, 2)
        assert processors_isomorphic(s, 0, 2)

    def test_chain_ends_isomorphic_middle_not(self):
        s = ProcessorSystem.chain(4)
        # 0 and 3 are both endpoints, but with different neighbours.
        assert not processors_isomorphic(s, 0, 3)
        assert not processors_isomorphic(s, 0, 1)

    def test_chain_adjacent_ends(self):
        # In a 2-chain the two PEs mirror each other.
        s = ProcessorSystem.chain(2)
        assert processors_isomorphic(s, 0, 1)

    def test_star_leaves_isomorphic(self):
        s = ProcessorSystem.star(5)
        assert processors_isomorphic(s, 1, 2)
        assert not processors_isomorphic(s, 0, 1)

    def test_heterogeneous_speeds_break_isomorphism(self):
        s = ProcessorSystem.fully_connected(3, speeds=[1.0, 1.0, 2.0])
        assert processors_isomorphic(s, 0, 1)
        assert not processors_isomorphic(s, 0, 2)


class TestClasses:
    def test_clique_single_class(self):
        s = ProcessorSystem.fully_connected(5)
        assert isomorphism_classes(s) == ((0, 1, 2, 3, 4),)

    def test_star_two_classes(self):
        s = ProcessorSystem.star(4)
        assert isomorphism_classes(s) == ((0,), (1, 2, 3))

    def test_chain4_classes(self):
        s = ProcessorSystem.chain(4)
        classes = isomorphism_classes(s)
        assert sorted(len(c) for c in classes) == [1, 1, 1, 1]

    def test_ring4_opposite_pairs(self):
        # In a 4-ring, PEs 0 and 2 share neighbours {1, 3}; 1 and 3 share {0, 2}.
        s = ProcessorSystem.ring(4)
        classes = isomorphism_classes(s)
        assert ((0, 2) in classes) and ((1, 3) in classes)

    def test_classes_partition(self):
        for s in (ProcessorSystem.mesh(2, 3), ProcessorSystem.hypercube(3)):
            classes = isomorphism_classes(s)
            flat = sorted(pe for cls in classes for pe in cls)
            assert flat == list(range(s.num_pes))

    def test_hetero_clique_splits_by_speed(self):
        s = ProcessorSystem.fully_connected(4, speeds=[1, 1, 2, 2])
        classes = isomorphism_classes(s)
        assert (0, 1) in classes and (2, 3) in classes
