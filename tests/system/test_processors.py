"""Unit tests for repro.system.processors."""

import pytest

from repro.errors import SystemError_
from repro.system.processors import ProcessorSystem


class TestConstruction:
    def test_default_fully_connected(self):
        s = ProcessorSystem(3)
        assert len(s.links) == 3

    def test_invalid_count(self):
        with pytest.raises(SystemError_):
            ProcessorSystem(0)

    def test_unknown_link_pe(self):
        with pytest.raises(SystemError_):
            ProcessorSystem(2, links=[(0, 5)])

    def test_self_link(self):
        with pytest.raises(SystemError_):
            ProcessorSystem(2, links=[(1, 1)])

    def test_link_normalization(self):
        s = ProcessorSystem(3, links=[(2, 0)])
        assert (0, 2) in s.links

    def test_speeds_validation(self):
        with pytest.raises(SystemError_):
            ProcessorSystem(2, speeds=[1.0])
        with pytest.raises(SystemError_):
            ProcessorSystem(2, speeds=[1.0, 0.0])

    def test_homogeneous_flag(self):
        assert ProcessorSystem(3).is_homogeneous
        assert not ProcessorSystem(2, speeds=[1.0, 2.0]).is_homogeneous


class TestFactories:
    def test_ring(self):
        s = ProcessorSystem.ring(4)
        assert s.num_pes == 4
        assert s.degree(0) == 2

    def test_chain(self):
        s = ProcessorSystem.chain(3)
        assert s.neighbors(1) == (0, 2)

    def test_mesh(self):
        s = ProcessorSystem.mesh(2, 2)
        assert s.num_pes == 4
        assert s.degree(0) == 2

    def test_hypercube(self):
        s = ProcessorSystem.hypercube(3)
        assert s.num_pes == 8
        assert s.degree(0) == 3

    def test_star(self):
        s = ProcessorSystem.star(4)
        assert s.degree(0) == 3
        assert s.degree(1) == 1

    def test_fully_connected(self):
        s = ProcessorSystem.fully_connected(4)
        assert s.degree(0) == 3

    def test_names(self):
        assert ProcessorSystem.ring(3).name == "ring-3"
        assert ProcessorSystem.mesh(2, 3).name == "mesh-2x3"


class TestExecAndComm:
    def test_exec_time_homogeneous(self):
        s = ProcessorSystem(2)
        assert s.exec_time(10.0, 0) == 10.0

    def test_exec_time_heterogeneous(self):
        s = ProcessorSystem(2, speeds=[1.0, 2.0])
        assert s.exec_time(10.0, 1) == 5.0

    def test_same_pe_comm_free(self):
        s = ProcessorSystem.ring(3)
        assert s.comm_time(100.0, 1, 1) == 0.0

    def test_cross_pe_comm_costs_edge_weight(self):
        s = ProcessorSystem.ring(3)
        assert s.comm_time(7.0, 0, 2) == 7.0

    def test_distance_scaled_comm(self):
        s = ProcessorSystem(4, links=[(0, 1), (1, 2), (2, 3)], distance_scaled=True)
        assert s.comm_time(5.0, 0, 3) == 15.0
        assert s.comm_time(5.0, 0, 1) == 5.0


class TestHopDistance:
    def test_chain_distances(self):
        s = ProcessorSystem.chain(4)
        assert s.hop_distance[0][3] == 3
        assert s.hop_distance[1][1] == 0

    def test_ring_wraps(self):
        s = ProcessorSystem.ring(6)
        assert s.hop_distance[0][3] == 3
        assert s.hop_distance[0][5] == 1

    def test_disconnected_sentinel(self):
        s = ProcessorSystem(3, links=[(0, 1)])
        assert s.hop_distance[0][2] == 3  # sentinel = num_pes

    def test_cached(self):
        s = ProcessorSystem.mesh(2, 2)
        assert s.hop_distance is s.hop_distance


class TestValueSemantics:
    def test_equality(self):
        assert ProcessorSystem.ring(3) == ProcessorSystem.ring(3)

    def test_speed_changes_equality(self):
        assert ProcessorSystem(2) != ProcessorSystem(2, speeds=[1.0, 2.0])

    def test_hashable(self):
        assert len({ProcessorSystem.ring(3), ProcessorSystem.ring(3)}) == 1

    def test_repr(self):
        assert "p=3" in repr(ProcessorSystem.ring(3))
