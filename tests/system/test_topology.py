"""Unit tests for repro.system.topology."""

import pytest

from repro.errors import SystemError_
from repro.system.topology import (
    chain_links,
    fully_connected_links,
    hypercube_links,
    mesh_links,
    ring_links,
    star_links,
)


def degrees(n, links):
    deg = [0] * n
    for i, j in links:
        deg[i] += 1
        deg[j] += 1
    return deg


class TestFullyConnected:
    def test_link_count(self):
        assert len(fully_connected_links(5)) == 10

    def test_single(self):
        assert fully_connected_links(1) == set()

    def test_invalid(self):
        with pytest.raises(SystemError_):
            fully_connected_links(0)


class TestRing:
    def test_degree_two(self):
        links = ring_links(5)
        assert degrees(5, links) == [2] * 5

    def test_three_ring_is_clique(self):
        assert ring_links(3) == fully_connected_links(3)

    def test_two_is_single_link(self):
        assert ring_links(2) == {(0, 1)}

    def test_one_is_empty(self):
        assert ring_links(1) == set()


class TestChain:
    def test_structure(self):
        assert chain_links(4) == {(0, 1), (1, 2), (2, 3)}

    def test_endpoints_degree_one(self):
        deg = degrees(4, chain_links(4))
        assert deg[0] == 1 and deg[3] == 1 and deg[1] == 2


class TestMesh:
    def test_2x3_links(self):
        links = mesh_links(2, 3)
        assert len(links) == 7  # 2*(3-1) + 3*(2-1) = 4 + 3
        assert (0, 1) in links and (0, 3) in links

    def test_1xn_is_chain(self):
        assert mesh_links(1, 4) == chain_links(4)

    def test_corner_degree(self):
        deg = degrees(9, mesh_links(3, 3))
        assert deg[0] == 2  # corner
        assert deg[4] == 4  # centre

    def test_invalid(self):
        with pytest.raises(SystemError_):
            mesh_links(0, 3)


class TestHypercube:
    def test_dimension_counts(self):
        for dim in range(4):
            links = hypercube_links(dim)
            n = 1 << dim
            assert len(links) == dim * n // 2
            if dim:
                assert degrees(n, links) == [dim] * n

    def test_dim_zero(self):
        assert hypercube_links(0) == set()

    def test_invalid(self):
        with pytest.raises(SystemError_):
            hypercube_links(-1)


class TestStar:
    def test_hub_degree(self):
        deg = degrees(5, star_links(5))
        assert deg[0] == 4
        assert deg[1:] == [1] * 4

    def test_single(self):
        assert star_links(1) == set()
