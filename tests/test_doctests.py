"""Run the doctest examples embedded in module docstrings.

Keeps the inline usage examples honest — a doctest that drifts from the
implementation fails the suite.
"""

import doctest

import pytest

import repro.parallel.partition
import repro.search.pruning
import repro.util.bitset
import repro.util.timing

MODULES = [
    repro.util.bitset,
    repro.util.timing,
    repro.parallel.partition,
    repro.search.pruning,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
