"""Instrument semantics and Prometheus text exposition.

The histogram quantile estimate is pinned against hand-computed linear
interpolation (the same estimate ``histogram_quantile`` produces from
scraped buckets), and the renderer's output is checked line-by-line
against the text exposition format 0.0.4 — cumulative ``_bucket``
series ending at ``+Inf``, ``_sum``/``_count``, label escaping.
"""

import math

import pytest

from repro.obs.metrics import (
    EXPANSION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    _escape_label_value,
    _format_value,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_histogram_count_and_sum(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(101.0)

    def test_histogram_cumulative_ends_at_inf(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        cum = h.cumulative_counts()
        assert cum == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestQuantiles:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_empty_summary_uses_none_not_nan(self):
        s = Histogram().summary()
        assert s["p50"] is None and s["p99"] is None
        assert s["count"] == 0.0

    def test_linear_interpolation_inside_bucket(self):
        # 10 observations all landing in the (1.0, 2.0] bucket: the
        # median rank is 5 of 10, halfway through that bucket.
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(1.5)
        assert h.quantile(0.5) == pytest.approx(1.5)

    def test_quantile_clamps_to_largest_finite_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(50.0)  # +Inf bucket
        assert h.quantile(0.99) == 1.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_uniform_spread_median(self):
        h = Histogram(buckets=LATENCY_BUCKETS)
        for v in (0.002, 0.02, 0.2, 2.0):
            h.observe(v)
        # rank 2 of 4 falls at the top of the 0.025 bucket.
        assert 0.01 <= h.quantile(0.5) <= 0.05


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", labels={"k": "x"}) is not reg.counter("a")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_histogram_summaries_include_labelled_keys(self):
        reg = MetricsRegistry()
        reg.histogram("solve_seconds", labels={"engine": "astar"}).observe(1.0)
        reg.histogram("queue_wait_seconds").observe(0.5)
        got = reg.histogram_summaries()
        assert set(got) == {"solve_seconds{engine=astar}",
                            "queue_wait_seconds"}
        assert got["queue_wait_seconds"]["count"] == 1.0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs.", labels={"event": "done"}).inc(3)
        reg.gauge("queue_depth", "Depth.").set(2)
        text = reg.render_prometheus()
        assert "# HELP repro_jobs_total Jobs." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{event="done"} 3' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("request_seconds", "Latency.", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        lines = reg.render_prometheus().splitlines()
        assert "# TYPE repro_request_seconds histogram" in lines
        assert 'repro_request_seconds_bucket{le="1"} 1' in lines
        assert 'repro_request_seconds_bucket{le="2"} 2' in lines
        assert 'repro_request_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_request_seconds_sum 11" in lines
        assert "repro_request_seconds_count 3" in lines

    def test_extra_block_is_appended(self):
        reg = MetricsRegistry()
        text = reg.render_prometheus(extra="repro_uptime_seconds 1.5\n")
        assert text.endswith("repro_uptime_seconds 1.5\n")

    def test_label_value_escaping(self):
        assert _escape_label_value('a"b\\c\nd') == r'a\"b\\c\nd'

    def test_value_formatting(self):
        assert _format_value(3.0) == "3"
        assert _format_value(math.inf) == "+Inf"
        assert _format_value(0.25) == "0.25"

    def test_expansion_buckets_are_sorted(self):
        assert list(EXPANSION_BUCKETS) == sorted(EXPANSION_BUCKETS)
