"""Obs-suite fixtures: lock-order checking on by default.

The telemetry layer (tracer buffers, metrics registries) is exactly the
kind of code that grows a lock per object and then deadlocks two
releases later; every test in this suite runs under the
:mod:`repro.testing.lockcheck` guard and fails on any lock-order
inversion observed during the test body.
"""

import pytest

from repro.testing import lockcheck


@pytest.fixture(autouse=True)
def _lock_order_guard():
    with lockcheck.guard() as checker:
        yield checker
    checker.assert_clean()
