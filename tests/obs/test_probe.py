"""SearchProbe sampling, monotone clamps, and stage rebasing.

The probe promises a monotone series *by construction* even when the
engine feeds it non-monotone raw values (worker merges, bound resets
between IDA* iterations) — these tests feed it adversarial sequences
and assert the recorded series never steps backwards.
"""

import math

import pytest

from repro.obs.probe import DEFAULT_PROBE_INTERVAL, SearchProbe, TimelineSample


def _is_monotone(samples):
    for prev, cur in zip(samples, samples[1:]):
        if cur.wall_time < prev.wall_time:
            return False
        if cur.expansions < prev.expansions:
            return False
        # Exact comparisons are the point: the probe records values
        # verbatim, so monotonicity must hold bit-for-bit, not up to
        # tolerance.
        if cur.incumbent > prev.incumbent:  # repro: ignore[float-compare]
            return False
        if cur.lower_bound < prev.lower_bound:  # repro: ignore[float-compare]
            return False
    return True


class TestSampling:
    def test_tick_respects_interval(self):
        probe = SearchProbe(every=10)
        for expanded in range(1, 26):
            probe.tick(expanded, expanded, math.inf, 0.0)
        # due at 10 and 20 only
        assert [s.expansions for s in probe.timeline()] == [10, 20]

    def test_finish_always_records(self):
        probe = SearchProbe(every=1000)
        probe.tick(3, 1, math.inf, 0.0)
        probe.finish(3, 0, 42.0, 42.0)
        (sample,) = probe.timeline()
        assert sample.expansions == 3 and sample.incumbent == 42.0

    def test_default_interval(self):
        assert SearchProbe().every == DEFAULT_PROBE_INTERVAL

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SearchProbe(every=0)


class TestMonotoneClamps:
    def test_incumbent_is_running_min_and_floor_running_max(self):
        probe = SearchProbe(every=1)
        feed = [(1, 5, 100.0, 10.0), (2, 5, 120.0, 8.0),  # both worse
                (3, 5, 90.0, 15.0), (4, 5, 95.0, 12.0)]
        for expanded, open_size, inc, low in feed:
            probe.tick(expanded, open_size, inc, low)
        samples = probe.timeline()
        assert _is_monotone(samples)
        assert samples[-1].incumbent == 90.0
        assert samples[-1].lower_bound == 15.0

    def test_record_at_clamps_wall_time(self):
        probe = SearchProbe(every=1)
        probe.record_at(5.0, 10, 1, 100.0, 1.0)
        probe.record_at(2.0, 4, 1, 99.0, 2.0)  # stale worker clock
        samples = probe.timeline()
        assert _is_monotone(samples)
        assert samples[-1].wall_time == 5.0
        assert samples[-1].expansions == 10

    def test_rebase_accumulates_expansion_axis(self):
        probe = SearchProbe(every=2)
        probe.tick(2, 1, math.inf, 0.0)     # stage 1 sample at 2
        probe.rebase(7)                      # stage 1 expanded 7 total
        probe.tick(2, 1, 50.0, 0.0)          # stage 2 local counter restarts
        samples = probe.timeline()
        assert [s.expansions for s in samples] == [2, 9]
        assert _is_monotone(samples)

    def test_elapsed_is_nonnegative_and_grows(self):
        probe = SearchProbe()
        a = probe.elapsed()
        b = probe.elapsed()
        assert 0.0 <= a <= b


class TestTimelineSample:
    def test_as_dict_maps_nonfinite_to_none(self):
        s = TimelineSample(0.1, 5, 2, math.inf, 3.0)
        d = s.as_dict()
        assert d["incumbent"] is None
        assert d["lower_bound"] == 3.0

    def test_as_dict_keeps_finite_values(self):
        s = TimelineSample(0.1, 5, 2, 9.0, 3.0)
        assert s.as_dict() == {"wall_time": 0.1, "expansions": 5,
                               "open_size": 2, "incumbent": 9.0,
                               "lower_bound": 3.0}

    def test_timeline_returns_immutable_snapshot(self):
        probe = SearchProbe(every=1)
        probe.tick(1, 1, math.inf, 0.0)
        snap = probe.timeline()
        probe.tick(2, 1, math.inf, 0.0)
        assert len(snap) == 1 and isinstance(snap, tuple)
