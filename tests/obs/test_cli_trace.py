"""End-to-end ``--obs-trace`` round trip through the CLI.

``repro solve --obs-trace`` must write a trace that ``repro trace``
renders (spans, stage attribution, convergence table) and that
``repro trace --check`` validates clean — the same loop the CI
trace-schema step runs.
"""

import json

import pytest

from repro.cli import main
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.io import graph_to_dict


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """Solve a small instance once with tracing on; share the trace."""
    tmp = tmp_path_factory.mktemp("obs_cli")
    graph_path = tmp / "g.json"
    graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=7))
    graph_path.write_text(json.dumps(graph_to_dict(graph)))
    trace_path = tmp / "run.jsonl"
    assert main(["solve", str(graph_path), "--pes", "2",
                 "--obs-trace", str(trace_path),
                 "--probe-every", "8"]) == 0
    return trace_path


class TestRoundTrip:
    def test_solve_announces_trace(self, trace_file, capsys):
        # re-solve into a fresh file to capture solve's own output
        out_trace = trace_file.parent / "again.jsonl"
        assert main(["solve", str(trace_file.parent / "g.json"),
                     "--pes", "2", "--obs-trace", str(out_trace)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "repro trace" in out

    def test_report_shows_spans_and_timeline(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "span durations" in out
        assert "portfolio stage attribution" in out
        assert "convergence timeline" in out
        assert "batch.solve" in out

    def test_check_validates_schema(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--check"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "schema v1" in out

    def test_check_rejects_corrupt_trace(self, trace_file, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        lines = trace_file.read_text().splitlines()
        bad.write_text("\n".join(lines[:1] + ["{not json"]))
        assert main(["trace", str(bad), "--check"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_report_rejects_corrupt_trace(self, trace_file, tmp_path, capsys):
        bad = tmp_path / "bad2.jsonl"
        bad.write_text("{not json\n")
        assert main(["trace", str(bad)]) == 1

    def test_missing_file_is_io_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
