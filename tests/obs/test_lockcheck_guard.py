"""Regression: the suite-wide lock-order guard catches real inversions.

Uses an explicit inner ``guard(on_violation="raise")`` so the
deliberately inverted acquisition below is caught and *consumed* here,
proving the checker works end-to-end inside this suite without failing
the autouse fixture that wraps the test.
"""

import threading

import pytest

from repro.testing import lockcheck
from repro.testing.lockcheck import LockOrderViolation


def test_guard_catches_deliberate_inversion():
    with lockcheck.guard(on_violation="raise"):
        job_lock = threading.Lock()
        cache_lock = threading.Lock()

        def admit():  # job -> cache, the sanctioned order
            with job_lock:
                with cache_lock:
                    pass

        def evict_badly():  # cache -> job, the bug
            with cache_lock:
                with job_lock:
                    pass

        t = threading.Thread(target=admit)
        t.start()
        t.join()
        with pytest.raises(LockOrderViolation, match="inversion"):
            evict_badly()


def test_autouse_guard_is_active(_lock_order_guard):
    """The suite-wide fixture really instruments this test's locks."""
    lock = threading.Lock()
    assert type(lock).__name__ == "_GuardedLock"
    with lock:
        pass
    assert _lock_order_guard.violations == []
