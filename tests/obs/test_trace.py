"""Tracer semantics: nesting, sinks, cross-tracer merge, validation.

The worker-merge contract is load-bearing for the daemon: a buffering
tracer created with ``root=<parent span id>`` must drain records that
``absorb`` can splice into the coordinator's file with intact parent
links and no id collisions — ``validate_trace_lines`` is the oracle.
"""

import io
import json

from repro.obs.trace import (
    NullTracer,
    Tracer,
    TRACE_SCHEMA_VERSION,
    null_tracer,
    validate_trace_lines,
)


def _records(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestSpans:
    def test_span_emits_start_and_end(self):
        sink = io.StringIO()
        tr = Tracer(sink=sink)
        with tr.span("outer", attrs={"k": 1}):
            pass
        start, end = _records(sink)
        assert start["kind"] == "span_start" and start["name"] == "outer"
        assert start["v"] == TRACE_SCHEMA_VERSION
        assert start["attrs"] == {"k": 1}
        assert end["kind"] == "span_end" and end["id"] == start["id"]
        assert end["dur"] >= 0.0

    def test_nesting_links_parent_via_contextvar(self):
        sink = io.StringIO()
        tr = Tracer(sink=sink)
        with tr.span("outer") as outer:
            with tr.span("inner"):
                tr.event("ping")
        recs = _records(sink)
        inner_start = next(r for r in recs if r["name"] == "inner")
        event = next(r for r in recs if r["name"] == "ping")
        assert inner_start["parent"] == outer.id
        assert event["parent"] == inner_start["id"]

    def test_current_span_id_restored_after_exit(self):
        tr = Tracer(sink=io.StringIO())
        assert tr.current_span_id() is None
        with tr.span("s") as s:
            assert tr.current_span_id() == s.id
        assert tr.current_span_id() is None

    def test_span_ids_unique_across_tracers_in_one_process(self):
        # Two buffering tracers coexist when batch items solve inline;
        # the process-global sequence keeps their ids distinct.
        a, b = Tracer(), Tracer()
        with a.span("x"), b.span("y"):
            pass
        ids = {r["id"] for r in a.drain() + b.drain() if "id" in r}
        assert len(ids) == 2

    def test_exception_recorded_on_span_end(self):
        sink = io.StringIO()
        tr = Tracer(sink=sink)
        try:
            with tr.span("boom"):
                raise RuntimeError("no")
        except RuntimeError:
            pass
        end = _records(sink)[-1]
        assert "RuntimeError" in end["attrs"]["error"]


class TestSinksAndMerge:
    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = Tracer(path)
        with tr.span("a"):
            tr.event("e")
        tr.close()
        lines = path.read_text().splitlines()
        count, problems = validate_trace_lines(iter(lines))
        assert (count, problems) == (3, [])

    def test_worker_buffer_absorbs_under_root(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = Tracer(path)
        with parent.span("job") as job:
            worker = Tracer(root=job.id)   # no sink: buffers
            with worker.span("work"):
                worker.event("step")
            parent.absorb(worker.drain())
        parent.close()
        lines = path.read_text().splitlines()
        count, problems = validate_trace_lines(iter(lines))
        assert problems == [] and count == 5
        recs = [json.loads(line) for line in lines]
        work_start = next(r for r in recs if r["name"] == "work")
        assert work_start["parent"] == job.id

    def test_drain_clears_buffer_and_absorb_none_is_noop(self):
        tr = Tracer()
        tr.event("e")
        assert len(tr.drain()) == 1
        assert tr.drain() == []
        tr.absorb(None)
        assert tr.drain() == []


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert null_tracer.enabled is False
        with null_tracer.span("anything") as s:
            assert s.id is None
        null_tracer.event("e")
        null_tracer.absorb([{"x": 1}])
        assert null_tracer.current_span_id() is None
        null_tracer.flush()
        null_tracer.close()

    def test_singleton_type(self):
        assert isinstance(null_tracer, NullTracer)


class TestValidation:
    def test_rejects_bad_json_and_non_object(self):
        _, problems = validate_trace_lines(iter(["{oops", "[1, 2]"]))
        assert len(problems) == 2

    def test_rejects_missing_keys_and_unknown_kind(self):
        lines = [
            json.dumps({"v": 1, "kind": "event"}),
            json.dumps({"v": 1, "kind": "nope", "ts": 0, "name": "x"}),
        ]
        _, problems = validate_trace_lines(iter(lines))
        assert any("missing keys" in p for p in problems)
        assert any("unknown kind" in p for p in problems)

    def test_rejects_unbalanced_spans(self):
        start = {"v": 1, "kind": "span_start", "ts": 0, "name": "a", "id": "p.1"}
        _, problems = validate_trace_lines(iter([json.dumps(start)]))
        assert any("never ended" in p for p in problems)

    def test_rejects_duplicate_and_unknown_ids(self):
        start = {"v": 1, "kind": "span_start", "ts": 0, "name": "a", "id": "p.1"}
        end_unknown = {"v": 1, "kind": "span_end", "ts": 0, "name": "b",
                       "id": "p.9", "dur": 0.0}
        lines = [json.dumps(start), json.dumps(start),
                 json.dumps(end_unknown)]
        _, problems = validate_trace_lines(iter(lines))
        assert any("duplicate span id" in p for p in problems)
        assert any("unknown id" in p for p in problems)

    def test_rejects_dangling_parent(self):
        rec = {"v": 1, "kind": "event", "ts": 0, "name": "e",
               "parent": "p.404"}
        _, problems = validate_trace_lines(iter([json.dumps(rec)]))
        assert any("never started" in p for p in problems)

    def test_blank_lines_skipped(self):
        count, problems = validate_trace_lines(iter(["", "   ", ""]))
        assert (count, problems) == (0, [])
