"""Unit tests for graph transformations."""

import pytest
from hypothesis import given, settings

from repro.errors import GraphError
from repro.graph.analysis import compute_levels, graph_ccr
from repro.graph.examples import paper_example_dag
from repro.graph.taskgraph import TaskGraph
from repro.graph.transform import (
    merge_serial_chains,
    reverse_graph,
    scale_costs,
    scale_to_ccr,
)
from repro.search.astar import astar_schedule
from repro.system.processors import ProcessorSystem
from tests.strategies import task_graphs


class TestReverse:
    def test_involution(self):
        g = paper_example_dag()
        assert reverse_graph(reverse_graph(g)).edges == g.edges

    def test_levels_swap(self):
        g = paper_example_dag()
        rg = reverse_graph(g)
        lv, rlv = compute_levels(g), compute_levels(rg)
        v = g.num_nodes
        for n in range(v):
            m = v - 1 - n
            # b-level of the mirror = t-level + weight of the original.
            assert rlv.b_level[m] == pytest.approx(lv.t_level[n] + g.weight(n))

    def test_optimal_length_preserved_on_clique(self):
        g = paper_example_dag()
        s = ProcessorSystem.fully_connected(3)
        assert (
            astar_schedule(g, s).length
            == astar_schedule(reverse_graph(g), s).length
        )


class TestScaleCosts:
    def test_comp_scaling(self):
        g = scale_costs(paper_example_dag(), comp_factor=2.0)
        assert g.weights == (4, 6, 6, 8, 10, 4)

    def test_comm_scaling(self):
        g = scale_costs(paper_example_dag(), comm_factor=0.0)
        assert all(c == 0 for c in g.edges.values())

    def test_invalid_factors(self):
        with pytest.raises(GraphError):
            scale_costs(paper_example_dag(), comp_factor=0.0)
        with pytest.raises(GraphError):
            scale_costs(paper_example_dag(), comm_factor=-1.0)


class TestScaleToCcr:
    def test_hits_target_exactly(self):
        g = scale_to_ccr(paper_example_dag(), 2.5)
        assert graph_ccr(g) == pytest.approx(2.5)

    def test_rejects_zero_comm_graph(self):
        g = TaskGraph([1, 1], {(0, 1): 0})
        with pytest.raises(GraphError):
            scale_to_ccr(g, 1.0)

    def test_rejects_bad_target(self):
        with pytest.raises(GraphError):
            scale_to_ccr(paper_example_dag(), 0.0)


class TestMergeSerialChains:
    def test_pure_chain_collapses_to_one(self):
        g = TaskGraph([1, 2, 3], {(0, 1): 5, (1, 2): 5})
        merged = merge_serial_chains(g)
        assert merged.num_nodes == 1
        assert merged.weight(0) == 6.0

    def test_no_chain_unchanged(self):
        g = TaskGraph([1, 1, 1], {(0, 1): 1, (0, 2): 1})
        merged = merge_serial_chains(g)
        assert merged.num_nodes == 3

    def test_upper_bound_property(self):
        """optimal(original) ≤ optimal(merged) — a documented counterexample
        to equality: contiguity conflicts with a competing task."""
        g = TaskGraph(
            [1, 1, 1, 1],  # a, u, b, w
            {(0, 1): 100, (0, 2): 100, (1, 3): 0},
        )
        s = ProcessorSystem.fully_connected(4)
        original = astar_schedule(g, s).length
        merged_graph = merge_serial_chains(g)
        merged = astar_schedule(merged_graph, s).length
        assert original <= merged + 1e-9
        assert original == 3.0
        assert merged == 4.0  # the pinned counterexample

    def test_labels_concatenated(self):
        g = TaskGraph([1, 1], {(0, 1): 3})
        merged = merge_serial_chains(g)
        assert merged.label(0) == "n1+n2"


@settings(max_examples=25, deadline=None)
@given(task_graphs(max_nodes=6))
def test_merge_upper_bound_property(graph):
    system = ProcessorSystem.fully_connected(2)
    original = astar_schedule(graph, system).length
    merged = astar_schedule(merge_serial_chains(graph), system).length
    assert original <= merged + 1e-9


@settings(max_examples=25, deadline=None)
@given(task_graphs(max_nodes=6))
def test_reverse_preserves_optimum_property(graph):
    system = ProcessorSystem.fully_connected(2)
    a = astar_schedule(graph, system).length
    b = astar_schedule(reverse_graph(graph), system).length
    assert a == pytest.approx(b)
