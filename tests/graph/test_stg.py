"""Unit tests for STG-format support."""

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.examples import paper_example_dag
from repro.graph.stg import format_stg, load_stg, parse_stg, save_stg
from tests.strategies import task_graphs

CLASSIC_STG = """\
5
0 0 0
1 4 1 0
2 3 1 0
3 5 2 1 2
4 0 1 3
# a classic STG: virtual entry 0 and exit 4
"""


class TestParse:
    def test_classic_document(self):
        g = parse_stg(CLASSIC_STG)
        assert g.num_nodes == 5
        assert g.weight(1) == 4.0
        assert g.preds(3) == (1, 2)
        # Virtual tasks got epsilon weights.
        assert 0 < g.weight(0) < 1e-3

    def test_extended_edge_costs(self):
        text = "3\n0 2 0\n1 3 1 0:7\n2 4 2 0:1 1:2\n"
        g = parse_stg(text)
        assert g.comm_cost(0, 1) == 7.0
        assert g.comm_cost(1, 2) == 2.0

    def test_default_comm(self):
        g = parse_stg(CLASSIC_STG, default_comm=5.0)
        assert g.comm_cost(1, 3) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            parse_stg("")

    def test_bad_count_rejected(self):
        with pytest.raises(GraphError, match="task count"):
            parse_stg("banana\n")

    def test_wrong_line_count(self):
        with pytest.raises(GraphError, match="expected 3 task lines"):
            parse_stg("3\n0 1 0\n1 1 1 0\n")

    def test_forward_reference_rejected(self):
        with pytest.raises(GraphError, match="earlier task"):
            parse_stg("2\n0 1 1 1\n1 1 0\n")

    def test_sparse_ids_rejected(self):
        with pytest.raises(GraphError, match="dense"):
            parse_stg("2\n0 1 0\n5 1 0\n")

    def test_bad_predecessor_token(self):
        with pytest.raises(GraphError, match="bad predecessor"):
            parse_stg("2\n0 1 0\n1 1 1 x\n")


class TestRoundtrip:
    def test_paper_example_roundtrip(self):
        g = paper_example_dag()
        parsed = parse_stg(format_stg(g))
        assert parsed.weights == g.weights
        assert parsed.edges == g.edges

    def test_file_roundtrip(self, tmp_path):
        g = paper_example_dag()
        path = tmp_path / "example.stg"
        save_stg(g, path)
        loaded = load_stg(path)
        assert loaded.weights == g.weights
        assert loaded.edges == g.edges
        assert loaded.name == "example"

    def test_zero_comm_graph_uses_classic_syntax(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph([1, 2], {(0, 1): 0})
        text = format_stg(g)
        assert ":" not in text.splitlines()[2]

    def test_non_topological_ids_rejected(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph([1, 2], {(1, 0): 3})  # edge against id order
        with pytest.raises(GraphError, match="topologically"):
            format_stg(g)


@given(task_graphs(max_nodes=7))
def test_stg_roundtrip_property(graph):
    parsed = parse_stg(format_stg(graph))
    assert parsed.weights == graph.weights
    assert parsed.edges == graph.edges
