"""Unit tests for repro.graph.io."""

import json

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.examples import paper_example_dag
from repro.graph.io import (
    format_edge_list,
    graph_from_dict,
    graph_to_dict,
    graph_to_dot,
    load_graph_json,
    parse_edge_list,
    save_graph_json,
)
from tests.strategies import task_graphs


class TestJsonRoundtrip:
    def test_roundtrip_preserves_graph(self):
        g = paper_example_dag()
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_file_roundtrip(self, tmp_path):
        g = paper_example_dag()
        path = tmp_path / "g.json"
        save_graph_json(g, path)
        assert load_graph_json(path) == g

    def test_dict_is_json_safe(self):
        json.dumps(graph_to_dict(paper_example_dag()))

    def test_bad_schema_rejected(self):
        with pytest.raises(GraphError, match="schema"):
            graph_from_dict({"schema": 99})

    def test_missing_field_rejected(self):
        with pytest.raises(GraphError, match="missing"):
            graph_from_dict({"schema": 1, "weights": [1]})

    def test_invalid_content_rejected(self):
        data = graph_to_dict(paper_example_dag())
        data["edges"].append([5, 5, 1])  # self-loop
        with pytest.raises(GraphError):
            graph_from_dict(data)

    def test_name_preserved(self):
        g = paper_example_dag()
        assert graph_from_dict(graph_to_dict(g)).name == g.name


class TestDot:
    def test_contains_all_nodes_and_edges(self):
        g = paper_example_dag()
        dot = graph_to_dot(g)
        assert dot.startswith("digraph")
        for n in range(g.num_nodes):
            assert g.label(n) in dot
        assert dot.count("->") == g.num_edges

    def test_weights_shown(self):
        dot = graph_to_dot(paper_example_dag())
        assert "(2)" in dot  # n1's weight


class TestEdgeList:
    def test_roundtrip(self):
        g = paper_example_dag()
        parsed = parse_edge_list(format_edge_list(g))
        assert parsed.weights == g.weights
        assert parsed.edges == g.edges

    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        node 0 1.5

        node 1 2.5  # trailing comment
        edge 0 1 3
        """
        g = parse_edge_list(text)
        assert g.num_nodes == 2
        assert g.comm_cost(0, 1) == 3.0

    def test_sparse_ids_rejected(self):
        with pytest.raises(GraphError, match="dense"):
            parse_edge_list("node 0 1\nnode 2 1")

    def test_garbage_line_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            parse_edge_list("nonsense here")

    def test_empty_rejected(self):
        with pytest.raises(GraphError, match="no node"):
            parse_edge_list("# nothing\n")

    def test_bad_number_reports_line(self):
        with pytest.raises(GraphError, match="line 2"):
            parse_edge_list("node 0 1\nnode x 2")


@given(task_graphs())
def test_json_roundtrip_property(graph):
    assert graph_from_dict(graph_to_dict(graph)) == graph


@given(task_graphs())
def test_edge_list_roundtrip_property(graph):
    parsed = parse_edge_list(format_edge_list(graph))
    assert parsed.weights == graph.weights
    assert parsed.edges == graph.edges
