"""Unit tests for repro.graph.analysis — including the Figure-2 numbers."""

import pytest
from hypothesis import given

from repro.graph.analysis import (
    compute_levels,
    critical_path,
    graph_ccr,
    priority_order,
)
from repro.graph.examples import paper_example_dag
from repro.graph.taskgraph import TaskGraph
from tests.strategies import task_graphs


class TestFigure2:
    """The paper's Figure 2 lists sl, b-level and t-level for Figure 1(a)."""

    def test_static_levels(self):
        levels = compute_levels(paper_example_dag())
        assert levels.static_level == (12, 10, 10, 6, 7, 2)

    def test_b_levels(self):
        levels = compute_levels(paper_example_dag())
        assert levels.b_level == (19, 16, 16, 10, 12, 2)

    def test_t_levels(self):
        levels = compute_levels(paper_example_dag())
        assert levels.t_level == (0, 3, 3, 4, 7, 17)

    def test_cp_length(self):
        levels = compute_levels(paper_example_dag())
        assert levels.cp_length == 19  # n1-n2-n5-n6 with communication

    def test_static_cp(self):
        levels = compute_levels(paper_example_dag())
        assert levels.static_cp_length == 12


class TestLevelsBasics:
    def test_single_node(self):
        levels = compute_levels(TaskGraph([5], {}))
        assert levels.t_level == (0,)
        assert levels.b_level == (5,)
        assert levels.static_level == (5,)
        assert levels.cp_length == 5

    def test_chain(self):
        g = TaskGraph([1, 2, 3], {(0, 1): 10, (1, 2): 20})
        levels = compute_levels(g)
        assert levels.t_level == (0, 11, 33)
        assert levels.b_level == (36, 25, 3)
        assert levels.static_level == (6, 5, 3)

    def test_caching_returns_same_object(self):
        g = paper_example_dag()
        assert compute_levels(g) is compute_levels(g)

    def test_priority_helper(self):
        g = paper_example_dag()
        levels = compute_levels(g)
        assert levels.priority(0) == 19  # b + t of n1


class TestCriticalPath:
    def test_paper_example_path(self):
        length, path = critical_path(paper_example_dag())
        assert length == 19
        assert path == (0, 1, 4, 5)  # n1 → n2 → n5 → n6

    def test_chain_path(self):
        g = TaskGraph([1, 1, 1], {(0, 1): 1, (1, 2): 1})
        length, path = critical_path(g)
        assert path == (0, 1, 2)
        assert length == 5

    def test_single_node(self):
        length, path = critical_path(TaskGraph([3], {}))
        assert (length, path) == (3, (0,))


class TestCcr:
    def test_paper_example(self):
        g = paper_example_dag()
        assert graph_ccr(g) == pytest.approx(g.mean_communication / g.mean_computation)

    def test_zero_comm(self):
        g = TaskGraph([1, 1], {(0, 1): 0})
        assert graph_ccr(g) == 0.0


class TestPriorityOrder:
    def test_paper_example_order(self):
        # b+t: n1=19, n2=19, n3=19, n4=14, n5=19, n6=19.
        # Ties break by larger b-level then id: n1(19) n2(16) n3(16) n5(12) n6(2), n4 last.
        order = priority_order(paper_example_dag())
        assert order.index(3) == len(order) - 1  # n4 has strictly lowest priority
        assert order[0] == 0

    def test_all_nodes_present(self):
        g = paper_example_dag()
        assert sorted(priority_order(g)) == list(range(g.num_nodes))


@given(task_graphs())
def test_level_invariants(graph):
    levels = compute_levels(graph)
    for n in range(graph.num_nodes):
        w = graph.weight(n)
        # b-level and static level include the node's own weight.
        assert levels.b_level[n] >= w
        assert levels.static_level[n] >= w
        # Communication only adds length.
        assert levels.b_level[n] >= levels.static_level[n]
        assert levels.t_level[n] >= 0
        # t+b never exceeds the CP length; some node attains it.
        assert levels.t_level[n] + levels.b_level[n] <= levels.cp_length + 1e-9
    assert any(
        abs(levels.t_level[n] + levels.b_level[n] - levels.cp_length) < 1e-9
        for n in range(graph.num_nodes)
    )


@given(task_graphs())
def test_levels_recurrences(graph):
    levels = compute_levels(graph)
    for n in range(graph.num_nodes):
        if graph.succs(n):
            expected_b = graph.weight(n) + max(
                graph.comm_cost(n, c) + levels.b_level[c] for c in graph.succs(n)
            )
            expected_sl = graph.weight(n) + max(
                levels.static_level[c] for c in graph.succs(n)
            )
        else:
            expected_b = graph.weight(n)
            expected_sl = graph.weight(n)
        assert levels.b_level[n] == pytest.approx(expected_b)
        assert levels.static_level[n] == pytest.approx(expected_sl)
        for c in graph.succs(n):
            assert (
                levels.t_level[c]
                >= levels.t_level[n] + graph.weight(n) + graph.comm_cost(n, c) - 1e-9
            )
