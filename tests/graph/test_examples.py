"""Unit tests for the paper's worked-example fixtures."""

from repro.graph.examples import (
    PAPER_OPTIMAL_LENGTH,
    paper_example_dag,
    paper_example_system,
)


class TestPaperExampleDag:
    def test_shape(self):
        g = paper_example_dag()
        assert g.num_nodes == 6
        assert g.num_edges == 7

    def test_weights(self):
        g = paper_example_dag()
        assert g.weights == (2, 3, 3, 4, 5, 2)

    def test_edges(self):
        g = paper_example_dag()
        assert g.edges == {
            (0, 1): 1.0, (0, 2): 1.0, (0, 3): 2.0,
            (1, 4): 1.0, (2, 4): 1.0, (3, 5): 4.0, (4, 5): 5.0,
        }

    def test_labels_match_paper(self):
        g = paper_example_dag()
        assert g.labels == ("n1", "n2", "n3", "n4", "n5", "n6")

    def test_single_entry_single_exit(self):
        g = paper_example_dag()
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (5,)


class TestPaperExampleSystem:
    def test_three_pe_ring(self):
        s = paper_example_system()
        assert s.num_pes == 3
        assert s.links == frozenset({(0, 1), (1, 2), (0, 2)})

    def test_homogeneous(self):
        assert paper_example_system().is_homogeneous

    def test_optimal_constant(self):
        assert PAPER_OPTIMAL_LENGTH == 14.0
