"""Unit tests for the layered random generator."""

import pytest

from repro.errors import WorkloadError
from repro.graph.generators.layered import layered_random_graph


class TestLayeredGraph:
    def test_node_count(self):
        g = layered_random_graph(4, 3, seed=0)
        assert g.num_nodes == 12

    def test_deterministic(self):
        a = layered_random_graph(3, 3, seed=5)
        b = layered_random_graph(3, 3, seed=5)
        assert a == b

    def test_entries_in_first_layer(self):
        g = layered_random_graph(4, 3, seed=1)
        assert all(n < 3 for n in g.entry_nodes)

    def test_every_non_entry_has_parent(self):
        g = layered_random_graph(5, 4, seed=2, edge_prob=0.05, skip_prob=0.0)
        for n in range(4, g.num_nodes):
            assert g.preds(n), f"node {n} has no parent"

    def test_edges_point_forward(self):
        g = layered_random_graph(4, 4, seed=3)
        for (u, v) in g.edges:
            assert u // 4 < v // 4  # strictly later layer

    def test_skip_edges_span_two_layers(self):
        g = layered_random_graph(5, 2, seed=4, edge_prob=0.0, skip_prob=1.0)
        spans = {(v // 2) - (u // 2) for (u, v) in g.edges}
        assert 2 in spans

    def test_single_layer(self):
        g = layered_random_graph(1, 5, seed=0)
        assert g.num_edges == 0

    def test_invalid_dims(self):
        with pytest.raises(WorkloadError):
            layered_random_graph(0, 3)
        with pytest.raises(WorkloadError):
            layered_random_graph(3, 0)

    def test_invalid_probs(self):
        with pytest.raises(WorkloadError):
            layered_random_graph(2, 2, edge_prob=1.5)

    def test_ccr_scales_communication(self):
        lo = layered_random_graph(3, 3, seed=6, ccr=0.1)
        hi = layered_random_graph(3, 3, seed=6, ccr=10.0)
        assert hi.mean_communication > lo.mean_communication
