"""Unit tests for the classic structured generators."""

import pytest

from repro.errors import WorkloadError
from repro.graph.generators.classic import (
    chain_graph,
    diamond_graph,
    fork_join_graph,
    in_tree_graph,
    independent_tasks,
    out_tree_graph,
)
from repro.graph.validate import is_connected_dag


class TestChain:
    def test_structure(self):
        g = chain_graph(4, comp=3, comm=1)
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (3,)

    def test_single(self):
        g = chain_graph(1)
        assert g.num_edges == 0

    def test_invalid_length(self):
        with pytest.raises(WorkloadError):
            chain_graph(0)


class TestIndependent:
    def test_no_edges(self):
        g = independent_tasks(5)
        assert g.num_edges == 0
        assert g.entry_nodes == tuple(range(5))

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            independent_tasks(0)


class TestForkJoin:
    def test_structure(self):
        g = fork_join_graph(3)
        assert g.num_nodes == 5
        assert g.num_edges == 6
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (4,)

    def test_width_one(self):
        g = fork_join_graph(1)
        assert g.num_nodes == 3

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            fork_join_graph(0)


class TestTrees:
    def test_out_tree_counts(self):
        g = out_tree_graph(2, 2)
        assert g.num_nodes == 7  # 1 + 2 + 4
        assert g.num_edges == 6
        assert g.entry_nodes == (0,)
        assert len(g.exit_nodes) == 4

    def test_out_tree_depth_zero(self):
        g = out_tree_graph(0)
        assert g.num_nodes == 1

    def test_out_tree_ternary(self):
        g = out_tree_graph(1, 3)
        assert g.num_nodes == 4
        assert len(g.succs(0)) == 3

    def test_in_tree_mirrors_out_tree(self):
        g = in_tree_graph(2, 2)
        assert g.num_nodes == 7
        assert len(g.entry_nodes) == 4
        assert g.exit_nodes == (6,)

    def test_in_tree_is_topologically_labelled(self):
        g = in_tree_graph(3, 2)
        for (u, v) in g.edges:
            assert u < v

    def test_invalid_tree(self):
        with pytest.raises(WorkloadError):
            out_tree_graph(-1)


class TestDiamond:
    def test_counts(self):
        g = diamond_graph(3)
        # widths 1,2,3,2,1 = 9 nodes
        assert g.num_nodes == 9
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (8,)

    def test_connected(self):
        assert is_connected_dag(diamond_graph(4))

    def test_size_one(self):
        g = diamond_graph(1)
        assert g.num_nodes == 1

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            diamond_graph(0)
