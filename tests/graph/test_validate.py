"""Unit tests for repro.graph.validate."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graph.taskgraph import TaskGraph
from repro.graph.validate import check_acyclic, is_connected_dag, validate_graph


class TestCheckAcyclic:
    def test_accepts_dag(self):
        check_acyclic(3, [(0, 1), (1, 2), (0, 2)])

    def test_rejects_cycle(self):
        with pytest.raises(CycleError):
            check_acyclic(3, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_two_node_cycle(self):
        with pytest.raises(CycleError):
            check_acyclic(2, [(0, 1), (1, 0)])

    def test_accepts_empty(self):
        check_acyclic(5, [])

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        check_acyclic(n, [(i, i + 1) for i in range(n - 1)])


class TestValidateGraph:
    def test_accepts_valid(self):
        validate_graph([1, 2], {(0, 1): 3})

    def test_rejects_empty_nodes(self):
        with pytest.raises(GraphError, match="no nodes"):
            validate_graph([], {})

    def test_reports_all_weight_problems(self):
        with pytest.raises(GraphError) as exc:
            validate_graph([0, -1, 1], {})
        assert "node 0" in str(exc.value)
        assert "node 1" in str(exc.value)

    def test_rejects_unknown_edge_node(self):
        with pytest.raises(GraphError, match="unknown node"):
            validate_graph([1], {(0, 3): 1})

    def test_rejects_negative_cost(self):
        with pytest.raises(GraphError, match="negative cost"):
            validate_graph([1, 1], {(0, 1): -2})

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            validate_graph([1, 1], {(0, 0): 1})

    def test_rejects_cycle(self):
        with pytest.raises(CycleError):
            validate_graph([1, 1], {(0, 1): 1, (1, 0): 1})


class TestIsConnectedDag:
    def test_connected(self):
        g = TaskGraph([1, 1, 1], {(0, 1): 1, (0, 2): 1})
        assert is_connected_dag(g)

    def test_disconnected(self):
        g = TaskGraph([1, 1], {})
        assert not is_connected_dag(g)

    def test_single_node(self):
        assert is_connected_dag(TaskGraph([1], {}))
