"""Unit tests for the numerical-kernel task graphs."""

import pytest

from repro.errors import WorkloadError
from repro.graph.generators.kernels import (
    divide_and_conquer_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
    lu_decomposition_graph,
)
from repro.graph.validate import is_connected_dag


class TestGaussianElimination:
    def test_node_count_formula(self):
        # (m-1)(m+2)/2 nodes for an m×m matrix.
        for m in (2, 3, 4, 5):
            g = gaussian_elimination_graph(m)
            assert g.num_nodes == (m - 1) * (m + 2) // 2

    def test_connected(self):
        assert is_connected_dag(gaussian_elimination_graph(4))

    def test_single_entry(self):
        g = gaussian_elimination_graph(4)
        assert len(g.entry_nodes) == 1
        assert g.label(g.entry_nodes[0]) == "P0"

    def test_costs_shrink_with_step(self):
        g = gaussian_elimination_graph(5)
        p0 = g.weight(g.index_of("P0"))
        p3 = g.weight(g.index_of("P3"))
        assert p3 < p0

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            gaussian_elimination_graph(1)


class TestLu:
    def test_structure(self):
        g = lu_decomposition_graph(3)
        assert is_connected_dag(g)
        assert g.index_of("D0") in g.entry_nodes

    def test_grows_quadratically(self):
        assert lu_decomposition_graph(4).num_nodes > lu_decomposition_graph(3).num_nodes

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            lu_decomposition_graph(1)


class TestFft:
    def test_node_count(self):
        # (stages+1) × n nodes.
        g = fft_graph(3)
        assert g.num_nodes == 4 * 8

    def test_butterfly_dependencies(self):
        g = fft_graph(2)
        # Stage-1 node 0 depends on stage-0 nodes 0 and 1.
        nid = g.index_of("S1[0]")
        preds = {g.label(p) for p in g.preds(nid)}
        assert preds == {"S0[0]", "S0[1]"}

    def test_connected(self):
        assert is_connected_dag(fft_graph(2))

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            fft_graph(0)


class TestLaplace:
    def test_wavefront_structure(self):
        g = laplace_graph(3)
        assert g.num_nodes == 9
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (8,)
        # Interior point depends on north and west neighbours.
        nid = g.index_of("(1,1)")
        assert {g.label(p) for p in g.preds(nid)} == {"(0,1)", "(1,0)"}

    def test_single_cell(self):
        assert laplace_graph(1).num_nodes == 1

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            laplace_graph(0)


class TestDivideAndConquer:
    def test_counts(self):
        g = divide_and_conquer_graph(2)
        # divide: 1+2+4, conquer: 2+1 → 10 nodes
        assert g.num_nodes == 10
        assert g.entry_nodes == (0,)
        assert len(g.exit_nodes) == 1

    def test_depth_zero(self):
        assert divide_and_conquer_graph(0).num_nodes == 1

    def test_connected(self):
        assert is_connected_dag(divide_and_conquer_graph(3))

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            divide_and_conquer_graph(-1)


class TestCommScaling:
    def test_comm_scale_zero_means_free_edges(self):
        g = gaussian_elimination_graph(4, comm_scale=0.0)
        assert all(c == 0 for c in g.edges.values())

    def test_comm_scale_doubles(self):
        a = fft_graph(2, comm_scale=1.0)
        b = fft_graph(2, comm_scale=2.0)
        assert b.mean_communication == pytest.approx(2 * a.mean_communication)
