"""Unit tests for repro.graph.taskgraph."""

import pytest
from hypothesis import given

from repro.errors import CycleError, GraphError
from repro.graph.taskgraph import TaskGraph
from tests.strategies import task_graphs


def simple_graph():
    return TaskGraph([1, 2, 3], {(0, 1): 5, (0, 2): 6, (1, 2): 7})


class TestConstruction:
    def test_basic_properties(self):
        g = simple_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.weight(1) == 2.0
        assert g.comm_cost(0, 2) == 6.0

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([], {})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 0], {})
        with pytest.raises(GraphError):
            TaskGraph([1, -2], {})

    def test_negative_edge_cost_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {(0, 1): -1})

    def test_zero_edge_cost_allowed(self):
        g = TaskGraph([1, 1], {(0, 1): 0})
        assert g.comm_cost(0, 1) == 0.0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {(0, 0): 1})

    def test_unknown_node_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {(0, 5): 1})

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph([1, 1, 1], {(0, 1): 1, (1, 2): 1, (2, 0): 1})

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph([1, 1], {(0, 1): 1, (1, 0): 1})

    def test_default_labels_one_based(self):
        g = simple_graph()
        assert g.labels == ("n1", "n2", "n3")

    def test_custom_labels(self):
        g = TaskGraph([1, 1], {(0, 1): 1}, labels=["src", "dst"])
        assert g.label(0) == "src"
        assert g.index_of("dst") == 1

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            simple_graph().index_of("nope")

    def test_label_length_mismatch(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {}, labels=["only-one"])

    def test_from_lists(self):
        g = TaskGraph.from_lists([1, 1], [(0, 1, 9)])
        assert g.comm_cost(0, 1) == 9.0


class TestAdjacency:
    def test_preds_succs(self):
        g = simple_graph()
        assert g.preds(2) == (0, 1)
        assert g.succs(0) == (1, 2)
        assert g.preds(0) == ()
        assert g.succs(2) == ()

    def test_entry_exit(self):
        g = simple_graph()
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (2,)

    def test_multi_entry_exit(self):
        g = TaskGraph([1, 1, 1, 1], {(0, 2): 1, (1, 3): 1})
        assert g.entry_nodes == (0, 1)
        assert g.exit_nodes == (2, 3)

    def test_pred_edges(self):
        g = simple_graph()
        assert list(g.pred_edges(2)) == [(0, 6.0), (1, 7.0)]

    def test_succ_edges(self):
        g = simple_graph()
        assert list(g.succ_edges(0)) == [(1, 5.0), (2, 6.0)]


class TestTopologicalOrder:
    def test_respects_precedence(self):
        g = simple_graph()
        order = g.topological_order
        pos = {n: i for i, n in enumerate(order)}
        for (u, v) in g.edges:
            assert pos[u] < pos[v]

    def test_deterministic_smallest_first(self):
        g = TaskGraph([1, 1, 1], {})
        assert g.topological_order == (0, 1, 2)


class TestAggregates:
    def test_totals(self):
        g = simple_graph()
        assert g.total_computation == 6.0
        assert g.total_communication == 18.0
        assert g.mean_computation == 2.0
        assert g.mean_communication == 6.0

    def test_edgeless_mean_comm_zero(self):
        g = TaskGraph([1, 2], {})
        assert g.mean_communication == 0.0


class TestValueSemantics:
    def test_equality(self):
        assert simple_graph() == simple_graph()

    def test_inequality_weights(self):
        a = TaskGraph([1, 1], {(0, 1): 1})
        b = TaskGraph([1, 2], {(0, 1): 1})
        assert a != b

    def test_hash_consistent(self):
        assert hash(simple_graph()) == hash(simple_graph())

    def test_repr_contains_counts(self):
        assert "v=3" in repr(simple_graph())


class TestInducedPrefix:
    def test_valid_prefix(self):
        g = simple_graph()
        sub = g.induced_prefix([0, 1])
        assert sub.num_nodes == 2
        assert sub.edges == {(0, 1): 5.0}

    def test_non_downward_closed_rejected(self):
        with pytest.raises(GraphError):
            simple_graph().induced_prefix([1, 2])

    def test_full_prefix_is_whole_graph(self):
        g = simple_graph()
        sub = g.induced_prefix(range(3))
        assert sub.num_nodes == 3
        assert sub.edges == g.edges


@given(task_graphs())
def test_topological_order_property(graph):
    pos = {n: i for i, n in enumerate(graph.topological_order)}
    assert sorted(pos) == list(range(graph.num_nodes))
    for (u, v) in graph.edges:
        assert pos[u] < pos[v]


@given(task_graphs())
def test_entry_exit_consistency(graph):
    for n in graph.entry_nodes:
        assert graph.preds(n) == ()
    for n in graph.exit_nodes:
        assert graph.succs(n) == ()
    assert len(graph.entry_nodes) >= 1
    assert len(graph.exit_nodes) >= 1
