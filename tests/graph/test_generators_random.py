"""Unit tests for the §4.1 random generator."""

import pytest

from repro.errors import WorkloadError
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.validate import is_connected_dag


class TestSpecValidation:
    def test_too_few_nodes(self):
        with pytest.raises(WorkloadError):
            PaperGraphSpec(num_nodes=1, ccr=1.0)

    def test_bad_ccr(self):
        with pytest.raises(WorkloadError):
            PaperGraphSpec(num_nodes=10, ccr=0.0)

    def test_bad_mean(self):
        with pytest.raises(WorkloadError):
            PaperGraphSpec(num_nodes=10, ccr=1.0, mean_comp=-1)

    def test_derived_parameters(self):
        spec = PaperGraphSpec(num_nodes=20, ccr=0.5)
        assert spec.mean_out_degree == 2.0
        assert spec.mean_comm == 20.0


class TestGeneratedGraphs:
    def test_deterministic(self):
        spec = PaperGraphSpec(num_nodes=14, ccr=1.0, seed=7)
        assert paper_random_graph(spec) == paper_random_graph(spec)

    def test_seed_changes_graph(self):
        a = paper_random_graph(PaperGraphSpec(num_nodes=14, ccr=1.0, seed=1))
        b = paper_random_graph(PaperGraphSpec(num_nodes=14, ccr=1.0, seed=2))
        assert a != b

    def test_node_count(self):
        g = paper_random_graph(PaperGraphSpec(num_nodes=18, ccr=1.0, seed=0))
        assert g.num_nodes == 18

    def test_connected_single_entry(self):
        for seed in range(5):
            g = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=seed))
            assert is_connected_dag(g)
            assert g.entry_nodes == (0,)

    def test_positive_costs(self):
        g = paper_random_graph(PaperGraphSpec(num_nodes=16, ccr=10.0, seed=3))
        assert all(w > 0 for w in g.weights)
        assert all(c > 0 for c in g.edges.values())

    def test_mean_computation_near_40(self):
        # Aggregate over several graphs: the distribution mean is 40.
        total, count = 0.0, 0
        for seed in range(20):
            g = paper_random_graph(PaperGraphSpec(num_nodes=30, ccr=1.0, seed=seed))
            total += sum(g.weights)
            count += g.num_nodes
        assert 35 < total / count < 45

    def test_ccr_scales_comm_costs(self):
        low = paper_random_graph(PaperGraphSpec(num_nodes=20, ccr=0.1, seed=0))
        high = paper_random_graph(PaperGraphSpec(num_nodes=20, ccr=10.0, seed=0))
        assert high.mean_communication > 20 * low.mean_communication

    def test_connectivity_grows_with_size(self):
        # Mean out-degree is v/10, so edge density rises with v.
        small_deg = []
        large_deg = []
        for seed in range(10):
            s = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=seed))
            l = paper_random_graph(PaperGraphSpec(num_nodes=32, ccr=1.0, seed=seed))
            small_deg.append(s.num_edges / s.num_nodes)
            large_deg.append(l.num_edges / l.num_nodes)
        assert sum(large_deg) / 10 > sum(small_deg) / 10

    def test_name_encodes_parameters(self):
        g = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=0.1, seed=5))
        assert "12" in g.name and "0.1" in g.name and "5" in g.name
