"""Driver mechanics: collection, suppression, baseline, report schema."""

import json

import pytest

from repro.analysis import lint_paths, load_baseline, write_baseline
from repro.analysis.driver import collect_files, module_parts


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path; returns the root."""
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    return tmp_path


BARE = "try:\n    pass\nexcept:\n    pass\n"


class TestCollection:
    def test_directories_expand_recursively(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/util/a.py": "x = 1\n",
            "src/repro/util/sub/b.py": "y = 2\n",
            "src/repro/util/notes.txt": "not python\n",
        })
        files = collect_files([root / "src"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_pycache_skipped(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/util/__pycache__/a.py": "x = 1\n",
            "src/repro/util/a.py": "x = 1\n",
        })
        files = collect_files([tmp_path / "src"])
        assert len(files) == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_module_parts(self, tmp_path):
        assert module_parts(
            tmp_path / "src/repro/search/astar.py"
        ) == ("repro", "search", "astar")
        assert module_parts(
            tmp_path / "src/repro/search/__init__.py"
        ) == ("repro", "search")
        assert module_parts(tmp_path / "tests/test_x.py") is None

    def test_parse_error_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/bad.py": "def f(:\n"})
        report = lint_paths([root / "src"], root=root)
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.findings[0].path == "src/repro/util/bad.py"


class TestSuppression:
    def test_inline_marker_suppresses(self, tmp_path):
        src = "try:\n    pass\nexcept:  # repro: ignore[bare-except]\n    pass\n"
        root = make_tree(tmp_path, {"src/repro/util/a.py": src})
        report = lint_paths([root / "src"], root=root)
        assert report.findings == []
        assert report.suppressed == 1

    def test_standalone_comment_covers_next_line(self, tmp_path):
        src = (
            "try:\n    pass\n"
            "# repro: ignore[bare-except]\n"
            "except:\n    pass\n"
        )
        root = make_tree(tmp_path, {"src/repro/util/a.py": src})
        report = lint_paths([root / "src"], root=root)
        assert report.findings == []
        assert report.suppressed == 1

    def test_marker_is_rule_scoped(self, tmp_path):
        src = "try:\n    pass\nexcept:  # repro: ignore[float-compare]\n    pass\n"
        root = make_tree(tmp_path, {"src/repro/util/a.py": src})
        report = lint_paths([root / "src"], root=root)
        assert [f.rule for f in report.findings] == ["bare-except"]

    def test_multiple_ids_in_one_marker(self, tmp_path):
        src = (
            "try:\n    pass\n"
            "except:  # repro: ignore[bare-except, float-compare]\n"
            "    pass\n"
        )
        root = make_tree(tmp_path, {"src/repro/util/a.py": src})
        assert lint_paths([root / "src"], root=root).findings == []


class TestBaseline:
    def test_baselined_findings_pass_and_count(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
        first = lint_paths([root / "src"], root=root)
        assert len(first.findings) == 1
        bl = tmp_path / "bl.json"
        write_baseline(bl, first.findings)
        second = lint_paths([root / "src"], baseline=bl, root=root)
        assert second.findings == []
        assert second.baselined == 1
        assert second.stale_baseline == []
        assert second.ok

    def test_new_findings_still_block(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
        bl = tmp_path / "bl.json"
        write_baseline(bl, lint_paths([root / "src"], root=root).findings)
        (root / "src/repro/util/b.py").write_text(BARE)
        report = lint_paths([root / "src"], baseline=bl, root=root)
        assert [f.path for f in report.findings] == ["src/repro/util/b.py"]

    def test_stale_entries_reported(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
        bl = tmp_path / "bl.json"
        write_baseline(bl, lint_paths([root / "src"], root=root).findings)
        (root / "src/repro/util/a.py").write_text("x = 1\n")
        report = lint_paths([root / "src"], baseline=bl, root=root)
        assert report.findings == []
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0]["rule"] == "bare-except"

    def test_matching_is_line_number_free(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
        bl = tmp_path / "bl.json"
        write_baseline(bl, lint_paths([root / "src"], root=root).findings)
        # Shift the violation down; the baseline must still match.
        (root / "src/repro/util/a.py").write_text("\n\n# pad\n" + BARE)
        report = lint_paths([root / "src"], baseline=bl, root=root)
        assert report.findings == []
        assert report.baselined == 1

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bl.json"
        bad.write_text("[]")
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text(json.dumps({"entries": [{"rule": 1}]}))
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_write_collapses_duplicate_keys(self, tmp_path):
        root = make_tree(
            tmp_path, {"src/repro/util/a.py": BARE + "\n" + BARE}
        )
        findings = lint_paths([root / "src"], root=root).findings
        assert len(findings) == 2
        bl = tmp_path / "bl.json"
        assert write_baseline(bl, findings) == 1  # same (rule, path, message)
        report = lint_paths([root / "src"], baseline=bl, root=root)
        assert report.findings == [] and report.baselined == 2


class TestReportSchema:
    def test_json_schema(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
        doc = lint_paths([root / "src"], root=root).as_dict()
        assert doc["version"] == 1
        assert set(doc) == {
            "version", "files", "seconds", "rules", "counts",
            "findings", "stale_baseline",
        }
        assert set(doc["counts"]) == {
            "findings", "suppressed", "baselined", "stale_baseline"
        }
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "path", "line", "message", "severity"}
        assert finding["rule"] == "bare-except"
        json.dumps(doc)  # round-trippable

    def test_rule_selection(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
        report = lint_paths(
            [root / "src"], rules=["float-compare"], root=root
        )
        assert report.findings == []
        assert report.rules == ("float-compare",)

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths([tmp_path], rules=["no-such-rule"], root=tmp_path)

    def test_findings_sorted(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/util/b.py": BARE,
            "src/repro/util/a.py": BARE,
        })
        report = lint_paths([root / "src"], root=root)
        assert [f.path for f in report.findings] == [
            "src/repro/util/a.py", "src/repro/util/b.py"
        ]
