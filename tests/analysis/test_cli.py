"""``repro lint`` CLI behavior, plus the repo-self-clean gate."""

import json
import os
import time

import pytest

from repro.cli import main

from tests.analysis.test_driver import BARE, make_tree

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture
def dirty_tree(tmp_path, monkeypatch):
    root = make_tree(tmp_path, {"src/repro/util/a.py": BARE})
    monkeypatch.chdir(root)
    return root


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        make_tree(tmp_path, {"src/repro/util/a.py": "x = 1\n"})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_locations(self, dirty_tree, capsys):
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/util/a.py:3: [bare-except]" in out

    def test_json_format(self, dirty_tree, capsys):
        assert main(["lint", "--format", "json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["counts"]["findings"] == 1

    def test_out_file_written(self, dirty_tree, capsys):
        main(["lint", "--out", "report.json", "src"])
        doc = json.loads((dirty_tree / "report.json").read_text())
        assert doc["findings"][0]["rule"] == "bare-except"

    def test_rules_filter(self, dirty_tree):
        assert main(["lint", "--rules", "float-compare", "src"]) == 0

    def test_unknown_rule_exits_two(self, dirty_tree, capsys):
        assert main(["lint", "--rules", "bogus", "src"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, dirty_tree, capsys):
        assert main(["lint", "no/such/dir"]) == 2

    def test_list_rules(self, dirty_tree, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("float-compare", "layering", "engine-contract",
                       "bare-except", "swallowed-error", "mutable-default",
                       "unused-import", "worker-shared-state",
                       "blocking-recv"):
            assert rule_id in out

    def test_baseline_roundtrip_and_check(self, dirty_tree, capsys):
        assert main(["lint", "--write-baseline", "bl.json", "src"]) == 0
        assert main(["lint", "--baseline", "bl.json", "src"]) == 0
        # Fix the violation: the entry goes stale.
        (dirty_tree / "src/repro/util/a.py").write_text("x = 1\n")
        assert main(["lint", "--baseline", "bl.json", "src"]) == 0
        assert main(
            ["lint", "--baseline", "bl.json", "--check-baseline", "src"]
        ) == 1
        out = capsys.readouterr().out
        assert "stale" in out


class TestRepoIsClean:
    def test_self_lint_clean_and_fast(self, monkeypatch, capsys):
        """The committed tree lints clean — the same gate CI enforces —
        and a full run stays under the 10 s budget."""
        monkeypatch.chdir(REPO_ROOT)
        t0 = time.perf_counter()
        code = main(["lint", "src", "tests",
                     "--baseline", ".repro-lint-baseline.json"])
        elapsed = time.perf_counter() - t0
        out = capsys.readouterr().out
        assert code == 0, f"repro lint found problems:\n{out}"
        assert elapsed < 10.0, f"lint took {elapsed:.1f}s (budget 10s)"

    def test_baseline_is_minimal(self, monkeypatch):
        """The committed baseline carries no stale entries."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "tests",
                     "--baseline", ".repro-lint-baseline.json",
                     "--check-baseline"]) == 0
