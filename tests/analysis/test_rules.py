"""True-positive / true-negative fixture pairs for every rule.

Fixtures are written into tmp_path fake trees (``src/repro/...``)
rather than committed as files, because CI lints the real ``src`` and
``tests`` directories and committed violations would fail the gate.
"""

from repro.analysis import lint_paths

from tests.analysis.test_driver import make_tree


def rules_hit(tmp_path, files, rules=None):
    root = make_tree(tmp_path, files)
    report = lint_paths([root / "src"], rules=rules, root=root)
    return [f.rule for f in report.findings], report


class TestFloatCompare:
    RULE = ["float-compare"]

    def test_tp_branch_decision_on_cost_values(self, tmp_path):
        src = (
            "def prune(cf, upper, stats):\n"
            "    if cf > upper:\n"
            "        stats.cuts += 1\n"
        )
        hits, report = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == ["float-compare"]
        assert "cf > upper" in report.findings[0].message

    def test_tp_while_decision(self, tmp_path):
        src = (
            "def drain(f, threshold):\n"
            "    while f <= threshold:\n"
            "        step()\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == ["float-compare"]

    def test_tn_numeric_literal_guard(self, tmp_path):
        src = "def check(length):\n    if length <= 0:\n        raise ValueError\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_running_extremum_update(self, tmp_path):
        src = (
            "def track(f, lower):\n"
            "    if f > lower:\n"
            "        lower = f\n"
            "    return lower\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_incumbent_replacement(self, tmp_path):
        src = (
            "def improve(child, best, best_len):\n"
            "    if child.makespan < best_len:\n"
            "        best_len = child.makespan\n"
            "        best = child\n"
            "    return best, best_len\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_non_cost_identifiers(self, tmp_path):
        src = "def cmp(a, b):\n    if a < b:\n        return a\n    return b\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_tolerance_module_itself(self, tmp_path):
        src = "def leq(f, bound):\n    if f <= bound:\n        return True\n    return False\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/tolerance.py": src}, self.RULE
        )
        assert hits == []


class TestLayering:
    RULE = ["layering"]

    def test_tp_upward_import(self, tmp_path):
        src = "from repro.parallel.hda import hda_astar_schedule\n"
        hits, report = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == ["layering"]
        assert "repro.search" in report.findings[0].message

    def test_tp_deferred_function_local_import(self, tmp_path):
        src = (
            "def load():\n"
            "    from repro.service.cache import ResultCache\n"
            "    return ResultCache\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/workloads/x.py": src}, self.RULE
        )
        assert hits == ["layering"]

    def test_tp_freestanding_package_importing_repro(self, tmp_path):
        src = "from repro.util.timing import Budget\n"
        hits, report = rules_hit(
            tmp_path, {"src/repro/obs/x.py": src}, self.RULE
        )
        assert hits == ["layering"]
        assert "freestanding" in report.findings[0].message

    def test_tp_relative_import_resolved(self, tmp_path):
        src = "from ..service import cache\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == ["layering"]

    def test_tp_unknown_package_flagged(self, tmp_path):
        src = "from repro.util.timing import Budget\n"
        hits, report = rules_hit(
            tmp_path, {"src/repro/newpkg/x.py": src}, self.RULE
        )
        assert hits == ["layering"]
        assert "layer map" in report.findings[0].message

    def test_tn_downward_import(self, tmp_path):
        src = "from repro.search.astar import astar_schedule\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_cli_imports_anything(self, tmp_path):
        src = "from repro.service.server import SolverServer\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/cli.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_same_package(self, tmp_path):
        src = "from repro.search.costs import make_cost_function\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/search/x.py": src}, self.RULE
        )
        assert hits == []


CONFORMING_ENGINE = (
    "from repro.search.result import SearchResult\n"
    "\n"
    "def my_schedule(graph, system, *, budget=None, incumbent=None,\n"
    "                probe=None):\n"
    "    return SearchResult(schedule=None, optimal=True, bound=1.0,\n"
    "                        stats=None, algorithm='my',\n"
    "                        lower_bound=0.0, interrupted=None)\n"
)


class TestEngineContract:
    RULE = ["engine-contract"]

    def test_tp_missing_kwonly_params(self, tmp_path):
        files = {
            "src/repro/search/myeng.py": (
                "from repro.search.result import SearchResult\n"
                "def my_schedule(graph, system, *, budget=None):\n"
                "    return SearchResult(lower_bound=0.0, interrupted=None)\n"
            ),
            "src/repro/search/__init__.py": (
                "from repro.search.myeng import my_schedule\n"
                "_ENGINE_LOADERS = {'my': lambda: my_schedule}\n"
            ),
        }
        hits, report = rules_hit(tmp_path, files, self.RULE)
        assert hits == ["engine-contract"]
        assert "incumbent, probe" in report.findings[0].message

    def test_tp_missing_result_fields(self, tmp_path):
        files = {
            "src/repro/search/myeng.py": (
                "from repro.search.result import SearchResult\n"
                "def my_schedule(graph, system, *, budget=None,\n"
                "                incumbent=None, probe=None):\n"
                "    return SearchResult(schedule=None, optimal=True)\n"
            ),
            "src/repro/search/__init__.py": (
                "from repro.search.myeng import my_schedule\n"
                "_ENGINE_LOADERS = {'my': lambda: my_schedule}\n"
            ),
        }
        hits, report = rules_hit(tmp_path, files, self.RULE)
        assert hits == ["engine-contract"]
        assert "lower_bound" in report.findings[0].message

    def test_tp_register_engine_call_checked(self, tmp_path):
        files = {
            "src/repro/parallel/myeng.py": (
                "from repro.search import register_engine\n"
                "def par_schedule(graph, system, *, budget=None):\n"
                "    pass\n"
                "register_engine('par', lambda: par_schedule)\n"
            ),
        }
        hits, report = rules_hit(tmp_path, files, self.RULE)
        assert "engine-contract" in hits
        assert any("incumbent" in f.message for f in report.findings)

    def test_tn_conforming_engine(self, tmp_path):
        files = {
            "src/repro/search/myeng.py": CONFORMING_ENGINE,
            "src/repro/search/__init__.py": (
                "from repro.search.myeng import my_schedule\n"
                "_ENGINE_LOADERS = {'my': lambda: my_schedule}\n"
            ),
        }
        hits, _ = rules_hit(tmp_path, files, self.RULE)
        assert hits == []

    def test_tn_unresolvable_module_skipped(self, tmp_path):
        # Loader resolves to a module outside the lint set: no verdict.
        files = {
            "src/repro/search/__init__.py": (
                "from repro.elsewhere.myeng import my_schedule\n"
                "_ENGINE_LOADERS = {'my': lambda: my_schedule}\n"
            ),
        }
        hits, _ = rules_hit(tmp_path, files, self.RULE)
        assert hits == []


class TestExcepts:
    def test_tp_bare_except(self, tmp_path):
        src = "try:\n    pass\nexcept:\n    pass\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, ["bare-except"]
        )
        assert hits == ["bare-except"]

    def test_tn_typed_except(self, tmp_path):
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, ["bare-except"]
        )
        assert hits == []

    def test_tp_swallowed_broad_exception(self, tmp_path):
        src = "try:\n    pass\nexcept Exception:\n    pass\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, ["swallowed-error"]
        )
        assert hits == ["swallowed-error"]

    def test_tp_swallowed_continue(self, tmp_path):
        src = (
            "for i in range(3):\n"
            "    try:\n        pass\n"
            "    except OSError:\n        continue\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, ["swallowed-error"]
        )
        assert hits == ["swallowed-error"]

    def test_tn_handler_that_records(self, tmp_path):
        src = (
            "import logging\n"
            "try:\n    pass\n"
            "except Exception as exc:\n"
            "    logging.exception('boom: %s', exc)\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, ["swallowed-error"]
        )
        assert hits == []

    def test_tn_narrow_pass_is_idiomatic(self, tmp_path):
        src = "try:\n    pass\nexcept KeyError:\n    pass\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, ["swallowed-error"]
        )
        assert hits == []


class TestMutableDefault:
    RULE = ["mutable-default"]

    def test_tp_list_default(self, tmp_path):
        src = "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n"
        hits, report = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == ["mutable-default"]
        assert "acc" in report.findings[0].message

    def test_tp_kwonly_dict_ctor_default(self, tmp_path):
        src = "def f(*, table=dict()):\n    return table\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == ["mutable-default"]

    def test_tn_none_sentinel_and_immutables(self, tmp_path):
        src = (
            "def f(x, acc=None, names=(), label=''):\n"
            "    acc = [] if acc is None else acc\n"
            "    return acc\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == []


class TestUnusedImport:
    RULE = ["unused-import"]

    def test_tp_unused(self, tmp_path):
        src = "import os\n\nx = 1\n"
        hits, report = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == ["unused-import"]
        assert report.findings[0].severity == "warning"

    def test_tn_used(self, tmp_path):
        src = "import os\n\nx = os.getcwd()\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_init_py_reexports(self, tmp_path):
        src = "from repro.util.timing import Budget\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/__init__.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_name_in_all_string(self, tmp_path):
        src = (
            "from repro.util.timing import Budget\n"
            "__all__ = ['Budget']\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_dotted_import_used_via_root(self, tmp_path):
        src = "import os.path\n\nx = os.path.sep\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == []


WORKER_MUTATION = (
    "RESULTS = []\n"
    "\n"
    "def _worker(q):\n"
    "    RESULTS.append(q)\n"
)


class TestWorkerSharedState:
    RULE = ["worker-shared-state"]

    def test_tp_mutator_call_on_module_global(self, tmp_path):
        hits, report = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": WORKER_MUTATION}, self.RULE
        )
        assert hits == ["worker-shared-state"]
        assert "RESULTS" in report.findings[0].message

    def test_tp_global_rebind(self, tmp_path):
        src = (
            "COUNT = 0\n"
            "def _worker(q):\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/service/x.py": src}, self.RULE
        )
        assert hits == ["worker-shared-state"]

    def test_tp_subscript_store(self, tmp_path):
        src = (
            "TABLE = {}\n"
            "def run(pool, items):\n"
            "    pool.map(_solve_one, items)\n"
            "def _solve_one(item):\n"
            "    TABLE[item] = 1\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == ["worker-shared-state"]

    def test_tp_reachable_through_helper(self, tmp_path):
        src = (
            "CACHE = {}\n"
            "def _worker(q):\n"
            "    _store(q)\n"
            "def _store(q):\n"
            "    CACHE[q] = True\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == ["worker-shared-state"]

    def test_tp_target_kwarg_entry_point(self, tmp_path):
        src = (
            "import threading\n"
            "STATE = []\n"
            "def pump(q):\n"
            "    STATE.append(q)\n"
            "def start():\n"
            "    threading.Thread(target=pump).start()\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == ["worker-shared-state"]

    def test_tn_local_shadow(self, tmp_path):
        src = (
            "RESULTS = []\n"
            "def _worker(q):\n"
            "    RESULTS = []\n"
            "    RESULTS.append(q)\n"
            "    return RESULTS\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_unreachable_function(self, tmp_path):
        src = (
            "RESULTS = []\n"
            "def parent_only(q):\n"
            "    RESULTS.append(q)\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_outside_concurrency_packages(self, tmp_path):
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": WORKER_MUTATION}, self.RULE
        )
        assert hits == []


class TestBlockingRecv:
    RULE = ["blocking-recv"]

    def test_tp_get_without_timeout(self, tmp_path):
        src = "def _worker(q):\n    item = q.get()\n    return item\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == ["blocking-recv"]

    def test_tp_bare_recv(self, tmp_path):
        src = "def pump(conn):\n    return conn.recv()\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/service/x.py": src}, self.RULE
        )
        assert hits == ["blocking-recv"]

    def test_tn_get_with_timeout(self, tmp_path):
        src = "def _worker(q):\n    return q.get(timeout=0.5)\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_get_nowait_and_dict_get(self, tmp_path):
        src = (
            "def peek(q, d):\n"
            "    a = q.get_nowait()\n"
            "    b = d.get('key')\n"
            "    return a, b\n"
        )
        hits, _ = rules_hit(
            tmp_path, {"src/repro/parallel/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_awaited_asyncio_get(self, tmp_path):
        src = "async def pump(q):\n    return await q.get()\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/service/x.py": src}, self.RULE
        )
        assert hits == []

    def test_tn_outside_concurrency_packages(self, tmp_path):
        src = "def f(q):\n    return q.get()\n"
        hits, _ = rules_hit(
            tmp_path, {"src/repro/util/x.py": src}, self.RULE
        )
        assert hits == []
