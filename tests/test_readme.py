"""The README's quickstart must stay executable.

Every fenced ``python`` code block in README.md is extracted and
executed, in document order, in one shared namespace (like a notebook:
later blocks may use names introduced by earlier ones).  A block that
raises fails the suite, so the quickstart cannot rot — the same
discipline ``test_examples_run.py`` applies to ``examples/``.

``bash``/``text``/``console`` blocks are documentation, not code under
test, and are not executed.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"

_FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def python_blocks() -> list[str]:
    return _FENCE.findall(README.read_text())


class TestReadme:
    def test_readme_exists_and_has_python_blocks(self):
        assert README.exists()
        blocks = python_blocks()
        assert len(blocks) >= 3, "README lost its executable quickstart"

    def test_quickstart_blocks_execute(self, capsys):
        """Run all python blocks in order, sharing one namespace."""
        namespace: dict = {"__name__": "readme"}
        for i, block in enumerate(python_blocks(), start=1):
            try:
                exec(compile(block, f"README.md[python block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # noqa: BLE001 - report which block
                pytest.fail(
                    f"README python block {i} failed: "
                    f"{type(exc).__name__}: {exc}\n--- block ---\n{block}"
                )
        out = capsys.readouterr().out
        # The quickstart prints a Gantt chart and the daemon metrics.
        assert "states expanded" in out
        assert "solved by" in out

    def test_blocks_are_self_contained_as_a_document(self):
        """Every name a block uses is imported somewhere in the README
        (guards against snippets that only ran because a previous test
        left state behind)."""
        text = "\n".join(python_blocks())
        for needed in ("TaskGraph", "ProcessorSystem", "astar_schedule",
                       "SolverServer", "ServerClient", "ResultCache"):
            assert re.search(rf"import .*{needed}|{needed}.*import", text), (
                f"README blocks use {needed} without importing it"
            )
