"""Quantitative schedule analysis.

Beyond the raw makespan, schedulers are judged on resource usage and on
how close they come to analytic limits.  These helpers compute the
standard figures of merit used by the examples and experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.analysis import compute_levels
from repro.schedule.schedule import Schedule

__all__ = ["ScheduleMetrics", "analyze_schedule", "communication_volume"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary of one schedule.

    Attributes
    ----------
    length:
        The makespan.
    serial_length:
        Total computation on one unit-speed PE (the serialization cost).
    speedup:
        ``serial_length / length`` — how much parallelism the schedule
        extracts.
    efficiency:
        ``speedup / PEs used``.
    used_pes:
        Number of PEs running at least one task.
    idle_time:
        Total idle time on used PEs inside the makespan.
    comm_volume:
        Total communication cost actually paid (cross-PE edges only).
    comm_edges:
        Number of edges that cross PEs.
    cp_slack:
        ``length − static CP length`` — distance from the
    communication-free critical-path lower bound (0 means the schedule
    is CP-tight).
    load_balance:
        max per-PE busy time / mean per-PE busy time over used PEs
        (1.0 = perfectly balanced).
    """

    length: float
    serial_length: float
    speedup: float
    efficiency: float
    used_pes: int
    idle_time: float
    comm_volume: float
    comm_edges: int
    cp_slack: float
    load_balance: float


def communication_volume(schedule: Schedule) -> tuple[float, int]:
    """Total paid communication cost and the number of cross-PE edges."""
    graph = schedule.graph
    system = schedule.system
    volume = 0.0
    count = 0
    for (u, v), c in graph.edges.items():
        pu, pv = schedule.pe_of(u), schedule.pe_of(v)
        if pu != pv:
            volume += system.comm_time(c, pu, pv)
            count += 1
    return volume, count


def analyze_schedule(schedule: Schedule) -> ScheduleMetrics:
    """Compute all figures of merit for one schedule."""
    graph = schedule.graph
    levels = compute_levels(graph)
    serial = graph.total_computation
    length = schedule.length
    used = schedule.used_pes
    busy = {pe: 0.0 for pe in used}
    for t in schedule.tasks:
        busy[t.pe] += t.duration
    mean_busy = sum(busy.values()) / len(used)
    volume, count = communication_volume(schedule)
    speedup = serial / length if length > 0 else 0.0
    return ScheduleMetrics(
        length=length,
        serial_length=serial,
        speedup=speedup,
        efficiency=speedup / len(used) if used else 0.0,
        used_pes=len(used),
        idle_time=schedule.idle_time(),
        comm_volume=volume,
        comm_edges=count,
        cp_slack=length - levels.static_cp_length,
        load_balance=(max(busy.values()) / mean_busy) if mean_busy > 0 else 1.0,
    )
