"""Incremental partial schedules — the payload of every search state.

A state in the scheduling state-space is a partial schedule: a
downward-closed sub-graph of the DAG placed onto processors (paper
§3.1).  This class is **immutable**; :meth:`extend` returns a new
partial schedule with one more node placed, sharing nothing mutable with
its parent.

Representation (delta encoding; see DESIGN.md):

* each expansion changes exactly one node's placement, so a child state
  stores only the delta ``(parent, node, pe, start, finish)`` plus O(1)
  incrementally-maintained aggregates — makespan, scheduled count, the
  scheduled-set bitmask, a used-PE bitmask, per-PE ready times, the set
  of nodes attaining the maximum finish time (so the paper cost function
  stops scanning all v finishes), a 64-bit Zobrist signature over
  the ``(node, pe, start)`` placement triples, and the load-bound
  aggregates — remaining total node weight, per-PE committed busy time,
  and total committed idle.  The composite lower bound
  (:class:`repro.search.costs.LoadBoundCost`) reads ``remaining_weight``
  and ``ready_time`` — O(P log P) per evaluation, never materializing
  anything; ``busy_time``/``total_idle`` decompose the ready times for
  reports and verification (``Σ busy + idle == Σ ready_time`` is
  property-tested);
* the full ``pes``/``starts``/``finishes`` arrays are materialized
  lazily by replaying the parent chain, and only for states that
  actually need them — i.e. states that get *expanded* (their children's
  ESTs read parent finishes) or turned into complete schedules.  The
  80-90% of candidates that die in duplicate detection or the upper
  bound never pay an O(v) copy;
* readiness is a bitmask test: node ``n`` is ready iff it is unscheduled
  and ``graph.pred_masks[n]`` is a subset of the scheduled mask;
* the duplicate-detection key is ``(mask, zobrist)`` — O(1) to derive
  for a candidate child via one XOR, making two different scheduling
  orders of the same placement collide — precisely the "state visited
  before" pruning in the paper's Figure-3 walk-through.  The exact
  ``(mask, pes, starts)`` signature remains available (lazily) for
  verification and diagnostics.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem
from repro.util.hashing import MASK64 as _MASK64
from repro.util.hashing import PE64 as _PE64
from repro.util.hashing import PHI64 as _PHI64
from repro.util.hashing import splitmix64 as _splitmix64

__all__ = ["PartialSchedule", "placement_key"]


def placement_key(node: int, pe: int, start: float) -> int:
    """64-bit Zobrist key of one ``(node, pe, start)`` placement.

    The per-placement keys XOR into the state signature, so they must be
    order-independent and individually well-mixed.  The "quantization" of
    the start time is its exact value via ``hash(float)`` (deterministic,
    not salted): equal placements always produce bit-identical starts
    because the EST is a max over identical operands whatever the
    placement order, so no epsilon bucketing is needed — or wanted, since
    bucketing would merge genuinely different states.  The mix is the
    splitmix64 finalizer, giving full avalanche over the 64-bit lane.

    NOTE: :meth:`PartialSchedule.child_signature` inlines this function
    for speed; the two copies must stay bit-identical (regression-tested
    in ``tests/property/test_state_equivalence.py``).
    """
    return _splitmix64(
        (node + 1) * _PHI64 + (pe + 1) * _PE64 + (hash(start) & _MASK64)
    )


class PartialSchedule:
    """An immutable, delta-encoded partial schedule of ``graph`` on ``system``.

    Use :meth:`empty` for the initial (empty) state and :meth:`extend`
    for expansion.  Direct construction is internal.
    """

    __slots__ = (
        "graph",
        "system",
        "mask",
        "ready_mask",
        "ready_time",
        "makespan",
        "num_scheduled",
        "last_node",
        "last_pe",
        "last_start",
        "last_finish",
        "zkey",
        "used_pes",
        "remaining_weight",
        "busy_time",
        "total_idle",
        "_parent",
        "_max_finish_nodes",
        "_pes",
        "_starts",
        "_finishes",
        "_sig",
    )

    def __init__(
        self,
        graph: TaskGraph,
        system: ProcessorSystem,
        *,
        mask: int,
        ready_mask: int,
        ready_time: tuple[float, ...],
        makespan: float,
        num_scheduled: int,
        zkey: int,
        used_pes: int,
        remaining_weight: float,
        busy_time: tuple[float, ...],
        total_idle: float,
        max_finish_nodes: tuple[int, ...],
        parent: "PartialSchedule | None" = None,
        last_node: int = -1,
        last_pe: int = -1,
        last_start: float = -1.0,
        last_finish: float = -1.0,
        pes: tuple[int, ...] | None = None,
        starts: tuple[float, ...] | None = None,
        finishes: tuple[float, ...] | None = None,
    ) -> None:
        self.graph = graph
        self.system = system
        self.mask = mask
        self.ready_mask = ready_mask
        self.ready_time = ready_time
        self.makespan = makespan
        self.num_scheduled = num_scheduled
        # Most recently placed node (-1 for the empty state) and its
        # placement — the delta relative to ``_parent``.  ``last_node``
        # is metadata for the commutation rule and deliberately excluded
        # from the signature so different placement orders of the same
        # partial schedule still collide.
        self.last_node = last_node
        self.last_pe = last_pe
        self.last_start = last_start
        self.last_finish = last_finish
        self.zkey = zkey
        self.used_pes = used_pes
        # Load-bound aggregates (delta-maintained): total weight still
        # to be placed (weight units) — read by LoadBoundCost together
        # with ready_time — plus per-PE committed execution time and
        # the total idle committed between same-PE placements (time
        # units), which decompose the ready times for reports and
        # verification: ``busy_time[p] + gaps on p == ready_time[p]``.
        self.remaining_weight = remaining_weight
        self.busy_time = busy_time
        self.total_idle = total_idle
        self._parent = parent
        self._max_finish_nodes = max_finish_nodes
        self._pes = pes
        self._starts = starts
        self._finishes = finishes
        self._sig: tuple | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, graph: TaskGraph, system: ProcessorSystem) -> "PartialSchedule":
        """The initial state: nothing scheduled anywhere."""
        v = graph.num_nodes
        ready_mask = 0
        for n in graph.entry_nodes:
            ready_mask |= 1 << n
        return cls(
            graph=graph,
            system=system,
            mask=0,
            ready_mask=ready_mask,
            ready_time=(0.0,) * system.num_pes,
            makespan=0.0,
            num_scheduled=0,
            zkey=0,
            used_pes=0,
            remaining_weight=sum(graph.weights),
            busy_time=(0.0,) * system.num_pes,
            total_idle=0.0,
            max_finish_nodes=(),
            pes=(-1,) * v,
            starts=(-1.0,) * v,
            finishes=(-1.0,) * v,
        )

    # -- lazy materialization ------------------------------------------------

    def _materialize(self) -> None:
        """Build the full per-node arrays by replaying the parent chain.

        Finds the nearest ancestor with cached arrays (the root always
        has them) and applies the deltas forward.  Cached on ``self``
        only — intermediate ancestors stay compact unless they are
        themselves asked.
        """
        chain: list[PartialSchedule] = []
        s = self
        while s._pes is None:
            chain.append(s)
            s = s._parent  # type: ignore[assignment]  # root always materialized
        pes = list(s._pes)  # type: ignore[arg-type]
        starts = list(s._starts)  # type: ignore[arg-type]
        finishes = list(s._finishes)  # type: ignore[arg-type]
        for st in reversed(chain):
            n = st.last_node
            pes[n] = st.last_pe
            starts[n] = st.last_start
            finishes[n] = st.last_finish
        self._pes = tuple(pes)
        self._starts = tuple(starts)
        self._finishes = tuple(finishes)

    @property
    def pes(self) -> tuple[int, ...]:
        """Per-node PE assignment (-1 = unscheduled); materialized lazily."""
        if self._pes is None:
            self._materialize()
        return self._pes  # type: ignore[return-value]

    @property
    def starts(self) -> tuple[float, ...]:
        """Per-node start times (-1.0 = unscheduled); materialized lazily."""
        if self._starts is None:
            self._materialize()
        return self._starts  # type: ignore[return-value]

    @property
    def finishes(self) -> tuple[float, ...]:
        """Per-node finish times (-1.0 = unscheduled); materialized lazily."""
        if self._finishes is None:
            self._materialize()
        return self._finishes  # type: ignore[return-value]

    def placements(self) -> Iterable[tuple[int, int, float, float]]:
        """Yield every ``(node, pe, start, finish)``, most recent first.

        Walks the parent chain without materializing any arrays — O(1)
        per scheduled node.  The chain may terminate in a *snapshot
        root* instead of the empty state (a state rebuilt by
        :meth:`from_wire` carries arrays but no parent chain); its
        placements are then read from the arrays, in no particular
        order relative to each other.
        """
        s = self
        while s.last_node >= 0:
            yield s.last_node, s.last_pe, s.last_start, s.last_finish
            s = s._parent  # type: ignore[assignment]
        if s.num_scheduled:
            pes = s._pes
            starts = s._starts
            finishes = s._finishes
            m = s.mask
            while m:
                low = m & -m
                n = low.bit_length() - 1
                m ^= low
                yield n, pes[n], starts[n], finishes[n]  # type: ignore[index]

    # -- queries -------------------------------------------------------------

    def is_scheduled(self, node: int) -> bool:
        """True when ``node`` is already placed."""
        return (self.mask >> node) & 1 == 1

    def is_complete(self) -> bool:
        """True when every node is placed (goal state, paper §3.1)."""
        return self.num_scheduled == self.graph.num_nodes

    def ready_nodes(self) -> list[int]:
        """Unscheduled nodes whose predecessors are all scheduled.

        Ascending node-id order; the search reorders by priority.  The
        ready set is maintained incrementally as a bitmask (scheduling a
        node can only ready its successors), so this just decodes the
        set bits — O(|ready|) instead of an O(v) readiness scan.
        """
        out = []
        m = self.ready_mask
        while m:
            low = m & -m
            out.append(low.bit_length() - 1)
            m ^= low
        return out

    def is_ready(self, node: int) -> bool:
        """True when ``node`` is unscheduled with all parents scheduled."""
        return (self.ready_mask >> node) & 1 == 1

    def est(self, node: int, pe: int) -> float:
        """Earliest start time of ``node`` on ``pe`` (append-only rule).

        ``ST(n, p) = max(RT_p, max_parents(FT(parent) + comm))`` where
        comm is zero for same-PE parents (paper §2).  The caller must
        ensure ``node`` is ready.  Iterates the graph's flat CSR in-edge
        slice; materializes this state's arrays on first use (states
        being expanded pay that once, their generated children never do).
        """
        start = self.ready_time[pe]
        pairs = self.graph.pred_pairs[node]
        if not pairs:
            return start
        if self._finishes is None:
            self._materialize()
        finishes = self._finishes
        pes = self._pes
        if self.system.distance_scaled:
            dist = self.system.hop_distance
            for parent, c in pairs:
                ppe = pes[parent]  # type: ignore[index]
                if ppe == pe:
                    arrival = finishes[parent]  # type: ignore[index]
                else:
                    arrival = finishes[parent] + c * dist[ppe][pe]  # type: ignore[index]
                if arrival > start:
                    start = arrival
        else:
            for parent, c in pairs:
                if pes[parent] == pe:  # type: ignore[index]
                    arrival = finishes[parent]  # type: ignore[index]
                else:
                    arrival = finishes[parent] + c  # type: ignore[index]
                if arrival > start:
                    start = arrival
        return start

    def data_ready_time(self, node: int, pe: int) -> float:
        """Arrival time of the last parent message at ``pe`` (ignores RT_p)."""
        graph = self.graph
        offsets = graph.pred_offsets
        preds = graph.pred_flat
        costs = graph.pred_costs
        drt = 0.0
        finishes = self.finishes
        pes = self.pes
        for i in range(offsets[node], offsets[node + 1]):
            parent = preds[i]
            arrival = finishes[parent] + self.system.comm_time(costs[i], pes[parent], pe)
            if arrival > drt:
                drt = arrival
        return drt

    def used_pes_mask(self) -> int:
        """Bitmask of PEs with at least one scheduled task.

        Maintained incrementally (:attr:`used_pes`); this accessor is
        kept for the historical API.
        """
        return self.used_pes

    @property
    def max_finish_nodes(self) -> tuple[int, ...]:
        """All scheduled nodes attaining the maximum finish time.

        Maintained incrementally on :meth:`extend` so the paper cost
        function reads the argmax set in O(1) instead of scanning all v
        finishes.  Empty for the empty state.
        """
        return self._max_finish_nodes

    # -- expansion -------------------------------------------------------------

    def child_signature(self, node: int, pe: int) -> tuple[tuple[int, int], float]:
        """Duplicate key of the child ``extend(node, pe)`` would produce,
        plus its start time — *without* constructing the child.

        Duplicate detection rejects ~80-90% of expansion candidates on
        typical instances (profiled); previewing the key costs one EST
        plus one XOR instead of full child construction, so engines check
        the CLOSED set first and only materialize survivors.  The
        returned start time can be handed back to :meth:`extend` to avoid
        recomputing the EST.
        """
        start = self.est(node, pe)
        # placement_key() inlined — this runs once per expansion
        # candidate and the call overhead is measurable.
        h = ((node + 1) * _PHI64 + (pe + 1) * _PE64 + (hash(start) & _MASK64)) & _MASK64
        h ^= h >> 30
        h = (h * 0xBF58476D1CE4E5B9) & _MASK64
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK64
        h ^= h >> 31
        return (self.mask | (1 << node), self.zkey ^ h), start

    def extend(
        self,
        node: int,
        pe: int,
        *,
        _start: float | None = None,
        _sig: tuple[int, int] | None = None,
    ) -> "PartialSchedule":
        """Place ``node`` on ``pe`` at its earliest start time.

        ``_start``/``_sig`` are the performance path for callers that
        already ran :meth:`child_signature` (values are trusted).

        Raises
        ------
        ScheduleError
            When ``node`` is not ready or ``pe`` is out of range.
        """
        if not self.is_ready(node):
            raise ScheduleError(f"node {node} is not ready for scheduling")
        if not (0 <= pe < self.system.num_pes):
            raise ScheduleError(f"unknown PE {pe}")
        start = self.est(node, pe) if _start is None else _start
        finish = start + self.system.exec_time(self.graph.weight(node), pe)

        makespan = self.makespan
        if finish > makespan:
            mfn: tuple[int, ...] = (node,)
            makespan = finish
        elif finish == makespan:
            mfn = self._max_finish_nodes + (node,)
        else:
            mfn = self._max_finish_nodes
        # Scheduling `node` can only ready its own successors: drop it
        # from the ready set and admit each successor whose parents are
        # now all scheduled.
        mask = self.mask | (1 << node)
        ready = self.ready_mask ^ (1 << node)
        pmasks = self.graph.pred_masks
        for s in self.graph.succs(node):
            pm = pmasks[s]
            if pm & mask == pm:
                ready |= 1 << s
        rt = self.ready_time
        busy = self.busy_time
        return PartialSchedule(
            graph=self.graph,
            system=self.system,
            mask=mask,
            ready_mask=ready,
            ready_time=rt[:pe] + (finish,) + rt[pe + 1 :],
            makespan=makespan,
            num_scheduled=self.num_scheduled + 1,
            zkey=_sig[1] if _sig is not None
            else self.zkey ^ placement_key(node, pe, start),
            used_pes=self.used_pes | (1 << pe),
            remaining_weight=self.remaining_weight - self.graph.weight(node),
            busy_time=busy[:pe] + (busy[pe] + (finish - start),) + busy[pe + 1 :],
            total_idle=self.total_idle + (start - rt[pe]),
            max_finish_nodes=mfn,
            parent=self,
            last_node=node,
            last_pe=pe,
            last_start=start,
            last_finish=finish,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def dedup_key(self) -> tuple[int, int]:
        """Duplicate-detection key ``(scheduled mask, zobrist)``.

        Two partial schedules that place the same nodes on the same PEs
        at the same times share this key regardless of the order in which
        the placements happened; the converse holds up to a ~2^-64
        Zobrist collision between same-node-set states (the mask makes
        cross-node-set collisions impossible).  See
        :class:`repro.search.dedup.SignatureSet` for the verified mode.
        """
        return (self.mask, self.zkey)

    @property
    def signature(self) -> tuple:
        """Exact canonical identity ``(mask, pes, starts)``.

        Order-independent like :attr:`dedup_key` but collision-free;
        materializes the arrays, so the hot path uses :attr:`dedup_key`
        and this remains for verification, diagnostics, and ground-truth
        enumeration.
        """
        if self._sig is None:
            self._sig = (self.mask, self.pes, self.starts)
        return self._sig

    # -- serialization -----------------------------------------------------------

    def compact(self) -> tuple[tuple[int, int, float], ...]:
        """Compact picklable encoding: ``(node, pe, start)`` triples.

        Sorted by ``(start, node)`` — a valid replay order (the
        append-only EST rule makes same-PE placement order equal start
        order, and every parent finishes strictly before its child
        starts).  O(d) to build via the parent chain; the multiprocessing
        backend ships these across process boundaries instead of pickling
        state objects (which would drag the whole ancestor chain along).
        """
        items = [(node, pe, start) for node, pe, start, _finish in self.placements()]
        items.sort(key=lambda t: (t[2], t[0]))
        return tuple(items)

    def to_wire(self) -> tuple:
        """Full-fidelity snapshot for cross-process transfer: every
        aggregate plus the materialized arrays, as one picklable tuple.

        :meth:`compact` stays the encoding of choice when the receiver
        replays anyway (seeds of the static-partition backend, final
        results); this snapshot is the HDA* hot-path format — rebuilding
        via :meth:`from_wire` is one O(v) construction instead of an
        O(depth) :meth:`extend` replay with its per-step EST scans
        (measured ~10x cheaper at §4.1 depths, see DESIGN.md).
        """
        if self._pes is None:
            self._materialize()
        # New aggregates append at the END: the HDA* workers read the
        # duplicate key straight off the tuple as (wire[0], wire[5]) —
        # those positions are part of the wire contract.
        return (
            self.mask,
            self.ready_mask,
            self.ready_time,
            self.makespan,
            self.num_scheduled,
            self.zkey,
            self.used_pes,
            self._max_finish_nodes,
            self._pes,
            self._starts,
            self._finishes,
            self.remaining_weight,
            self.busy_time,
            self.total_idle,
        )

    @classmethod
    def from_wire(
        cls, graph: TaskGraph, system: ProcessorSystem, wire: tuple
    ) -> "PartialSchedule":
        """Rebuild a state from :meth:`to_wire` output.

        The result is a *snapshot root*: no parent chain and no last-
        placement delta (``last_node = -1``), so the commutation rule
        simply has nothing to prune against it, and :meth:`placements`
        reads its nodes from the arrays.  Identity (``dedup_key``,
        ``signature``) and all search-visible behaviour are preserved.
        """
        (mask, ready_mask, ready_time, makespan, num_scheduled, zkey,
         used_pes, max_finish_nodes, pes, starts, finishes,
         remaining_weight, busy_time, total_idle) = wire
        return cls(
            graph=graph,
            system=system,
            mask=mask,
            ready_mask=ready_mask,
            ready_time=ready_time,
            makespan=makespan,
            num_scheduled=num_scheduled,
            zkey=zkey,
            used_pes=used_pes,
            remaining_weight=remaining_weight,
            busy_time=busy_time,
            total_idle=total_idle,
            max_finish_nodes=max_finish_nodes,
            pes=pes,
            starts=starts,
            finishes=finishes,
        )

    @classmethod
    def inflate(
        cls,
        graph: TaskGraph,
        system: ProcessorSystem,
        payload: Iterable[tuple[int, int, float]],
    ) -> "PartialSchedule":
        """Rebuild a state from :meth:`compact` output by replaying it.

        The replay recomputes identical starts, finishes, and Zobrist
        signature (EST is deterministic given the placements).
        """
        state = cls.empty(graph, system)
        for node, pe, _start in payload:
            state = state.extend(node, pe)
        return state

    def to_schedule(self) -> Schedule:
        """Materialize a complete :class:`Schedule`.

        Raises
        ------
        ScheduleError
            When the partial schedule is not complete.
        """
        if not self.is_complete():
            raise ScheduleError(
                f"partial schedule covers {self.num_scheduled}"
                f"/{self.graph.num_nodes} nodes"
            )
        return Schedule(
            self.graph,
            self.system,
            {node: (pe, start) for node, pe, start, _f in self.placements()},
        )

    # -- dunder -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"PartialSchedule({self.num_scheduled}/{self.graph.num_nodes} nodes, "
            f"makespan={self.makespan:g})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, PartialSchedule):
            return NotImplemented
        if self.mask != other.mask or self.zkey != other.zkey:
            # Equal placements always hash equal (EST determinism), so a
            # key mismatch proves the placements differ.
            return False
        return (
            self.graph is other.graph or self.graph == other.graph
        ) and self.pes == other.pes and self.starts == other.starts

    def __hash__(self) -> int:
        return hash((self.mask, self.zkey))
