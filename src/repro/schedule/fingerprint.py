"""Canonical instance fingerprints.

A result cache keyed on the *caller's* node numbering misses whenever
two requests describe the same problem with the nodes in a different
order — which is the common case for instances arriving from different
front-ends or serialized by different tools.  This module derives a
canonical relabeling first, so the fingerprint (and everything stored
under it) is invariant under node permutation.

Canonicalization is a two-step scheme:

1. **Invariant refinement** (Weisfeiler-Lehman style, adapted to
   weighted DAGs): every node starts from a 64-bit key of its weight and
   is repeatedly re-keyed from the sorted multiset of its in- and
   out-edges ``(edge cost, neighbour key)``.  The mixing reuses the
   splitmix64 finalizer of the search states' Zobrist machinery
   (:func:`repro.schedule.partial.placement_key`), giving full avalanche
   per round.  Refinement stops when the partition of nodes by key stops
   splitting.
2. **Canonical topological order**: Kahn's algorithm where the ready
   pool is ordered by ``(placed-parent positions + edge costs, refined
   key)`` — both components are label-free, so two relabelings of the
   same DAG pop nodes in the same structural order.

Nodes that remain tied after refinement are either automorphic (any
pick yields the same canonical form — the common case: equal-weight
twins) or, in adversarial regular instances, WL-indistinguishable
without being automorphic; the tie then falls back to the caller's node
id and two relabelings may fingerprint differently.  That failure mode
is *safe*: it can only cause a cache miss, never a wrong cache hit,
because the fingerprint digests the full canonical serialization —
different instances produce different digests up to a 2^-128 collision.

The digest itself is BLAKE2b-128 over the canonical byte serialization
of (graph, system, cost model): stable across processes and Python
versions (``repr`` of floats round-trips exactly), unlike salted
``hash()``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence

from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem
from repro.util.hashing import MASK64 as _MASK64
from repro.util.hashing import PE64 as _PE64
from repro.util.hashing import PHI64 as _PHI64
from repro.util.hashing import splitmix64 as _mix64

__all__ = [
    "canonical_order",
    "canonical_graph",
    "instance_fingerprint",
    "canonical_assignment",
    "assignment_from_canonical",
]


def _fold_sorted(base: int, parts: list[int]) -> int:
    """Order-independent combine: fold the *sorted* parts into ``base``.

    Sorting makes the combination an exact multiset function (unlike a
    plain XOR, where equal parts cancel).
    """
    h = base
    for p in sorted(parts):
        h = _mix64(h * _PHI64 + p)
    return h


def refined_node_keys(graph: TaskGraph) -> tuple[int, ...]:
    """Label-free 64-bit invariant per node (WL refinement to fixpoint).

    Two nodes get equal keys only when refinement cannot tell them apart
    by weight or by any chain of weighted in/out edges; relabeling the
    graph permutes the keys with the nodes but never changes their
    values.
    """
    v = graph.num_nodes
    keys = [_mix64((hash(w) & _MASK64) ^ _PHI64) for w in graph.weights]
    num_classes = len(set(keys))
    for _round in range(v):
        nxt = []
        for n in range(v):
            pred_parts = [
                _mix64(keys[p] ^ _mix64((hash(c) & _MASK64) ^ _PE64))
                for p, c in graph.pred_edges(n)
            ]
            succ_parts = [
                _mix64(keys[s] * _PHI64 ^ _mix64(hash(c) & _MASK64))
                for s, c in graph.succ_edges(n)
            ]
            h = keys[n]
            h = _fold_sorted(h, pred_parts)
            h = _fold_sorted(_mix64(h ^ _PE64), succ_parts)
            nxt.append(h)
        nxt_classes = len(set(nxt))
        keys = nxt
        if nxt_classes == num_classes:
            break
        num_classes = nxt_classes
    return tuple(keys)


def canonical_order(graph: TaskGraph) -> tuple[int, ...]:
    """Canonical topological order: ``order[i]`` is the node at position i.

    Kahn's algorithm over a ready pool sorted by label-free criteria:
    the fold of the node's placed-parent ``(position, edge cost)`` pairs
    first (a perfect discriminator once ancestors are placed), the
    refined WL key second.  Only WL-indistinguishable siblings fall back
    to the original node id (see the module docstring for why that is
    safe).
    """
    import heapq

    v = graph.num_nodes
    base = refined_node_keys(graph)
    indegree = [len(graph.preds(n)) for n in range(v)]
    # Dynamic key: parents' canonical positions folded with edge costs.
    parent_parts: list[list[int]] = [[] for _ in range(v)]
    ready = [((base[n], base[n]), n) for n in range(v) if indegree[n] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _k, n = heapq.heappop(ready)
        pos = len(order)
        order.append(n)
        for s, c in graph.succ_edges(n):
            parent_parts[s].append(
                _mix64((pos + 1) * _PHI64 + (hash(c) & _MASK64))
            )
            indegree[s] -= 1
            if indegree[s] == 0:
                heapq.heappush(
                    ready, ((_fold_sorted(base[s], parent_parts[s]), base[s]), s)
                )
    return tuple(order)


def canonical_graph(graph: TaskGraph) -> TaskGraph:
    """The graph relabeled into canonical positions.

    Two relabelings of the same instance produce equal
    :class:`TaskGraph` values (up to WL ties), which the fingerprint
    tests assert directly.
    """
    order = canonical_order(graph)
    pos = {n: i for i, n in enumerate(order)}
    weights = [graph.weight(n) for n in order]
    edges = {(pos[u], pos[w]): c for (u, w), c in graph.edges.items()}
    return TaskGraph(weights, edges, name=f"{graph.name}[canonical]")


def _canonical_doc(
    graph: TaskGraph,
    system: ProcessorSystem,
    cost: str,
    order: Sequence[int],
) -> bytes:
    """Byte serialization of the instance in canonical node positions."""
    pos = {n: i for i, n in enumerate(order)}
    lines = [f"v={graph.num_nodes}", f"cost={cost}"]
    lines.append("w=" + ",".join(repr(graph.weight(n)) for n in order))
    edge_rows = sorted(
        (pos[u], pos[w], c) for (u, w), c in graph.edges.items()
    )
    lines.append("e=" + ";".join(f"{u}>{w}:{c!r}" for u, w, c in edge_rows))
    lines.append(f"p={system.num_pes}")
    lines.append("links=" + ";".join(f"{i}-{j}" for i, j in sorted(system.links)))
    lines.append("speeds=" + ",".join(repr(s) for s in system.speeds))
    lines.append(f"dist={int(system.distance_scaled)}")
    return "\n".join(lines).encode()


def instance_fingerprint(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    cost: str = "paper",
    order: Sequence[int] | None = None,
) -> str:
    """Stable 128-bit hex fingerprint of a (graph, system, cost) instance.

    ``order`` lets callers that already computed :func:`canonical_order`
    skip recomputing it (the batch front-end needs the order anyway to
    map cached assignments back into the request's node space).

    Graph/system *names* are deliberately excluded: they are report
    labels, not problem semantics.
    """
    if order is None:
        order = canonical_order(graph)
    doc = _canonical_doc(graph, system, cost, order)
    return hashlib.blake2b(doc, digest_size=16).hexdigest()


# -- schedule <-> canonical assignment mapping ------------------------------


def canonical_assignment(
    schedule: Schedule, order: Sequence[int]
) -> tuple[tuple[int, float], ...]:
    """Per-canonical-position ``(pe, start)`` rows of a schedule.

    Stored in the cache instead of raw node ids, so a hit can be
    replayed onto any relabeling of the instance.
    """
    by_node = {t.node: (t.pe, t.start) for t in schedule.tasks}
    return tuple(by_node[n] for n in order)


def assignment_from_canonical(
    order: Sequence[int], rows: Sequence[Sequence[float]]
) -> Mapping[int, tuple[int, float]]:
    """Invert :func:`canonical_assignment` into a ``node -> (pe, start)``
    mapping in this instance's node space."""
    return {
        node: (int(pe), float(start))
        for node, (pe, start) in zip(order, rows)
    }
