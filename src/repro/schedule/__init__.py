"""Schedule substrate: complete/partial schedules, validation, rendering,
analytics and persistence."""

from repro.schedule.gantt import render_gantt
from repro.schedule.io import load_schedule_json, save_schedule_json
from repro.schedule.metrics import ScheduleMetrics, analyze_schedule
from repro.schedule.partial import PartialSchedule
from repro.schedule.preprocess import (
    ChainPlan,
    PreprocessConfig,
    PreprocessResult,
    preprocess_instance,
)
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.schedule.validate import validate_schedule

__all__ = [
    "Schedule",
    "ScheduledTask",
    "PartialSchedule",
    "PreprocessConfig",
    "PreprocessResult",
    "ChainPlan",
    "preprocess_instance",
    "validate_schedule",
    "render_gantt",
    "analyze_schedule",
    "ScheduleMetrics",
    "save_schedule_json",
    "load_schedule_json",
]
