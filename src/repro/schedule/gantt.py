"""ASCII Gantt-chart rendering of schedules (paper Figure 4 style)."""

from __future__ import annotations

from repro.schedule.schedule import Schedule

__all__ = ["render_gantt", "render_timeline"]


def render_gantt(schedule: Schedule, *, width: int = 60) -> str:
    """Render a schedule as one text row per processor.

    Each task is drawn as ``[label###]`` proportional to its duration on
    a time axis scaled to ``width`` characters; idle time is dots.
    """
    length = schedule.length
    if length <= 0:
        return "(empty schedule)"
    scale = width / length
    lines = [
        f"schedule length = {length:g}   "
        f"(graph {schedule.graph.name!r}, {schedule.num_used_pes} PEs used)"
    ]
    for pe in range(schedule.system.num_pes):
        timeline = schedule.tasks_on(pe)
        row = []
        cursor = 0
        for t in timeline:
            start_col = int(round(t.start * scale))
            end_col = max(start_col + 1, int(round(t.finish * scale)))
            row.append("." * (start_col - cursor))
            label = schedule.graph.label(t.node)
            body_len = end_col - start_col
            body = label[: body_len - 2].center(max(0, body_len - 2), "#")
            row.append("[" + body + "]" if body_len >= 2 else "|")
            cursor = end_col
        row.append("." * max(0, width - cursor))
        lines.append(f"PE {pe:>2} |{''.join(row)}|")
    axis = f"       0{' ' * (width - len(f'{length:g}') - 1)}{length:g}"
    lines.append(axis)
    return "\n".join(lines)


def render_timeline(schedule: Schedule) -> str:
    """Render a schedule as an exact numeric table (one row per task)."""
    lines = ["node   PE   start   finish"]
    for t in schedule.tasks:
        lines.append(
            f"{schedule.graph.label(t.node):<6} {t.pe:<4} "
            f"{t.start:<7g} {t.finish:<7g}"
        )
    lines.append(f"schedule length = {schedule.length:g}")
    return "\n".join(lines)
