"""Schedule serialization.

The paper's introduction motivates optimal schedules partly by reuse:
"once an optimal schedule for a given problem is determined, it can be
re-used for efficient execution of the problem."  This module provides
that persistence: a JSON schema embedding the graph, the system
parameters and the assignment, validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ScheduleError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.system.processors import ProcessorSystem

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule_json",
    "load_schedule_json",
]

_SCHEMA_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule (with its graph and system) to a JSON-safe dict."""
    system = schedule.system
    return {
        "schema": _SCHEMA_VERSION,
        "graph": graph_to_dict(schedule.graph),
        "system": {
            "num_pes": system.num_pes,
            "links": sorted(list(link) for link in system.links),
            "speeds": list(system.speeds),
            "distance_scaled": system.distance_scaled,
            "name": system.name,
        },
        "assignment": [
            [t.node, t.pe, t.start] for t in schedule.tasks
        ],
        "length": schedule.length,
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Deserialize and **validate** a schedule.

    Raises
    ------
    ScheduleError
        On schema mismatch, missing fields, infeasible assignments, or a
        recorded length that disagrees with the reconstruction (guards
        against hand-edited files).
    """
    if data.get("schema") != _SCHEMA_VERSION:
        raise ScheduleError(f"unsupported schedule schema {data.get('schema')!r}")
    try:
        graph = graph_from_dict(data["graph"])
        sysd = data["system"]
        system = ProcessorSystem(
            sysd["num_pes"],
            links=[tuple(link) for link in sysd["links"]],
            speeds=sysd["speeds"],
            distance_scaled=sysd["distance_scaled"],
            name=sysd.get("name", "system"),
        )
        assignment = {
            int(node): (int(pe), float(start))
            for node, pe, start in data["assignment"]
        }
        recorded_length = float(data["length"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule document: {exc}") from None
    schedule = Schedule(graph, system, assignment)
    validate_schedule(schedule)
    if abs(schedule.length - recorded_length) > 1e-6:
        raise ScheduleError(
            f"recorded length {recorded_length} disagrees with "
            f"reconstructed length {schedule.length}"
        )
    return schedule


def save_schedule_json(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule_json(path: str | Path) -> Schedule:
    """Read and validate a schedule from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
