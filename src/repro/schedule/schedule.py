"""Complete schedules: the output of every scheduler in this library.

A :class:`Schedule` maps every task of a graph to a processor and a start
time.  Finish times, the schedule length (makespan) and per-PE timelines
are derived.  Schedules are value objects: equal iff their assignments
are equal.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.system.processors import ProcessorSystem

__all__ = ["ScheduledTask", "Schedule"]


@dataclass(frozen=True, order=True)
class ScheduledTask:
    """One task placement: node, PE, start and finish times."""

    start: float
    finish: float
    node: int
    pe: int

    @property
    def duration(self) -> float:
        """Execution time on the assigned PE."""
        return self.finish - self.start


class Schedule:
    """An immutable complete schedule for ``graph`` on ``system``.

    Parameters
    ----------
    graph, system:
        The problem instance.
    assignment:
        Mapping ``node -> (pe, start_time)`` covering every node.

    Raises
    ------
    ScheduleError
        When the assignment does not cover every node exactly once or
        references unknown PEs.  (Precedence/overlap feasibility is
        checked separately by :func:`repro.schedule.validate.validate_schedule`,
        so tests can construct deliberately-invalid schedules.)
    """

    __slots__ = ("graph", "system", "_tasks", "_by_node", "_length", "_hash")

    def __init__(
        self,
        graph: TaskGraph,
        system: ProcessorSystem,
        assignment: Mapping[int, tuple[int, float]],
    ) -> None:
        if set(assignment.keys()) != set(range(graph.num_nodes)):
            missing = set(range(graph.num_nodes)) - set(assignment.keys())
            extra = set(assignment.keys()) - set(range(graph.num_nodes))
            raise ScheduleError(
                f"assignment must cover every node exactly once "
                f"(missing={sorted(missing)}, unknown={sorted(extra)})"
            )
        tasks = []
        for node, (pe, start) in assignment.items():
            if not (0 <= pe < system.num_pes):
                raise ScheduleError(f"node {node} assigned to unknown PE {pe}")
            if start < 0:
                raise ScheduleError(f"node {node} has negative start time {start}")
            finish = start + system.exec_time(graph.weight(node), pe)
            tasks.append(ScheduledTask(start=start, finish=finish, node=node, pe=pe))
        self.graph = graph
        self.system = system
        self._by_node = {t.node: t for t in tasks}
        self._tasks = tuple(sorted(tasks))
        self._length = max(t.finish for t in tasks)
        self._hash: int | None = None

    # -- accessors -----------------------------------------------------------

    @property
    def length(self) -> float:
        """Schedule length (makespan): ``max_i FT(n_i)``."""
        return self._length

    @property
    def tasks(self) -> tuple[ScheduledTask, ...]:
        """All placements ordered by (start, finish, node, pe)."""
        return self._tasks

    def task(self, node: int) -> ScheduledTask:
        """Placement of one node."""
        return self._by_node[node]

    def pe_of(self, node: int) -> int:
        """Processor assigned to ``node``."""
        return self._by_node[node].pe

    def start_time(self, node: int) -> float:
        """``ST(node)``."""
        return self._by_node[node].start

    def finish_time(self, node: int) -> float:
        """``FT(node)``."""
        return self._by_node[node].finish

    def tasks_on(self, pe: int) -> tuple[ScheduledTask, ...]:
        """Placements on one PE in execution order."""
        return tuple(t for t in self._tasks if t.pe == pe)

    @property
    def used_pes(self) -> tuple[int, ...]:
        """PEs that run at least one task, ascending."""
        return tuple(sorted({t.pe for t in self._tasks}))

    @property
    def num_used_pes(self) -> int:
        """Number of distinct PEs used (the paper reports minimum TPEs)."""
        return len(self.used_pes)

    def idle_time(self) -> float:
        """Total idle time across used PEs within the makespan."""
        busy = sum(t.duration for t in self._tasks)
        return self.num_used_pes * self._length - busy

    def efficiency(self) -> float:
        """Busy fraction of the used PEs over the makespan."""
        denom = self.num_used_pes * self._length
        return (sum(t.duration for t in self._tasks) / denom) if denom else 0.0

    def as_assignment(self) -> dict[int, tuple[int, float]]:
        """Export as a plain ``node -> (pe, start)`` dict."""
        return {t.node: (t.pe, t.start) for t in self._tasks}

    # -- dunder --------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Schedule(graph={self.graph.name!r}, length={self._length:g}, "
            f"pes={self.num_used_pes})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self.graph == other.graph
            and self.system == other.system
            and self._tasks == other._tasks
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.graph, self.system, self._tasks))
        return self._hash
