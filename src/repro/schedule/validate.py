"""Schedule feasibility validation.

A schedule is feasible when (paper §2):

* every task appears exactly once (checked at construction);
* no two tasks overlap on the same processor;
* every task starts no earlier than each parent's finish time plus the
  communication delay when parent and child sit on different PEs.

The validator returns the full list of violations so tests can assert on
specific failure modes; :func:`validate_schedule` raises on the first
problem for API users.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.schedule.schedule import Schedule

__all__ = ["validate_schedule", "schedule_violations"]

_EPS = 1e-9


def schedule_violations(schedule: Schedule) -> list[str]:
    """Return human-readable descriptions of every feasibility violation."""
    graph = schedule.graph
    system = schedule.system
    problems: list[str] = []

    # Processor overlap: tasks on one PE must not intersect in time.
    for pe in schedule.used_pes:
        timeline = schedule.tasks_on(pe)
        for prev, cur in zip(timeline, timeline[1:]):
            if cur.start < prev.finish - _EPS:
                problems.append(
                    f"overlap on PE {pe}: node {prev.node} "
                    f"[{prev.start:g},{prev.finish:g}) and node {cur.node} "
                    f"[{cur.start:g},{cur.finish:g})"
                )

    # Precedence + communication delays.
    for (u, w), c in graph.edges.items():
        tu = schedule.task(u)
        tw = schedule.task(w)
        delay = system.comm_time(c, tu.pe, tw.pe)
        earliest = tu.finish + delay
        if tw.start < earliest - _EPS:
            problems.append(
                f"precedence violation on edge {u}->{w}: child starts at "
                f"{tw.start:g} but data ready at {earliest:g} "
                f"(parent on PE {tu.pe}, child on PE {tw.pe})"
            )

    # Duration consistency (guards against hand-built schedules with
    # wrong finish times; Schedule derives finish so this is a tautology
    # unless the system's speeds changed identity, but cheap to keep).
    for t in schedule.tasks:
        expected = system.exec_time(graph.weight(t.node), t.pe)
        if abs(t.duration - expected) > _EPS:
            problems.append(
                f"node {t.node} duration {t.duration:g} != expected {expected:g}"
            )
    return problems


def validate_schedule(schedule: Schedule) -> None:
    """Raise :class:`ScheduleError` on the first feasibility violation."""
    problems = schedule_violations(schedule)
    if problems:
        raise ScheduleError(problems[0])
