"""The pre-delta tuple-based search state, kept as a test/bench oracle.

This is the original :class:`~repro.schedule.partial.PartialSchedule`
implementation: every state materializes full ``pes/starts/finishes``
tuples (five O(v) copies per :meth:`extend`) and identifies itself by
the exact ``(mask, pes, starts)`` tuple signature.  The production class
was replaced by the delta-encoded, Zobrist-hashed representation (see
DESIGN.md); this copy exists so that

* the state-equivalence property tests can run every search engine
  against both representations and assert byte-identical schedules,
  expansion counts, and pruning statistics, and
* the ``bench_states_micro`` benchmark can measure the speedup of the
  delta representation against its predecessor.

Do not use it outside tests and benchmarks.  The class mirrors the
production state API exactly (``dedup_key``, ``last_pe``,
``max_finish_nodes`` are thin additions over the historical code) so the
engines accept it via their ``state_cls`` parameter.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem

__all__ = ["ReferencePartialSchedule"]


class ReferencePartialSchedule:
    """An immutable partial schedule with fully-materialized tuples."""

    __slots__ = (
        "graph",
        "system",
        "mask",
        "pes",
        "starts",
        "finishes",
        "ready_time",
        "makespan",
        "num_scheduled",
        "last_node",
        "last_pe",
        "remaining_weight",
        "busy_time",
        "total_idle",
        "_unsched_preds",
        "_sig",
    )

    def __init__(
        self,
        graph: TaskGraph,
        system: ProcessorSystem,
        mask: int,
        pes: tuple[int, ...],
        starts: tuple[float, ...],
        finishes: tuple[float, ...],
        ready_time: tuple[float, ...],
        makespan: float,
        num_scheduled: int,
        unsched_preds: tuple[int, ...],
        last_node: int = -1,
        last_pe: int = -1,
        remaining_weight: float = 0.0,
        busy_time: tuple[float, ...] = (),
        total_idle: float = 0.0,
    ) -> None:
        self.graph = graph
        self.system = system
        self.mask = mask
        self.pes = pes
        self.starts = starts
        self.finishes = finishes
        self.ready_time = ready_time
        self.makespan = makespan
        self.num_scheduled = num_scheduled
        # Most recently placed node (-1 for the empty state).  Metadata
        # only: deliberately excluded from the signature so different
        # placement orders of the same partial schedule still collide.
        self.last_node = last_node
        self.last_pe = last_pe
        # Load-bound aggregates, delta-maintained exactly like the
        # production state so the floats stay bit-identical between the
        # two representations (the equivalence tests depend on it).
        self.remaining_weight = remaining_weight
        self.busy_time = busy_time
        self.total_idle = total_idle
        self._unsched_preds = unsched_preds
        self._sig: tuple | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(
        cls, graph: TaskGraph, system: ProcessorSystem
    ) -> "ReferencePartialSchedule":
        """The initial state: nothing scheduled anywhere."""
        v = graph.num_nodes
        return cls(
            graph=graph,
            system=system,
            mask=0,
            pes=(-1,) * v,
            starts=(-1.0,) * v,
            finishes=(-1.0,) * v,
            ready_time=(0.0,) * system.num_pes,
            makespan=0.0,
            num_scheduled=0,
            unsched_preds=tuple(len(graph.preds(n)) for n in range(v)),
            remaining_weight=sum(graph.weights),
            busy_time=(0.0,) * system.num_pes,
            total_idle=0.0,
        )

    # -- queries -------------------------------------------------------------

    def is_scheduled(self, node: int) -> bool:
        """True when ``node`` is already placed."""
        return (self.mask >> node) & 1 == 1

    def is_complete(self) -> bool:
        """True when every node is placed (goal state, paper §3.1)."""
        return self.num_scheduled == self.graph.num_nodes

    def ready_nodes(self) -> list[int]:
        """Unscheduled nodes whose predecessors are all scheduled."""
        mask = self.mask
        counts = self._unsched_preds
        return [
            n
            for n in range(self.graph.num_nodes)
            if counts[n] == 0 and not (mask >> n) & 1
        ]

    def is_ready(self, node: int) -> bool:
        """True when ``node`` is unscheduled with all parents scheduled."""
        return self._unsched_preds[node] == 0 and not (self.mask >> node) & 1

    def est(self, node: int, pe: int) -> float:
        """Earliest start time of ``node`` on ``pe`` (append-only rule)."""
        graph = self.graph
        start = self.ready_time[pe]
        finishes = self.finishes
        pes = self.pes
        distance_scaled = self.system.distance_scaled
        if distance_scaled:
            dist = self.system.hop_distance
        for parent, c in graph.pred_edges(node):
            ppe = pes[parent]
            if ppe == pe:
                arrival = finishes[parent]
            elif distance_scaled:
                arrival = finishes[parent] + c * dist[ppe][pe]
            else:
                arrival = finishes[parent] + c
            if arrival > start:
                start = arrival
        return start

    def data_ready_time(self, node: int, pe: int) -> float:
        """Arrival time of the last parent message at ``pe`` (ignores RT_p)."""
        graph = self.graph
        drt = 0.0
        finishes = self.finishes
        pes = self.pes
        for parent, c in graph.pred_edges(node):
            ppe = pes[parent]
            arrival = finishes[parent] + self.system.comm_time(c, ppe, pe)
            if arrival > drt:
                drt = arrival
        return drt

    def used_pes_mask(self) -> int:
        """Bitmask of PEs with at least one scheduled task (O(v) scan)."""
        mask = 0
        for pe in self.pes:
            if pe >= 0:
                mask |= 1 << pe
        return mask

    @property
    def max_finish_nodes(self) -> tuple[int, ...]:
        """All scheduled nodes attaining the maximum finish time.

        The historical :class:`PaperCost` re-derived this by scanning all
        ``v`` finishes per evaluation; exposing the same scan as a
        property lets one cost-function implementation serve both state
        representations with identical values.
        """
        makespan = self.makespan
        if makespan == 0.0:
            return ()
        finishes = self.finishes
        return tuple(n for n in range(len(finishes)) if finishes[n] == makespan)

    # -- expansion -------------------------------------------------------------

    def child_signature(self, node: int, pe: int) -> tuple[tuple, float]:
        """Signature the child ``extend(node, pe)`` would have, plus its
        start time — *without* constructing the child (two tuple splices).
        """
        start = self.est(node, pe)
        sig = (
            self.mask | (1 << node),
            self.pes[:node] + (pe,) + self.pes[node + 1 :],
            self.starts[:node] + (start,) + self.starts[node + 1 :],
        )
        return sig, start

    def extend(
        self,
        node: int,
        pe: int,
        *,
        _start: float | None = None,
        _sig: tuple | None = None,
    ) -> "ReferencePartialSchedule":
        """Place ``node`` on ``pe`` at its earliest start time.

        ``_start``/``_sig`` are the performance path for callers that
        already ran :meth:`child_signature` (values are trusted).

        Raises
        ------
        ScheduleError
            When ``node`` is not ready or ``pe`` is out of range.
        """
        if not self.is_ready(node):
            raise ScheduleError(f"node {node} is not ready for scheduling")
        if not (0 <= pe < self.system.num_pes):
            raise ScheduleError(f"unknown PE {pe}")
        start = self.est(node, pe) if _start is None else _start
        finish = start + self.system.exec_time(self.graph.weight(node), pe)

        pes = list(self.pes)
        starts = list(self.starts)
        finishes = list(self.finishes)
        ready_time = list(self.ready_time)
        counts = list(self._unsched_preds)
        pes[node] = pe
        starts[node] = start
        finishes[node] = finish
        ready_time[pe] = finish
        for child in self.graph.succs(node):
            counts[child] -= 1

        busy = list(self.busy_time)
        busy[pe] = busy[pe] + (finish - start)
        child = ReferencePartialSchedule(
            graph=self.graph,
            system=self.system,
            mask=self.mask | (1 << node),
            pes=tuple(pes),
            starts=tuple(starts),
            finishes=tuple(finishes),
            ready_time=tuple(ready_time),
            makespan=finish if finish > self.makespan else self.makespan,
            num_scheduled=self.num_scheduled + 1,
            unsched_preds=tuple(counts),
            last_node=node,
            last_pe=pe,
            remaining_weight=self.remaining_weight - self.graph.weight(node),
            busy_time=tuple(busy),
            total_idle=self.total_idle + (start - self.ready_time[pe]),
        )
        if _sig is not None:
            child._sig = _sig
        return child

    # -- identity ---------------------------------------------------------------

    @property
    def signature(self) -> tuple:
        """Canonical identity of this placement for duplicate detection."""
        if self._sig is None:
            self._sig = (self.mask, self.pes, self.starts)
        return self._sig

    @property
    def dedup_key(self) -> tuple:
        """Duplicate-detection key: the exact signature itself."""
        return self.signature

    def to_schedule(self) -> Schedule:
        """Materialize a complete :class:`Schedule`.

        Raises
        ------
        ScheduleError
            When the partial schedule is not complete.
        """
        if not self.is_complete():
            raise ScheduleError(
                f"partial schedule covers {self.num_scheduled}"
                f"/{self.graph.num_nodes} nodes"
            )
        return Schedule(
            self.graph,
            self.system,
            {n: (self.pes[n], self.starts[n]) for n in range(self.graph.num_nodes)},
        )

    # -- dunder -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"ReferencePartialSchedule({self.num_scheduled}/"
            f"{self.graph.num_nodes} nodes, makespan={self.makespan:g})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ReferencePartialSchedule):
            return NotImplemented
        return (
            self.graph is other.graph or self.graph == other.graph
        ) and self.signature == other.signature

    def __hash__(self) -> int:
        return hash(self.signature)
