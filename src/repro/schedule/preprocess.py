"""Instance preprocessing: graph reductions applied before any search.

Every transformation here is a claim of *semantic equivalence* — the
reduced instance must have exactly the same optimal makespan as the
original, and every schedule of the reduced instance must map back to a
feasible schedule of the original with the same length.  The claims are
pinned against exhaustive enumeration by the ``tests/oracle`` tier;
each transformation self-gates to the model regime where its proof
holds (the way the fixed-task-order rule gates itself in
:mod:`repro.search.expansion`):

* **Transitive-edge removal** — an edge ``(u, w)`` is redundant when
  some middle task ``m`` with direct edges ``u -> m -> w`` satisfies

  ``w(m) / s_max + min(c(u, m), c(m, w)) >= c(u, w)``

  (``s_max`` = fastest PE speed).  Then the timing constraint the edge
  imposes is implied by the path through ``m`` in *every* placement:
  if ``w`` runs on the same PE as ``u`` the constraint is vacuous; if
  ``m`` shares a PE with either endpoint, one of the two messages is
  free and the other plus ``m``'s execution covers ``c(u, w)``; and
  with three distinct PEs both messages are paid in full.  Removing
  the edge therefore changes neither the feasible set nor the optimum.
  **Gated off under distance-scaled communication**: with hop-scaled
  message costs the direct edge can cost ``c x dist(u, w)`` while the
  relay path pays shorter hops, so the implication breaks — the pinned
  counterexample in ``tests/oracle/test_counterexamples.py`` drops the
  optimum from 14 to 13 when the edge is removed anyway.

* **Linear-chain contraction** (weight folding) — **exact only on a
  single PE**, where the makespan is the total work regardless of
  order and merging a chain into one block task is trivially neutral.
  On ``p > 1`` chain contraction is *not* makespan-preserving under
  any locally-checkable side condition we tested (zero communication,
  huge communication forcing colocation, a PE per task, ...): an
  optimal schedule may need to *split or delay* the chain so another
  task can use the PE, and contraction forces the chain contiguous.
  Six pinned counterexamples document the failure modes.  What *does*
  survive on ``p > 1`` is the upper-bound direction: any schedule of
  the contracted instance unfolds (members laid back-to-back in the
  block's slot) into a feasible schedule of the uncontracted instance
  with the same length — internal chain messages become same-PE and
  cost zero, head in-edges and tail out-edges see exactly the
  constraints the contracted edges imposed.  The portfolio exploits
  this as a *warm-start probe* (:class:`ChainPlan`), never as an
  exact reduction.

* **Interchangeable-task detection** — Definition-3 equivalence
  classes (:func:`node_equivalence_classes`, canonical home here; the
  :class:`~repro.search.expansion.StateExpander` expands one ready
  representative per class).  Preprocessing makes the rule *stronger*:
  removing a redundant transitive edge can merge classes that the raw
  graph keeps apart (siblings identical but for the redundant edge).

* **Processor-symmetry normalization** — on homogeneous-speed,
  non-distance-scaled systems the communication cost ignores the
  topology entirely, so *all* empty PEs are interchangeable (not just
  the structurally-isomorphic ones of Definition 2) and every state
  needs only one empty-PE candidate; at the root this pins the first
  task to PE 0.  Preprocessing detects eligibility
  (:attr:`PreprocessResult.root_symmetry`) and the portfolio switches
  the rule on via :attr:`repro.search.pruning.PruningConfig.root_symmetry`.

Results are memoized per ``(graph, system, config)`` value in a small
module-level LRU so the service layer (daemon, batch front-end)
amortizes the cost across duplicate requests; the result cache itself
needs no changes because restored schedules live in *original* node
space and preprocessing preserves the makespan — cache entries are
valid across ``preprocess`` on/off.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol

__all__ = [
    "PreprocessConfig",
    "PreprocessResult",
    "ChainPlan",
    "node_equivalence_classes",
    "preprocess_instance",
    "removable_transitive_edges",
    "clear_preprocess_cache",
]


def node_equivalence_classes(graph: TaskGraph) -> tuple[tuple[int, ...], ...]:
    """Partition nodes into Definition-3 equivalence classes.

    Two nodes are equivalent iff they have identical parent sets,
    identical child sets, equal weight, and equal communication cost to
    each shared parent/child — then they become ready simultaneously and
    lead to equal-length schedules whichever is scheduled first.
    """
    buckets: dict[tuple, list[int]] = {}
    for n in range(graph.num_nodes):
        key = (
            graph.weight(n),
            graph.preds(n),
            graph.succs(n),
            tuple(c for _p, c in graph.pred_edges(n)),
            tuple(c for _s, c in graph.succ_edges(n)),
        )
        buckets.setdefault(key, []).append(n)
    return tuple(tuple(sorted(v)) for v in buckets.values())


@dataclass(frozen=True)
class PreprocessConfig:
    """On/off switches for each preprocessing transformation.

    All default on; each transformation additionally self-gates to the
    regime where its equivalence proof holds, so enabling a switch on
    an ineligible instance is always safe (it simply does nothing).
    """

    #: Remove provably-redundant transitive edges (uniform-communication
    #: systems only — self-gates off when ``system.distance_scaled``).
    transitive_reduction: bool = True
    #: Contract linear chains: exactly on one PE; as a
    #: :class:`ChainPlan` warm-start probe on more.
    chain_contraction: bool = True
    #: Detect empty-PE interchangeability (homogeneous, uniform
    #: communication) and report it via
    #: :attr:`PreprocessResult.root_symmetry`.
    root_symmetry: bool = True


@dataclass(frozen=True)
class ChainPlan:
    """Chain-contracted companion instance for warm-start probing.

    ``graph`` is the reduced graph with every maximal linear chain
    folded into one block task; ``members[b]`` lists the reduced-graph
    nodes of block ``b`` in chain order.  Solving the contracted
    instance and :meth:`unfold`-ing the answer yields a feasible
    schedule of the reduced instance with the *same* length — an upper
    bound, found in a much smaller state space.  It is **not** a proof
    of optimality for the reduced instance (see the module docstring:
    contraction can exclude every optimal schedule), which is why the
    portfolio consumes it only as an incumbent.
    """

    graph: TaskGraph
    members: tuple[tuple[int, ...], ...]

    def unfold(self, schedule: Schedule, target: TaskGraph) -> Schedule:
        """Lay each block's members back-to-back in the block's slot.

        Feasible on ``target`` (the uncontracted graph) under *any*
        system: internal chain edges become same-PE (zero cost) and the
        head/tail see exactly the contracted edges' constraints.
        """
        system = schedule.system
        assignment: dict[int, tuple[int, float]] = {}
        for t in schedule.tasks:
            start = t.start
            for node in self.members[t.node]:
                assignment[node] = (t.pe, start)
                start += system.exec_time(target.weight(node), t.pe)
        return Schedule(target, system, assignment)


@dataclass(frozen=True)
class PreprocessResult:
    """A reduced instance plus everything needed to undo the reduction.

    ``graph`` is what the engines should search; :meth:`restore` maps
    any complete schedule of it back into original node space with the
    same makespan.  ``members[r]`` lists the original nodes folded into
    reduced node ``r`` in execution order (all singletons unless the
    single-PE chain contraction fired).
    """

    original: TaskGraph
    system: ProcessorSystem
    graph: TaskGraph
    members: tuple[tuple[int, ...], ...]
    removed_edges: tuple[tuple[int, int], ...]
    equivalence_groups: tuple[tuple[int, ...], ...]
    root_symmetry: bool
    chain_plan: ChainPlan | None
    stats: "dict[str, int]"

    @property
    def is_identity(self) -> bool:
        """True when no transformation changed the graph itself
        (symmetry eligibility alone does not count)."""
        return self.graph is self.original or (
            not self.removed_edges and self.graph.num_nodes == self.original.num_nodes
        )

    def restore(self, schedule: Schedule) -> Schedule:
        """Map a schedule of the reduced graph back to original node space.

        Transitive removal keeps node identities, so the mapping is the
        identity there; contracted blocks (single-PE instances) unfold
        members back-to-back.  The restored schedule always has the
        same length as the input.
        """
        assignment: dict[int, tuple[int, float]] = {}
        for t in schedule.tasks:
            start = t.start
            for node in self.members[t.node]:
                assignment[node] = (t.pe, start)
                start += self.system.exec_time(self.original.weight(node), t.pe)
        return Schedule(self.original, self.system, assignment)

    def pruning_overrides(self) -> dict[str, bool]:
        """Keyword overrides for :class:`~repro.search.pruning.PruningConfig`
        implied by this result (just the symmetry switch today)."""
        return {"root_symmetry": True} if self.root_symmetry else {}


# -- transitive-edge removal -------------------------------------------------


def removable_transitive_edges(
    graph: TaskGraph, system: ProcessorSystem
) -> tuple[tuple[int, int], ...]:
    """One fixpoint sweep of redundant-edge detection (uniform comm).

    Returned in removal order; each edge's witness path was checked
    against the edge set *after* the previous removals, so each single
    removal is justified on the graph it is applied to and the whole
    sequence preserves the feasible set (hence the optimum).  Callers
    gate on ``system.distance_scaled`` themselves — this helper assumes
    uniform communication.
    """
    s_max = max(system.speeds)
    edges = dict(graph.edges)
    succs: dict[int, set[int]] = {n: set() for n in range(graph.num_nodes)}
    for (u, w) in edges:
        succs[u].add(w)
    removed: list[tuple[int, int]] = []
    changed = True
    while changed:
        changed = False
        for (u, w) in sorted(edges):
            c = edges[(u, w)]
            for m in sorted(succs[u]):
                if m == w or w not in succs[m]:
                    continue
                relay = graph.weight(m) / s_max + min(edges[(u, m)], edges[(m, w)])
                if tol.leq(c, relay):
                    del edges[(u, w)]
                    succs[u].discard(w)
                    removed.append((u, w))
                    changed = True
                    break
    return tuple(removed)


# -- linear-chain contraction ------------------------------------------------


def _chain_blocks(graph: TaskGraph) -> tuple[tuple[int, ...], ...]:
    """Maximal linear chains as ordered node blocks (singletons included).

    ``u -> x`` is a chain link when ``x`` is ``u``'s only successor and
    ``u`` is ``x``'s only predecessor; consequently external in-edges
    land only on a block's head and external out-edges leave only from
    its tail.  Blocks are emitted in head-id order.
    """
    next_in_chain: dict[int, int] = {}
    has_chain_pred: set[int] = set()
    for u in range(graph.num_nodes):
        succs = graph.succs(u)
        if len(succs) != 1:
            continue
        x = succs[0]
        if len(graph.preds(x)) == 1:
            next_in_chain[u] = x
            has_chain_pred.add(x)
    blocks: list[tuple[int, ...]] = []
    for head in range(graph.num_nodes):
        if head in has_chain_pred:
            continue
        run = [head]
        while run[-1] in next_in_chain:
            run.append(next_in_chain[run[-1]])
        blocks.append(tuple(run))
    return tuple(blocks)


def _contract(graph: TaskGraph) -> tuple[TaskGraph, tuple[tuple[int, ...], ...]]:
    """Fold every maximal chain into one block task (weights summed).

    Internal edges vanish (their communication folds to zero — the
    members share a PE after unfolding); external edges keep their cost
    and re-attach to the block.  Returns the contracted graph and the
    block membership in the *input* graph's node space.
    """
    blocks = _chain_blocks(graph)
    block_of: dict[int, int] = {}
    for b, members in enumerate(blocks):
        for n in members:
            block_of[n] = b
    weights = [sum(graph.weight(n) for n in members) for members in blocks]
    edges: dict[tuple[int, int], float] = {}
    for (u, w), c in graph.edges.items():
        bu, bw = block_of[u], block_of[w]
        if bu != bw:
            edges[(bu, bw)] = c
    contracted = TaskGraph(weights, edges, name=f"{graph.name}[contracted]")
    return contracted, blocks


# -- the preprocessing pass --------------------------------------------------

_MEMO_CAP = 128
_memo: "OrderedDict[tuple, PreprocessResult]" = OrderedDict()
_memo_lock = threading.Lock()


def clear_preprocess_cache() -> None:
    """Drop every memoized preprocessing result (tests)."""
    with _memo_lock:
        _memo.clear()


def preprocess_instance(
    graph: TaskGraph,
    system: ProcessorSystem,
    config: PreprocessConfig | None = None,
) -> PreprocessResult:
    """Apply every eligible reduction once; memoized per instance value.

    The memo key is the ``(graph, system, config)`` *value* (both are
    hashable value objects), so the daemon's duplicate requests — same
    instance arriving under different job ids — pay for preprocessing
    once, mirroring how ``ResultCache`` amortizes the search itself.
    """
    if config is None:
        config = PreprocessConfig()
    key = (graph, system, config)
    with _memo_lock:
        hit = _memo.get(key)
        if hit is not None:
            _memo.move_to_end(key)
            return hit

    result = _preprocess_uncached(graph, system, config)

    with _memo_lock:
        _memo[key] = result
        _memo.move_to_end(key)
        while len(_memo) > _MEMO_CAP:
            _memo.popitem(last=False)
    return result


def _preprocess_uncached(
    graph: TaskGraph, system: ProcessorSystem, config: PreprocessConfig
) -> PreprocessResult:
    reduced = graph
    removed: tuple[tuple[int, int], ...] = ()
    if config.transitive_reduction and not system.distance_scaled:
        removed = removable_transitive_edges(graph, system)
        if removed:
            kept = {e: c for e, c in graph.edges.items() if e not in set(removed)}
            reduced = TaskGraph(
                list(graph.weights), kept, name=f"{graph.name}[reduced]"
            )

    members: tuple[tuple[int, ...], ...] = tuple(
        (n,) for n in range(reduced.num_nodes)
    )
    chain_plan: ChainPlan | None = None
    contracted_away = 0
    if config.chain_contraction:
        contracted, blocks = _contract(reduced)
        if contracted.num_nodes < reduced.num_nodes:
            if system.num_pes == 1:
                # One PE: makespan == total work for every order, so the
                # contraction is an exact reduction.
                reduced = contracted
                members = blocks
                contracted_away = graph.num_nodes - reduced.num_nodes
            else:
                # p > 1: contraction is only upper-bound-sound (see the
                # module docstring) — expose it as a probe instance.
                chain_plan = ChainPlan(graph=contracted, members=blocks)

    groups = node_equivalence_classes(reduced)
    root_symmetry = (
        config.root_symmetry
        and system.num_pes > 1
        and system.is_homogeneous
        and not system.distance_scaled
    )
    nontrivial = [g for g in groups if len(g) > 1]
    stats = {
        "preprocess_edges_removed": len(removed),
        "preprocess_nodes_contracted": contracted_away,
        "preprocess_equivalence_groups": len(nontrivial),
        "preprocess_equivalence_members": sum(len(g) - 1 for g in nontrivial),
    }
    return PreprocessResult(
        original=graph,
        system=system,
        graph=reduced,
        members=members,
        removed_edges=removed,
        equivalence_groups=groups,
        root_symmetry=root_symmetry,
        chain_plan=chain_plan,
        stats=stats,
    )
