"""``unused-import`` — imports no longer referenced in the module.

Dead imports are noise in most codebases; here they are worse, because
an import *executes* the imported module — a stale ``from repro.parallel
import ...`` in a low-layer module both violates layering and drags the
multiprocessing machinery into processes that never use it.

Mechanics: collect every binding introduced by ``import``/``from ...
import`` at any nesting level, then subtract names referenced by
``Name``/``Attribute``-root/``global``/``nonlocal`` usage and names
mentioned inside string constants (docstrings and ``__all__`` are
plain strings to the AST; a word-boundary search keeps re-exported
names alive).  ``__init__.py`` files are skipped entirely — their
imports *are* the public API.  ``from __future__ import ...`` and
``import x as _`` underscore bindings are exempt.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.driver import ModuleContext, Rule

__all__ = ["UnusedImportRule"]


class UnusedImportRule(Rule):
    id = "unused-import"
    description = "imported name is never used in the module"
    severity = "warning"
    interests = ()  # whole-module analysis in finish_module

    def begin_module(self, ctx: ModuleContext) -> bool:
        # __init__.py imports are the package's public surface.
        return ctx.path.name != "__init__.py"

    def finish_module(self, ctx: ModuleContext) -> None:
        #: binding name -> (lineno, display text)
        imported: dict[str, tuple[int, str]] = {}
        used: set[str] = set()
        strings: list[str] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    # `import a.b` binds the root `a`; `as` binds the alias.
                    bound = alias.asname or alias.name.split(".")[0]
                    imported.setdefault(bound, (node.lineno, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imported.setdefault(
                        bound,
                        (node.lineno, f"{node.module or ''}.{alias.name}"),
                    )
            elif isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                used.update(node.names)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                strings.append(node.value)
        blob = "\n".join(strings)
        for name, (lineno, display) in sorted(
            imported.items(), key=lambda kv: kv[1][0]
        ):
            if name in used or name.startswith("_"):
                continue
            if re.search(rf"\b{re.escape(name)}\b", blob):
                continue  # referenced in __all__, a docstring or doctest
            ctx.report(
                self,
                lineno,
                f"'{display}' is imported as '{name}' but never used",
            )
