"""Concurrency-safety pass over ``repro.parallel`` and ``repro.service``.

Two rules tuned to the HDA* multiprocessing backend and the solver
daemon, where the seed repo's worst bugs historically lived:

``worker-shared-state``
    Module-level (or closure) state mutated from code *reachable from a
    worker entry point*.  Under the spawn start method each worker gets
    a copy-on-write snapshot, so a mutated module global silently
    diverges between parent and children — the bug looks like a lost
    update, reproduces only under load, and is invisible to tests that
    run the serial path.  Shared state must go through the sanctioned
    channels (``multiprocessing`` queues/values, ``SharedIncumbent``,
    ``WorkerBoard``, ``Outbox``).

    Worker entry points are found by name (``_worker``/``*_loop``/
    ``*_main`` and friends), by being passed as ``target=`` to a
    process/thread constructor, or as the callable handed to
    ``.submit``/``.map``/``.apply_async``.  Reachability follows the
    module-local call graph from those roots.

``blocking-recv``
    ``Connection.recv()`` / ``queue.get()`` with no timeout in those
    same packages.  The PR 6 quiescence protocol relies on every
    blocking receive having a timeout so a dead peer cannot hang the
    join path forever; ``get_nowait`` and ``await``-ed asyncio gets are
    exempt (the event loop owns cancellation there).
"""

from __future__ import annotations

import ast
import re
from collections import deque

from repro.analysis.driver import ModuleContext, Rule

__all__ = ["WorkerSharedStateRule", "BlockingRecvRule"]

_WORKER_NAME_RE = re.compile(
    r"(^_?worker|_worker$|_loop$|_main$|^_?run_worker|^_pump|^_drain)", re.I
)

#: Methods whose first positional argument is executed elsewhere.
_DISPATCH_METHODS = frozenset({"submit", "map", "apply_async", "imap",
                               "imap_unordered", "starmap"})

#: Mutator method names on containers.
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault", "pop",
    "clear", "remove", "discard", "popleft", "appendleft",
})


def _func_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class WorkerSharedStateRule(Rule):
    id = "worker-shared-state"
    description = (
        "module-level state mutated in worker-reachable code diverges "
        "across process boundaries"
    )
    interests = ()  # whole-module analysis in finish_module

    def begin_module(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages("parallel", "service")

    # -- module model -------------------------------------------------

    @staticmethod
    def _module_globals(tree: ast.Module) -> set[str]:
        """Names bound by top-level assignments (candidate shared state)."""
        out: set[str] = set()

        def add(target: ast.AST) -> None:
            if isinstance(target, ast.Name):
                out.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    add(elt)

        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    add(t)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                add(stmt.target)
        return out

    @classmethod
    def _entry_points(cls, tree: ast.Module, funcs: dict[str, ast.AST]):
        """Function names that run on a worker thread/process."""
        entries = {
            name for name in funcs if _WORKER_NAME_RE.search(name)
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    entries.add(kw.value.id)
            name = _func_name(node.func)
            if name in _DISPATCH_METHODS and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name):
                    entries.add(first.id)
        return entries & set(funcs)

    @staticmethod
    def _calls_in(func: ast.AST) -> set[str]:
        return {
            node.func.id
            for node in ast.walk(func)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
        }

    @staticmethod
    def _local_names(func: ast.AST) -> set[str]:
        """Parameters plus plainly-assigned locals (shadow the globals)."""
        out: set[str] = set()
        args = func.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            out.add(a.arg)
        if args.vararg:
            out.add(args.vararg.arg)
        if args.kwarg:
            out.add(args.kwarg.arg)
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    out.add(node.target.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    out.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            out.add(elt.id)
            elif isinstance(node, ast.withitem) and isinstance(
                node.optional_vars, ast.Name
            ):
                out.add(node.optional_vars.id)
        return out - declared_global

    # -- the pass -----------------------------------------------------

    def finish_module(self, ctx: ModuleContext) -> None:
        tree = ctx.tree
        funcs: dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not funcs:
            return
        entries = self._entry_points(tree, funcs)
        if not entries:
            return
        module_globals = self._module_globals(tree)

        # Worker-reachable functions: BFS over the local call graph.
        reachable: set[str] = set()
        queue = deque(entries)
        while queue:
            name = queue.popleft()
            if name in reachable:
                continue
            reachable.add(name)
            for callee in self._calls_in(funcs[name]) & set(funcs):
                if callee not in reachable:
                    queue.append(callee)

        for name in sorted(reachable):
            func = funcs[name]
            locals_ = self._local_names(func)

            def is_shared(root: str) -> bool:
                return root in module_globals and root not in locals_

            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    hit = [n for n in node.names if n in module_globals]
                    if hit:
                        ctx.report(
                            self,
                            node,
                            f"worker-reachable '{name}' rebinds module "
                            f"global(s) {', '.join(sorted(hit))}; the write "
                            f"lands in one process's copy only — use a "
                            f"multiprocessing-safe channel "
                            f"(SharedIncumbent/WorkerBoard/queues)",
                        )
                elif isinstance(node, ast.Assign):
                    for t in node.targets:
                        if isinstance(
                            t, (ast.Subscript, ast.Attribute)
                        ) and isinstance(t.value, ast.Name) and is_shared(
                            t.value.id
                        ):
                            ctx.report(
                                self,
                                node,
                                f"worker-reachable '{name}' mutates module-"
                                f"level '{t.value.id}' "
                                f"('{ctx.segment(t)} = …'); each process "
                                f"sees its own copy — route through a "
                                f"multiprocessing-safe channel",
                            )
                elif isinstance(node, ast.Call):
                    func_node = node.func
                    if (
                        isinstance(func_node, ast.Attribute)
                        and func_node.attr in _MUTATORS
                        and isinstance(func_node.value, ast.Name)
                        and is_shared(func_node.value.id)
                    ):
                        ctx.report(
                            self,
                            node,
                            f"worker-reachable '{name}' mutates module-"
                            f"level '{func_node.value.id}' via "
                            f".{func_node.attr}(); each process sees its "
                            f"own copy — route through a multiprocessing-"
                            f"safe channel",
                        )


class BlockingRecvRule(Rule):
    id = "blocking-recv"
    description = (
        "Connection.recv()/queue.get() without a timeout can hang the "
        "quiescence/join path forever"
    )
    interests = (ast.Call,)

    def begin_module(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages("parallel", "service")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "recv" and not node.args and not node.keywords:
            if isinstance(ctx.ancestors[-1], ast.Await):
                return
            ctx.report(
                self,
                node,
                f"'{ctx.segment(node)}' blocks forever if the peer dies; "
                f"poll with a timeout so supervision can intervene",
            )
        elif func.attr == "get" and not node.args:
            if any(kw.arg in ("timeout", "block") for kw in node.keywords):
                return
            if isinstance(ctx.ancestors[-1], ast.Await):
                return  # asyncio queue: cancellation owns unblocking
            # Heuristic guard: dict.get(...) has positional args and is
            # filtered above; a zero-arg .get() on a non-queue object is
            # rare enough that receiver-name filtering is unnecessary.
            ctx.report(
                self,
                node,
                f"'{ctx.segment(node)}' has no timeout; a crashed producer "
                f"hangs this receive forever — pass timeout= and loop "
                f"(see the worker supervision pattern in repro.parallel)",
            )
