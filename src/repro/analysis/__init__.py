"""Static analysis for the repro codebase: ``repro lint``.

A dependency-free invariant checker built on the stdlib :mod:`ast`
module.  The codebase carries a set of load-bearing conventions that
ordinary linters cannot see — relative-tolerance float comparisons
(:mod:`repro.util.tolerance`), the strict package layering that keeps
the import graph acyclic, the engine anytime/probe contract, and the
shared-state discipline of the multiprocess backend.  Each of those is
enforced here as a machine-checked rule, run as a blocking CI gate.

Usage::

    repro lint src tests                      # text report, exit 1 on findings
    repro lint --format json src              # machine-readable report
    repro lint --baseline FILE src tests      # pre-existing findings pass
    repro lint --rules layering,float-compare src

or from Python::

    from repro.analysis import lint_paths
    report = lint_paths(["src", "tests"])
    assert not report.findings

The subsystem is intentionally **dependency-free in both directions**:
it imports nothing from the rest of :mod:`repro` (so it can lint a
broken tree) and nothing outside the standard library.  See
``docs/analysis.md`` for the rule catalog, the suppression and
baseline workflow, and how to add a rule.
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.driver import (
    ModuleContext,
    Report,
    Rule,
    collect_files,
    lint_paths,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import available_rules, make_rules

__all__ = [
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "available_rules",
    "collect_files",
    "lint_paths",
    "load_baseline",
    "make_rules",
    "write_baseline",
]
