"""``mutable-default`` — shared mutable default arguments.

A ``def f(x, acc=[])`` default is created once at function definition
and shared across calls — in this codebase that class of bug is
amplified by the multiprocessing layer, where a mutated default in a
parent-process helper silently diverges from the copy forked into
workers.  Flags ``list``/``dict``/``set`` displays and comprehensions,
and bare ``list()``/``dict()``/``set()`` calls, used as parameter
defaults.  The fix is the stock ``None`` sentinel.
"""

from __future__ import annotations

import ast

from repro.analysis.driver import ModuleContext, Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CTORS = frozenset({"list", "dict", "set"})


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CTORS
        and not node.args
        and not node.keywords
    )


class MutableDefaultRule(Rule):
    id = "mutable-default"
    description = "mutable default argument is shared across calls"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        args = node.args
        name = getattr(node, "name", "<lambda>")
        # Positional defaults align with the *tail* of args+posonly.
        positional = list(args.posonlyargs) + list(args.args)
        offset = len(positional) - len(args.defaults)
        pairs = [
            (positional[offset + i], d) for i, d in enumerate(args.defaults)
        ]
        pairs += [
            (a, d)
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ]
        for arg, default in pairs:
            if _is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default '{arg.arg}={ctx.segment(default)}' in "
                    f"'{name}' is created once and shared across calls; use "
                    f"'{arg.arg}=None' and create it inside the body",
                )
