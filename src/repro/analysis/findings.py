"""The :class:`Finding` record every rule produces.

Findings are plain frozen dataclasses ordered by ``(path, line, rule)``
so reports are deterministic regardless of rule execution order, and
their :attr:`~Finding.baseline_key` deliberately excludes the line
number — a baseline entry keeps matching the finding it grandfathered
even as unrelated edits shift the file around it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "SEVERITIES"]

#: Recognized severities; every built-in rule reports ``"error"`` (the
#: lint gate is blocking — a rule not worth blocking on is not worth
#: running in CI), but the field exists so downstream consumers can
#: triage a JSON report.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity for baseline matching: ``(rule, path, message)``.

        Line numbers churn with every edit; the message text is stable
        for a given violation, so a baselined finding stays baselined
        until the offending code actually changes.
        """
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """The one-line text-report form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        """Flat dict for the JSON report."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }
