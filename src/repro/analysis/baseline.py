"""Committed-baseline mechanics for ``repro lint``.

A baseline grandfathers *pre-existing* findings when a new rule lands:
entries matching a current finding are subtracted from the report, new
findings still block, and entries matching nothing are *stale* — the
CI self-check (``--check-baseline``) fails on stale entries so the
baseline can only shrink over time.

File format (JSON, committed at the repo root as
``.repro-lint-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {"rule": "float-compare", "path": "src/repro/x.py",
         "message": "raw float comparison ..."}
      ]
    }

Entries match on ``(rule, path, message)`` — deliberately not the line
number, which churns with every unrelated edit (see
:attr:`repro.analysis.findings.Finding.baseline_key`).  One entry
absorbs every current finding with its key, so a mechanically repeated
violation does not need one entry per occurrence.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]


def load_baseline(path: str | os.PathLike) -> list[dict]:
    """Load and validate a baseline file; returns its entries."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path}: not valid JSON: {exc}") from None
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(
            f"baseline {path}: expected an object with an 'entries' list"
        )
    entries = []
    for i, entry in enumerate(data["entries"]):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(k), str) for k in ("rule", "path", "message")
        ):
            raise ValueError(
                f"baseline {path}: entry #{i} must carry string "
                f"'rule', 'path' and 'message' fields"
            )
        entries.append(entry)
    return entries


def write_baseline(path: str | os.PathLike, findings) -> int:
    """Write ``findings`` as a fresh baseline; returns the entry count.

    Duplicate keys collapse to one entry (matching is one-to-many).
    """
    seen: dict[tuple[str, str, str], dict] = {}
    for f in findings:
        seen.setdefault(
            f.baseline_key,
            {"rule": f.rule, "path": f.path, "message": f.message},
        )
    entries = [seen[k] for k in sorted(seen)]
    payload = {"version": 1, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], int, list[dict]]:
    """Subtract baselined findings.

    Returns ``(kept_findings, baselined_count, stale_entries)`` where
    stale entries are the ones that matched no current finding.
    """
    keys = {(e["rule"], e["path"], e["message"]) for e in entries}
    kept: list[Finding] = []
    matched: set[tuple[str, str, str]] = set()
    baselined = 0
    for f in findings:
        if f.baseline_key in keys:
            matched.add(f.baseline_key)
            baselined += 1
        else:
            kept.append(f)
    stale = [
        e for e in entries if (e["rule"], e["path"], e["message"]) not in matched
    ]
    return kept, baselined, stale
