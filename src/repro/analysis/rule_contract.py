"""``engine-contract`` — every registered engine honors the anytime API.

The engine registry (:data:`repro.search.ENGINES`) is the seam the
portfolio, the daemon and the CLI dispatch through; PRs 6–7 settled
its contract:

* every engine accepts keyword-only ``budget=``, ``incumbent=`` and
  ``probe=`` — callers thread resource limits, warm starts and
  convergence sampling through generically;
* every engine returns a :class:`repro.search.result.SearchResult`
  with ``lower_bound`` and ``interrupted`` populated, so a
  budget-stopped run is a *certified-approximate* answer, not a shrug.

This rule checks the statically-visible half: it collects engine
registrations (``_ENGINE_LOADERS = {...}`` literals and
``register_engine("name", lambda: fn)`` calls) across the linted
modules, resolves each loader to its function definition through the
registry module's imports, and verifies the signature and that the
defining module constructs ``SearchResult`` with both contract fields.
The dynamic half — real signatures after decorators, values actually
populated — is pinned by the import-time conformance test
(``tests/search/test_engine_registry.py``) parametrized over
:data:`~repro.search.ENGINES`.
"""

from __future__ import annotations

import ast

from repro.analysis.driver import ModuleContext, Rule
from repro.analysis.findings import Finding

__all__ = ["EngineContractRule"]

_REQUIRED_KWONLY = ("budget", "incumbent", "probe")
_REQUIRED_RESULT_FIELDS = ("lower_bound", "interrupted")


class EngineContractRule(Rule):
    id = "engine-contract"
    description = (
        "registered engines must accept budget=/incumbent=/probe= and "
        "return SearchResult with lower_bound/interrupted"
    )
    interests = (ast.FunctionDef, ast.Call, ast.Assign, ast.ImportFrom)

    def __init__(self) -> None:
        #: (engine, registry module, display path, line, func name)
        self._registrations: list[tuple[str, tuple, str, int, str]] = []
        #: (module, func) -> set of keyword-only parameter names
        self._functions: dict[tuple[tuple, str], set[str]] = {}
        #: modules that build SearchResult(..., lower_bound=, interrupted=)
        self._contract_ctors: set[tuple] = set()
        #: registry module -> {imported name: source module tuple}
        self._imports: dict[tuple, dict[str, tuple]] = {}
        self._linted_modules: set[tuple] = set()

    def begin_module(self, ctx: ModuleContext) -> bool:
        if ctx.module is None or ctx.module[0] != "repro":
            return False
        self._linted_modules.add(ctx.module)
        return True

    @staticmethod
    def _loader_target(value: ast.AST) -> str | None:
        """Function name a loader resolves to (lambda body or bare name)."""
        if isinstance(value, ast.Lambda):
            value = value.body
        if isinstance(value, ast.Name):
            return value.id
        return None

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and node.module.startswith(
                "repro"
            ):
                table = self._imports.setdefault(ctx.module, {})
                source = tuple(node.module.split("."))
                for alias in node.names:
                    table[alias.asname or alias.name] = source
            return
        if isinstance(node, ast.FunctionDef):
            if isinstance(ctx.ancestors[-1], ast.Module):
                self._functions[(ctx.module, node.name)] = {
                    a.arg for a in node.args.kwonlyargs
                }
            return
        if isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Dict)
                and any(
                    isinstance(t, ast.Name) and t.id == "_ENGINE_LOADERS"
                    for t in node.targets
                )
            ):
                for key, value in zip(node.value.keys, node.value.values):
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        continue
                    target = self._loader_target(value)
                    if target is not None:
                        self._registrations.append(
                            (key.value, ctx.module, ctx.display,
                             value.lineno, target)
                        )
            return
        # ast.Call
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name == "register_engine" and len(node.args) >= 2:
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                target = self._loader_target(node.args[1])
                if target is not None:
                    self._registrations.append(
                        (key.value, ctx.module, ctx.display,
                         node.lineno, target)
                    )
        elif name == "SearchResult":
            kw = {k.arg for k in node.keywords}
            if all(field in kw for field in _REQUIRED_RESULT_FIELDS):
                self._contract_ctors.add(ctx.module)

    def finish_run(self, report) -> None:
        for engine, reg_module, display, line, func_name in self._registrations:
            target_module = self._imports.get(reg_module, {}).get(
                func_name, reg_module
            )
            kwonly = self._functions.get((target_module, func_name))
            if kwonly is None:
                if target_module in self._linted_modules:
                    report(
                        Finding(
                            path=display,
                            line=line,
                            rule=self.id,
                            message=(
                                f"engine '{engine}' resolves to "
                                f"'{func_name}', which is not a top-level "
                                f"function of {'.'.join(target_module)}"
                            ),
                        )
                    )
                continue  # defining module outside the lint set
            missing = [p for p in _REQUIRED_KWONLY if p not in kwonly]
            if missing:
                report(
                    Finding(
                        path=display,
                        line=line,
                        rule=self.id,
                        message=(
                            f"engine '{engine}' ({func_name}) must accept "
                            f"keyword-only {'/'.join(_REQUIRED_KWONLY)}; "
                            f"missing: {', '.join(missing)}"
                        ),
                    )
                )
            if (
                target_module in self._linted_modules
                and target_module not in self._contract_ctors
            ):
                report(
                    Finding(
                        path=display,
                        line=line,
                        rule=self.id,
                        message=(
                            f"engine '{engine}': module "
                            f"{'.'.join(target_module)} never constructs "
                            f"SearchResult with lower_bound=/interrupted= — "
                            f"budget-stopped runs must return a certified "
                            f"bracket (the PR 6 anytime contract)"
                        ),
                    )
                )
