"""Single-pass AST lint driver.

Every file is parsed once (with an in-process cache keyed on mtime, so
repeated :func:`lint_paths` calls from tests do not re-parse the tree)
and walked once; rules subscribe to the node types they care about via
:attr:`Rule.interests` and are dispatched during that single walk with
the ancestor stack available on the context.  Rules that need
whole-module state (unused imports, worker reachability) do their work
in :meth:`Rule.finish_module`; rules that need *cross*-module state
(the engine-contract registry check) accumulate during the walk and
report from :meth:`Rule.finish_run`.

Suppressions
------------

``# repro: ignore[rule-id]`` on the offending line suppresses that
rule's findings on the line; on a standalone comment line it applies
to the following line.  Multiple ids separate with commas.  Every
suppression should carry a neighbouring comment saying *why* — the
rule catalog in ``docs/analysis.md`` treats an unexplained suppression
as a review smell.

Baselines
---------

A committed baseline file (see :mod:`repro.analysis.baseline`) lets a
new rule land without blocking on pre-existing findings: baselined
findings are subtracted from the report, and entries that no longer
match anything are listed as *stale* so CI can require the baseline to
stay minimal.
"""

from __future__ import annotations

import ast
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.findings import Finding

__all__ = ["Rule", "ModuleContext", "Report", "collect_files", "lint_paths"]

#: ``# repro: ignore[float-compare]`` / ``ignore[a, b]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\- ]+)\]")

#: Parse cache: (path, mtime_ns) -> (tree, source).  Bounded by a
#: clear-on-overflow guard; the working set (one repo) is far smaller.
_PARSE_CACHE: dict[tuple[str, int], tuple[ast.Module, str]] = {}
_PARSE_CACHE_LIMIT = 4096


def _parse(path: Path) -> tuple[ast.Module, str]:
    try:
        stamp = path.stat().st_mtime_ns
    except OSError:
        stamp = -1
    key = (str(path), stamp)
    hit = _PARSE_CACHE.get(key)
    if hit is not None:
        return hit
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[key] = (tree, source)
    return tree, source


def module_parts(path: Path) -> tuple[str, ...] | None:
    """Dotted-module identity of ``path`` inside the ``repro`` package.

    ``src/repro/search/astar.py`` -> ``("repro", "search", "astar")``;
    package ``__init__`` files collapse to the package tuple.  Returns
    ``None`` for files outside a ``repro`` package root (tests,
    benchmarks) — path-scoped rules skip those.  A ``src/repro``
    anchor wins over a bare ``repro`` path component so a repo checked
    out *as* a directory named ``repro`` does not swallow its tests.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    anchor = None
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            if i > 0 and parts[i - 1] == "src":
                anchor = i
                break
            if anchor is None:
                anchor = i
    if anchor is None:
        return None
    mod = tuple(parts[anchor:])
    if mod[-1] == "__init__":
        mod = mod[:-1]
    return mod


class ModuleContext:
    """Per-file state handed to every rule callback."""

    def __init__(self, path: Path, display: str, tree: ast.Module, source: str):
        self.path = path
        #: Path as shown in findings (relative to the lint root).
        self.display = display
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()
        #: Dotted-module tuple, or None outside the repro package.
        self.module = module_parts(path)
        #: Ancestor stack maintained by the walker; ``ancestors[-1]``
        #: is the parent of the node currently being visited.  Rules
        #: must copy it if they need it beyond the callback.
        self.ancestors: list[ast.AST] = []
        self.findings: list[Finding] = []

    def in_packages(self, *packages: str) -> bool:
        """True when this module lives under ``repro.<package>``."""
        return (
            self.module is not None
            and len(self.module) >= 2
            and self.module[1] in packages
        )

    def report(
        self,
        rule: "Rule",
        node: ast.AST | int,
        message: str,
        severity: str | None = None,
    ) -> None:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.display,
                line=line,
                rule=rule.id,
                message=message,
                severity=severity or rule.severity,
            )
        )

    def segment(self, node: ast.AST, limit: int = 60) -> str:
        """Source text of ``node``, truncated, for messages."""
        text = ast.get_source_segment(self.source, node) or "<expr>"
        text = " ".join(text.split())
        return text if len(text) <= limit else text[: limit - 1] + "…"


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`description` and
    :attr:`interests` (the AST node types :meth:`visit` wants) and
    implement any of the four hooks.  One rule instance sees the whole
    run, module by module, so cross-module rules can accumulate state.
    """

    id: str = ""
    description: str = ""
    severity: str = "error"
    #: Node types dispatched to :meth:`visit` during the single walk.
    interests: tuple[type, ...] = ()

    def begin_module(self, ctx: ModuleContext) -> bool:
        """Return False to skip this module entirely."""
        return True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        """Called for every node whose type is in :attr:`interests`."""

    def finish_module(self, ctx: ModuleContext) -> None:
        """Called after the walk; whole-module analyses report here."""

    def finish_run(self, report) -> None:
        """Called once after every module; ``report(Finding)`` emits."""


@dataclass
class Report:
    """Outcome of one :func:`lint_paths` run."""

    findings: list[Finding]
    files: int
    seconds: float
    rules: tuple[str, ...] = ()
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no unbaselined, unsuppressed findings remain."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """The JSON report schema (version 1, additive-only)."""
        return {
            "version": 1,
            "files": self.files,
            "seconds": round(self.seconds, 3),
            "rules": list(self.rules),
            "counts": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.as_dict() for f in self.findings],
            "stale_baseline": self.stale_baseline,
        }

    def render(self) -> str:
        """Text report: one line per finding plus a summary."""
        out = [f.render() for f in self.findings]
        for entry in self.stale_baseline:
            out.append(
                f"{entry.get('path', '?')}: [baseline] stale entry for "
                f"rule '{entry.get('rule', '?')}' — the finding no longer "
                f"exists; remove it from the baseline"
            )
        out.append(
            f"{len(self.findings)} finding(s) across {self.files} file(s) "
            f"in {self.seconds:.2f}s"
            + (f" ({self.baselined} baselined)" if self.baselined else "")
            + (f" ({self.suppressed} suppressed)" if self.suppressed else "")
        )
        return "\n".join(out)


def collect_files(paths) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: dict[Path, None] = {}
    missing: list[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" not in f.parts:
                    seen.setdefault(f, None)
        elif p.is_file():
            seen.setdefault(p, None)
        else:
            missing.append(str(raw))
    if missing:
        raise FileNotFoundError(f"no such file or directory: {missing}")
    return sorted(seen)


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map line number -> suppressed rule ids.

    A marker on a code line covers that line; on a standalone comment
    line it covers the next line.
    """
    out: dict[int, set[str]] = {}
    for idx, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        target = idx + 1 if line.lstrip().startswith("#") else idx
        out.setdefault(target, set()).update(ids)
    return out


def _walk(node: ast.AST, ctx: ModuleContext, dispatch) -> None:
    ctx.ancestors.append(node)
    for child in ast.iter_child_nodes(node):
        for rule in dispatch.get(type(child), ()):
            rule.visit(child, ctx)
        _walk(child, ctx, dispatch)
    ctx.ancestors.pop()


def lint_paths(
    paths,
    *,
    rules=None,
    baseline: str | os.PathLike | None = None,
    root: str | os.PathLike | None = None,
) -> Report:
    """Lint ``paths`` (files or directories) and return a :class:`Report`.

    Parameters
    ----------
    rules:
        Iterable of rule ids to run (default: all registered rules).
    baseline:
        Path to a baseline file; matching findings are subtracted and
        counted in :attr:`Report.baselined`, entries matching nothing
        land in :attr:`Report.stale_baseline`.
    root:
        Directory findings' paths are reported relative to (default:
        the current working directory).
    """
    from repro.analysis.rules import make_rules

    t0 = time.perf_counter()
    rule_objs = make_rules(rules)
    rootp = Path(root) if root is not None else Path.cwd()
    files = collect_files(paths)

    findings: list[Finding] = []
    suppressed = 0
    for path in files:
        try:
            display = path.resolve().relative_to(rootp.resolve()).as_posix()
        except ValueError:
            display = path.as_posix()
        try:
            tree, source = _parse(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    path=display,
                    line=line,
                    rule="parse-error",
                    message=f"cannot analyze file: {exc}",
                )
            )
            continue
        ctx = ModuleContext(path, display, tree, source)
        live = [r for r in rule_objs if r.begin_module(ctx)]
        dispatch: dict[type, list[Rule]] = {}
        for r in live:
            for t in r.interests:
                dispatch.setdefault(t, []).append(r)
        _walk(tree, ctx, dispatch)
        for r in live:
            r.finish_module(ctx)
        per_line = _suppressions(ctx.lines)
        for finding in ctx.findings:
            if finding.rule in per_line.get(finding.line, ()):
                suppressed += 1
            else:
                findings.append(finding)

    # Cross-module rules report last (suppression is line-scoped and
    # already applied to per-module findings; finish_run findings
    # anchor at registration sites and are suppressed via baseline).
    for r in rule_objs:
        r.finish_run(findings.append)

    findings.sort()
    baselined = 0
    stale: list[dict] = []
    if baseline is not None:
        entries = load_baseline(baseline)
        findings, baselined, stale = apply_baseline(findings, entries)
    return Report(
        findings=findings,
        files=len(files),
        seconds=time.perf_counter() - t0,
        rules=tuple(r.id for r in rule_objs),
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
    )
