"""``layering`` — the package import order, machine-enforced.

The codebase is layered so the import graph stays acyclic without
tricks.  Each package may import only packages at its own layer or
below; the full order (low to high)::

    errors / util / obs / testing / analysis     (0: leaf utilities)
    system                                       (1)
    graph                                        (2)
    schedule                                     (3)
    heuristics                                   (4)
    search                                       (5)
    baselines / workloads                        (6)
    parallel                                     (7)
    service                                      (8)
    experiments                                  (9)
    cli / __init__ / __main__                    (top: may import anything)

Special leaves:

* ``obs`` is importable by everything but imports **nothing** from
  repro — telemetry must never create a dependency;
* ``testing`` ships fault hooks and lock instrumentation callable from
  any layer, so it too imports nothing;
* ``analysis`` (this subsystem) is fully freestanding so it can lint a
  broken tree.

The rule inspects **every** ``import`` statement, including
function-local ones — a deferred import hides a cycle from Python's
import machinery but not from the layer order (the lazy ``"hda"``
engine loader this rule retired was exactly that trick).  The DESIGN.md
"Package layering" diagram is generated from this table; keep them in
sync.
"""

from __future__ import annotations

import ast

from repro.analysis.driver import ModuleContext, Rule

__all__ = ["LayeringRule", "LAYERS", "LAYER_ORDER"]

#: Package -> layer rank.  Equal ranks may not depend on each other
#: being imported first, but may coexist (baselines vs workloads).
LAYERS: dict[str, int] = {
    "errors": 0,
    "util": 0,
    "obs": 0,
    "testing": 0,
    "analysis": 0,
    "system": 1,
    "graph": 2,
    "schedule": 3,
    "heuristics": 4,
    "search": 5,
    "baselines": 6,
    "workloads": 6,
    "parallel": 7,
    "service": 8,
    "experiments": 9,
}

#: Human-readable order for messages and the DESIGN.md diagram.
LAYER_ORDER = (
    "errors/util/obs/testing/analysis → system → graph → schedule → "
    "heuristics → search → baselines/workloads → parallel → service → "
    "experiments → cli"
)

#: Root-level modules allowed to import anything.
_ROOT_MODULES = frozenset({"cli", "__main__"})
_TOP_RANK = 99

#: Leaf packages that may import no other repro package.
_FREESTANDING = frozenset({"obs", "testing", "analysis"})


def _my_rank(module: tuple[str, ...]) -> tuple[str, int] | None:
    """``(package, rank)`` of the importing module, None to skip."""
    if len(module) == 1:  # repro/__init__.py
        return ("repro", _TOP_RANK)
    pkg = module[1]
    if pkg in _ROOT_MODULES:
        return (pkg, _TOP_RANK)
    if pkg in LAYERS:
        return (pkg, LAYERS[pkg])
    return (pkg, -1)  # unknown: flagged so the map stays complete


class LayeringRule(Rule):
    id = "layering"
    description = (
        "import from a higher layer (util → graph → search → parallel → "
        "service → cli; obs/testing/analysis import nothing)"
    )
    interests = (ast.Import, ast.ImportFrom)

    def begin_module(self, ctx: ModuleContext) -> bool:
        if ctx.module is None or ctx.module[0] != "repro":
            return False
        info = _my_rank(ctx.module)
        if info is None:
            return False
        self._pkg, self._rank = info
        self._module = ctx.module
        return True

    def _targets(self, node: ast.Import | ast.ImportFrom):
        """Imported repro package names (with the reported lineno)."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro":
                    yield parts[1] if len(parts) > 1 else "repro"
            return
        if node.level:  # relative: resolve against this module's package
            base = self._module[: -node.level] if node.level <= len(
                self._module
            ) else ()
            parts = list(base) + (node.module.split(".") if node.module else [])
        else:
            parts = node.module.split(".") if node.module else []
        if parts and parts[0] == "repro":
            yield parts[1] if len(parts) > 1 else "repro"

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.Import, ast.ImportFrom))
        if self._rank == -1:
            ctx.report(
                self,
                node,
                f"package 'repro.{self._pkg}' is not in the layer map; "
                f"add it to repro.analysis.rule_layering.LAYERS (and the "
                f"DESIGN.md layering diagram)",
            )
            return
        for target in self._targets(node):
            if target == "repro":
                target_rank = _TOP_RANK
            else:
                target_rank = LAYERS.get(target)
            if target_rank is None:
                continue  # importing an unknown package: its own module
                # will be flagged when linted
            if self._pkg in _FREESTANDING and target != self._pkg:
                ctx.report(
                    self,
                    node,
                    f"repro.{self._pkg} must stay freestanding (importable "
                    f"from every layer) but imports repro.{target}",
                )
                continue
            if self._rank >= _TOP_RANK:
                continue
            if target_rank > self._rank:
                ctx.report(
                    self,
                    node,
                    f"layering violation: repro.{self._pkg} (layer "
                    f"{self._rank}) imports repro.{target} (layer "
                    f"{target_rank}); allowed order is {LAYER_ORDER}. "
                    f"Deferred function-local imports count — they hide "
                    f"cycles from Python, not from the architecture",
                )
