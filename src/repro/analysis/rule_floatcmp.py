"""``float-compare`` — raw comparisons between cost-like floats.

Search costs are sums and maxima of task weights and communication
delays; two mathematically-equal ``f`` values computed along different
expansion orders differ by accumulated rounding.  Every comparison
that *decides* something — prune, terminate, admit — must therefore
route through :mod:`repro.util.tolerance` (``leq``/``lt``/``geq``/
``gt``/``proves_bound``); PR 3 and PR 5 each had to re-unify hand
-rolled ``<= ... + 1e-9`` call sites, which is exactly the regression
this rule freezes out.

Scope (deliberately narrow to stay high-precision):

* only comparisons inside ``if``/``while`` **tests** — statement-level
  decisions.  Value computations (ternaries, comprehensions, ``return``
  expressions, ``min``/``max`` folds) are not decisions and stay exact;
* both operands must be *cost-like* (the identifier vocabulary below:
  ``f``, ``cf``, ``makespan``, ``length``, ``bound``, ``upper``, …);
* comparisons against numeric literals are exempt — ``if length <= 0``
  is a validation guard, not a drift-sensitive decision;
* **running-extremum updates are exempt**: when the branch body assigns
  one of the compared operands (``if f > lower: lower = f``,
  ``if child.makespan < best.length: best = child…``), the comparison
  maintains an incumbent/extremum and is deliberately exact — replacing
  a schedule only on a strict raw improvement is safe without
  tolerance, and keeps engines byte-identical to the reference
  implementations the property tests pin.
"""

from __future__ import annotations

import ast

from repro.analysis.driver import ModuleContext, Rule

__all__ = ["FloatCompareRule"]

#: Identifiers treated as cost/makespan/f-value expressions.
_COST_VOCAB = frozenset(
    {
        "f", "g", "h", "cf", "ch", "est", "cost", "makespan", "length",
        "best_len", "bound", "lower", "upper", "incumbent", "threshold",
        "floor", "min_f", "max_f", "f_value", "fvalue", "lb", "ub",
        "lower_bound", "upper_bound", "span", "best_f",
    }
)

_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _cost_paths(node: ast.AST) -> tuple[set[str], bool]:
    """``(referenced paths+roots, is cost-like)`` for an operand."""
    if isinstance(node, ast.Name):
        return {node.id}, node.id in _COST_VOCAB
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        paths = {dotted} if dotted else set()
        if dotted:
            paths.add(dotted.split(".", 1)[0])
        return paths, node.attr in _COST_VOCAB
    if isinstance(node, ast.UnaryOp):
        return _cost_paths(node.operand)
    if isinstance(node, ast.BinOp):
        lp, lok = _cost_paths(node.left)
        rp, rok = _cost_paths(node.right)
        return lp | rp, lok or rok
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in ("min", "max", "abs"):
            paths: set[str] = set()
            ok = False
            for arg in node.args:
                ap, aok = _cost_paths(arg)
                paths |= ap
                ok = ok or aok
            return paths, ok
        return set(), False
    if isinstance(node, ast.Subscript):
        # frontier[0][0]-style peeks at heap keys: treat as opaque.
        return set(), False
    return set(), False


def _assigned_paths(stmts) -> set[str]:
    """Paths (and their roots) assigned anywhere in the statements."""
    out: set[str] = set()

    def add(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add(elt)
            return
        if isinstance(target, (ast.Subscript, ast.Starred)):
            add(target.value)
            return
        dotted = _dotted(target)
        if dotted:
            out.add(dotted)
            out.add(dotted.split(".", 1)[0])

    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    add(t)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                add(node.target)
    return out


class FloatCompareRule(Rule):
    id = "float-compare"
    description = (
        "raw ==/</<=/>/>= between cost-like floats in a branch decision; "
        "route through repro.util.tolerance"
    )
    interests = (ast.If, ast.While)

    def begin_module(self, ctx: ModuleContext) -> bool:
        # tolerance.py IS the sanctioned home of raw comparisons.
        return ctx.module != ("repro", "util", "tolerance")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.If, ast.While))
        assigned = _assigned_paths(node.body) | _assigned_paths(node.orelse)
        for cmp_ in ast.walk(node.test):
            if not isinstance(cmp_, ast.Compare):
                continue
            operands = [cmp_.left, *cmp_.comparators]
            for i, op in enumerate(cmp_.ops):
                if not isinstance(op, _OPS):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_numeric_literal(left) or _is_numeric_literal(right):
                    continue
                lpaths, lok = _cost_paths(left)
                rpaths, rok = _cost_paths(right)
                if not (lok and rok):
                    continue
                if (lpaths | rpaths) & assigned:
                    continue  # running extremum / incumbent update
                ctx.report(
                    self,
                    cmp_,
                    f"raw float comparison '{ctx.segment(cmp_)}' between "
                    f"cost-like values decides this branch; use "
                    f"repro.util.tolerance (leq/lt/geq/gt/proves_bound) "
                    f"so accumulated rounding cannot flip the decision",
                )
                break
