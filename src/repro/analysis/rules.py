"""Rule registry for ``repro lint``.

Adding a rule: implement it in its own ``rule_*.py`` module (see
:class:`repro.analysis.driver.Rule` for the hook contract), register
the class in :data:`_RULE_CLASSES` here, document it in
``docs/analysis.md``, and add a true-positive + true-negative fixture
pair under ``tests/analysis/``.
"""

from __future__ import annotations

from repro.analysis.driver import Rule
from repro.analysis.rule_concurrency import BlockingRecvRule, WorkerSharedStateRule
from repro.analysis.rule_contract import EngineContractRule
from repro.analysis.rule_defaults import MutableDefaultRule
from repro.analysis.rule_excepts import BareExceptRule, SwallowedErrorRule
from repro.analysis.rule_floatcmp import FloatCompareRule
from repro.analysis.rule_imports import UnusedImportRule
from repro.analysis.rule_layering import LayeringRule

__all__ = ["available_rules", "make_rules"]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    FloatCompareRule,
    LayeringRule,
    EngineContractRule,
    BareExceptRule,
    SwallowedErrorRule,
    MutableDefaultRule,
    UnusedImportRule,
    WorkerSharedStateRule,
    BlockingRecvRule,
)


def available_rules() -> list[tuple[str, str, str]]:
    """``(id, severity, description)`` for every registered rule."""
    return [(c.id, c.severity, c.description) for c in _RULE_CLASSES]


def make_rules(ids=None) -> list[Rule]:
    """Instantiate the requested rules (all of them by default)."""
    if ids is None:
        return [c() for c in _RULE_CLASSES]
    wanted = list(ids)
    by_id = {c.id: c for c in _RULE_CLASSES}
    unknown = [i for i in wanted if i not in by_id]
    if unknown:
        known = ", ".join(sorted(by_id))
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)} (known: {known})"
        )
    return [by_id[i]() for i in wanted]
