"""``bare-except`` / ``swallowed-error`` — silent failure paths.

PR 6's fault-hardening pass established the error discipline: a solver
worker that dies must *report* death (poison pill, crash record), never
vanish.  Two anti-patterns undo that:

* ``except:`` — catches ``KeyboardInterrupt``/``SystemExit`` too, so a
  Ctrl-C mid-search can be eaten by a cleanup path (``bare-except``);
* ``except Exception: pass`` (or a lone ``continue``/``...``) — the
  error is caught broadly and then *dropped* with no logging, re-raise
  or state recording (``swallowed-error``).

``swallowed-error`` only fires on *broad* handlers (``Exception``,
``BaseException``, ``OSError``) whose body does nothing observable.  A
handler that logs, re-raises, records to a crash channel, or assigns a
fallback is fine; narrow handlers (``except KeyError: pass``) are a
legitimate idiom and are never flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.driver import ModuleContext, Rule

__all__ = ["BareExceptRule", "SwallowedErrorRule"]

_BROAD = frozenset({"Exception", "BaseException", "OSError"})


def _handler_names(handler: ast.ExceptHandler):
    """Exception class names a handler catches (dotted -> last part)."""
    node = handler.type
    if node is None:
        return
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in items:
        if isinstance(item, ast.Name):
            yield item.id
        elif isinstance(item, ast.Attribute):
            yield item.attr


def _is_noop_body(body: list[ast.stmt]) -> bool:
    """True when the handler body observably does nothing with the error."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / `...`
        return False
    return True


class BareExceptRule(Rule):
    id = "bare-except"
    description = "bare `except:` also catches KeyboardInterrupt/SystemExit"
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare 'except:' catches KeyboardInterrupt and SystemExit; "
                "catch Exception (or something narrower) instead",
            )


class SwallowedErrorRule(Rule):
    id = "swallowed-error"
    description = (
        "broad `except Exception` whose body silently drops the error"
    )
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            return  # bare-except owns that case
        caught = set(_handler_names(node))
        if not (caught & _BROAD):
            return
        if not _is_noop_body(node.body):
            return
        ctx.report(
            self,
            node,
            f"broad 'except {'/'.join(sorted(caught & _BROAD))}' silently "
            f"drops the error; log it, re-raise, or record it on the "
            f"crash/fault channel (see repro.testing.faults) — a worker "
            f"that fails must report failure",
        )
