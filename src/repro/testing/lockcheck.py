"""Runtime lock-order checking for the threaded runtime paths.

A deadlock needs two locks acquired in opposite orders by two threads.
The service daemon and the parallel backend's parent-side plumbing use
a handful of ``threading`` locks (job manager state, cache LRU, tracer
buffers); none of those code paths may ever acquire them in
inconsistent order.  This module makes that invariant *testable*: under
:func:`guard`, every ``threading.Lock``/``RLock`` allocated is wrapped
so acquisitions record, per thread, the stack of locks already held.
Each ``(outer, inner)`` pair becomes an edge in a global lock-order
graph; an acquisition that creates an edge whose *reverse* already
exists is a lock-order inversion — a potential deadlock — even if this
particular run interleaved safely.

Usage (the chaos/obs suites enable it via an autouse fixture)::

    from repro.testing import lockcheck

    with lockcheck.guard() as checker:
        run_threaded_code()
    checker.assert_clean()          # raises on any recorded inversion

``guard(on_violation="raise")`` turns the violation into an immediate
:class:`LockOrderViolation` at the offending ``acquire`` — that mode is
what the regression test uses to prove the checker catches a deliberate
inversion.

Scope and honesty notes:

* only locks *created while the guard is active* are instrumented —
  module-level locks created at import time are not (the runtime paths
  under test create their locks per-object, so this covers them);
* ``multiprocessing`` locks are untouched: cross-process deadlock needs
  a different tool (the supervision timeouts own that);
* nested guards do not double-wrap: the wrappers always delegate to
  primitives allocated via the original factories captured at import.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["guard", "LockOrderViolation", "LockOrderChecker"]

# Captured once at import so wrapped factories (or nested guards) can
# never be re-wrapped into wrapper-of-wrapper chains.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderViolation(AssertionError):
    """Two locks were acquired in opposite orders by different code paths."""


class LockOrderChecker:
    """Global acquisition-order graph over instrumented locks."""

    def __init__(self, on_violation: str = "record"):
        if on_violation not in ("record", "raise"):
            raise ValueError(
                f"on_violation must be 'record' or 'raise', "
                f"got {on_violation!r}"
            )
        self._mutex = _REAL_LOCK()
        self._on_violation = on_violation
        self._active = True
        #: (outer lock id, inner lock id) -> first-seen site description
        self._edges: dict[tuple[int, int], str] = {}
        self._held = threading.local()
        self._names: dict[int, str] = {}
        self.violations: list[str] = []
        self._counter = 0

    # -- bookkeeping ---------------------------------------------------

    def _next_name(self, kind: str) -> tuple[int, str]:
        with self._mutex:
            self._counter += 1
            uid = self._counter
            name = f"{kind}#{uid}"
            self._names[uid] = name
        return uid, name

    def _stack(self) -> list[int]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def deactivate(self) -> None:
        """Stop recording (guard exit); live wrappers become pass-through."""
        self._active = False

    # -- events from wrappers -----------------------------------------

    def acquired(self, uid: int, reentrant: bool) -> None:
        stack = self._stack()
        if reentrant and uid in stack:
            stack.append(uid)  # re-entry adds no ordering information
            return
        if self._active:
            violation = None
            with self._mutex:
                for outer in set(stack):
                    if outer == uid:
                        continue
                    edge = (outer, uid)
                    if edge not in self._edges:
                        self._edges[edge] = threading.current_thread().name
                    rev = (uid, outer)
                    if rev in self._edges:
                        violation = (
                            f"lock-order inversion: "
                            f"{self._names[outer]} -> {self._names[uid]} "
                            f"(thread {threading.current_thread().name}) "
                            f"conflicts with {self._names[uid]} -> "
                            f"{self._names[outer]} (first seen in thread "
                            f"{self._edges[rev]})"
                        )
                        self.violations.append(violation)
            if violation is not None and self._on_violation == "raise":
                raise LockOrderViolation(violation)
        stack.append(uid)

    def released(self, uid: int) -> None:
        stack = self._stack()
        # Locks are normally released LIFO, but Python does not require
        # it; drop the most recent matching entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == uid:
                del stack[i]
                return

    # -- assertions ----------------------------------------------------

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderViolation` if any inversion was seen."""
        if self.violations:
            raise LockOrderViolation(
                f"{len(self.violations)} lock-order inversion(s):\n  "
                + "\n  ".join(self.violations)
            )


class _GuardedLock:
    """Wrapper around a real Lock/RLock reporting to the checker."""

    def __init__(self, checker: LockOrderChecker, kind: str):
        reentrant = kind == "RLock"
        self._lock = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._checker = checker
        self._reentrant = reentrant
        self._uid, self._name = checker._next_name(kind)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._checker.acquired(self._uid, self._reentrant)
        return got

    def release(self) -> None:
        self._lock.release()
        self._checker.released(self._uid)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # Condition(lock) support: Condition duck-types these via hasattr,
    # and since the wrapper always defines them it must emulate the
    # CPython fallbacks when the underlying primitive (a plain Lock)
    # lacks them.
    def _is_owned(self):
        if self._reentrant:
            return self._lock._is_owned()
        if self._lock.acquire(False):
            self._lock.release()
            return False
        return True

    def _release_save(self):
        # Condition.wait: the lock is fully released however deep the
        # re-entry; forget every held entry for this lock.
        if self._reentrant:
            state = self._lock._release_save()
        else:
            self._lock.release()
            state = None
        stack = self._checker._stack()
        stack[:] = [u for u in stack if u != self._uid]
        return state

    def _acquire_restore(self, state) -> None:
        if self._reentrant:
            self._lock._acquire_restore(state)
        else:
            self._lock.acquire()
        self._checker.acquired(self._uid, self._reentrant)

    def __getattr__(self, name: str):
        # Anything else (`locked`, interpreter internals) delegates to
        # the real primitive.
        return getattr(self._lock, name)

    def __repr__(self) -> str:
        return f"<lockcheck {self._name} wrapping {self._lock!r}>"


@contextmanager
def guard(on_violation: str = "record"):
    """Patch ``threading.Lock``/``RLock`` so new locks are instrumented.

    Yields the :class:`LockOrderChecker`; call
    :meth:`~LockOrderChecker.assert_clean` after the workload (or pass
    ``on_violation="raise"`` to fail at the offending acquire).  On
    exit the factories are restored and the checker deactivated, so
    stray background threads touching leftover wrapped locks cost an
    attribute check and nothing else.
    """
    checker = LockOrderChecker(on_violation)

    def make_lock():
        return _GuardedLock(checker, "Lock")

    def make_rlock():
        return _GuardedLock(checker, "RLock")

    saved = (threading.Lock, threading.RLock)
    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    try:
        yield checker
    finally:
        threading.Lock, threading.RLock = saved
        checker.deactivate()
