"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection registry the chaos
suite (``tests/chaos/``) and the soak benchmark drive; it is inert
unless explicitly armed, so shipping it in the package costs nothing
in production.

:mod:`repro.testing.lockcheck` is the runtime lock-order assistant:
under its ``guard()`` every ``threading.Lock``/``RLock`` allocated is
instrumented to record per-thread acquisition order, and any inversion
(a potential deadlock, even if this run interleaved safely) fails the
test.  The chaos and obs suites enable it via autouse fixtures.
"""
