"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection registry the chaos
suite (``tests/chaos/``) and the soak benchmark drive; it is inert
unless explicitly armed, so shipping it in the package costs nothing
in production.
"""
