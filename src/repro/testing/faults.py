"""Fault-injection points for chaos testing the solver runtime.

Production code calls the tiny hook functions below at its interesting
failure sites (worker expansion loop, cache I/O, solver-pool jobs).
They are **no-ops unless armed**: arming happens through the
``REPRO_FAULTS`` environment variable, so faults propagate naturally
into forked pool / HDA* workers, or through :func:`arm` for in-process
monkeypatching from tests.

Spec grammar (semicolon-separated)::

    REPRO_FAULTS="hda-worker-crash@50;cache-put-error;cache-slow:0.25"

    name          fire on the first hit
    name@N        fire on the Nth hit (1-based, counted per process)
    name:arg      string argument (seconds to sleep, exit code, ...)
    name@N:arg    both

Each spec fires **once per process** (chaos tests want "the worker
crashed", not "every worker crashes forever"); the hit counters are
per-process and reset whenever the armed spec string changes, which
makes ``monkeypatch.setenv`` / ``delenv`` work without explicit resets.

Injection sites currently wired into the runtime:

==================  ====================================================
``hda-worker-crash``  HDA* worker: hard ``os._exit`` at the Nth
                      expansion batch (arg = exit code, default 3).
``hda-worker-raise``  HDA* worker: raise ``InjectedFault`` at the Nth
                      expansion batch (exercises the error-record path).
``hda-worker-stall``  HDA* worker: stop making progress (sleep loop,
                      arg = seconds, default 3600) — a *hung*, not dead,
                      process; only heartbeat supervision catches it.
``cache-put-error``   ``ResultCache.put``: raise ``InjectedFault``.
``cache-get-error``   ``ResultCache.get``: raise ``InjectedFault``.
``cache-probe-error`` ``ResultCache.probe``: raise ``InjectedFault``
                      (flips ``/healthz?deep=1`` to 503 on a live
                      daemon — the router-side eviction drill).
``cache-slow``        ``ResultCache.put``/``get``/``probe``: sleep
                      ``arg`` seconds (default 0.2) before the real
                      call.
``shard-crash``       Solver daemon (`SolverServer._solve`): hard
                      ``os._exit`` of the whole shard process at the
                      Nth accepted solve request (arg = exit code) —
                      the deterministic stand-in for an OOM/SIGKILLed
                      shard in router chaos tests.
``solve-crash``       Pool worker (`_worker_solve`): hard ``os._exit``
                      before solving — kills the executor process and
                      exercises the BrokenExecutor rebuild + degraded
                      response path.
``solve-error``       Pool worker: raise ``InjectedFault`` instead of
                      solving (a *clean* job failure, pool survives).
==================  ====================================================
"""

from __future__ import annotations

import os
import time

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "arm",
    "disarm",
    "should_fire",
    "crash_point",
    "raise_point",
    "sleep_point",
    "stall_point",
]

ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The error raised by ``raise``-style injection points."""


class _Spec:
    __slots__ = ("name", "nth", "arg")

    def __init__(self, name: str, nth: int, arg: str | None) -> None:
        self.name = name
        self.nth = nth
        self.arg = arg


def _parse(raw: str) -> dict[str, _Spec]:
    specs: dict[str, _Spec] = {}
    for part in raw.split(";"):
        part = part.strip()
        if not part:
            continue
        arg: str | None = None
        if ":" in part:
            part, arg = part.split(":", 1)
        nth = 1
        if "@" in part:
            part, nth_s = part.split("@", 1)
            try:
                nth = max(1, int(nth_s))
            except ValueError:
                nth = 1
        specs[part] = _Spec(part, nth, arg)
    return specs


# Cache keyed on the raw env string so monkeypatched changes re-parse.
_armed_raw: str | None = None
_armed: dict[str, _Spec] = {}
_hits: dict[str, int] = {}
_fired: set[str] = set()


def _current() -> dict[str, _Spec]:
    global _armed_raw, _armed, _hits, _fired
    raw = os.environ.get(ENV_VAR, "")
    if raw != _armed_raw:
        _armed_raw = raw
        _armed = _parse(raw)
        _hits = {}
        _fired = set()
    return _armed


def arm(spec: str) -> None:
    """Arm fault specs for this process (convenience over setenv)."""
    os.environ[ENV_VAR] = spec


def disarm() -> None:
    """Remove all armed faults in this process."""
    os.environ.pop(ENV_VAR, None)


def should_fire(name: str) -> _Spec | None:
    """Count a hit on ``name``; return its spec when it should fire.

    Fires exactly once per process per armed spec string (on the Nth
    hit).  Returns ``None`` for unarmed points — the production-path
    fast exit.
    """
    specs = _current()
    spec = specs.get(name)
    if spec is None or name in _fired:
        return None
    _hits[name] = _hits.get(name, 0) + 1
    if _hits[name] < spec.nth:
        return None
    _fired.add(name)
    return spec


def crash_point(name: str, default_code: int = 3) -> None:
    """Hard-exit the process when ``name`` fires (no cleanup, no atexit
    — the closest stand-in for a SIGKILL'd or segfaulted worker)."""
    spec = should_fire(name)
    if spec is not None:
        code = default_code
        if spec.arg is not None:
            try:
                code = int(spec.arg)
            except ValueError:
                pass
        os._exit(code)


def raise_point(name: str) -> None:
    """Raise :class:`InjectedFault` when ``name`` fires."""
    if should_fire(name) is not None:
        raise InjectedFault(f"injected fault: {name}")


def sleep_point(name: str, default_seconds: float = 0.2) -> None:
    """Sleep when ``name`` fires (slow-disk / slow-cache simulation)."""
    spec = should_fire(name)
    if spec is not None:
        seconds = default_seconds
        if spec.arg is not None:
            try:
                seconds = float(spec.arg)
            except ValueError:
                pass
        time.sleep(seconds)


def stall_point(name: str, default_seconds: float = 3600.0) -> None:
    """Stop making progress when ``name`` fires: the process stays
    alive but does nothing for ``arg`` seconds — only no-progress
    (heartbeat) supervision can detect it."""
    spec = should_fire(name)
    if spec is not None:
        seconds = default_seconds
        if spec.arg is not None:
            try:
                seconds = float(spec.arg)
            except ValueError:
                pass
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            time.sleep(0.05)
