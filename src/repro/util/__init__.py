"""Utility layer: priority queues, bitsets, RNG streams, timing, stats, tables.

These are the low-level building blocks shared by the graph, search and
parallel subsystems.  They carry no scheduling semantics of their own.
"""

from repro.util.bitset import (
    bit_count,
    bit_indices,
    bits_from_iterable,
    first_set_bit,
    has_bit,
)
from repro.util.pqueue import AddressablePQ, LazyPQ
from repro.util.rng import RngStream, spawn_streams
from repro.util.stats import OnlineStats, summarize
from repro.util.tables import render_table
from repro.util.timing import Budget, Timer

__all__ = [
    "AddressablePQ",
    "LazyPQ",
    "bit_count",
    "bit_indices",
    "bits_from_iterable",
    "first_set_bit",
    "has_bit",
    "RngStream",
    "spawn_streams",
    "OnlineStats",
    "summarize",
    "render_table",
    "Budget",
    "Timer",
]
