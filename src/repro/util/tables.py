"""Minimal ASCII table renderer for experiment reports.

The experiment drivers print tables shaped like the paper's Table 1 and
the series behind Figures 6-7.  No third-party table library is used.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, float_fmt: str = "{:.3f}") -> str:
    """Render a single cell: floats via ``float_fmt``, None as em-dash."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
    align_right: bool = True,
) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cell values; each row must have ``len(headers)`` entries.
    title:
        Optional title line printed above the table.
    float_fmt:
        Format spec applied to float cells.
    align_right:
        Right-align all but the first column (typical for numeric tables).
    """
    str_rows = [[format_cell(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(cells):
            if j == 0 or not align_right:
                parts.append(cell.ljust(widths[j]))
            else:
                parts.append(cell.rjust(widths[j]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
