"""Scale-aware float comparisons for cost/bound arithmetic.

Search costs are sums and maxima of task weights and communication
delays; two mathematically-equal ``f`` values computed along different
expansion orders can differ by accumulated rounding (``0.1 + 0.2 !=
0.3``).  Every engine comparison that decides *pruning* or
*termination* must therefore absorb that drift, and it must absorb it
**consistently** — the ε-termination bug this module fixes came from
three call sites each hand-rolling ``<= ... + 1e-9`` with a different
idea of which side got the epsilon, so exact (ε = 0) parallel runs
could terminate one float-ulp early or keep spinning on a plateau that
only existed as rounding noise.

The tolerance is *relative*: ``REL_TOL`` scaled by the magnitude of the
operands (floored at 1.0 so comparisons around zero keep an absolute
floor of ``REL_TOL``).  Costs of order 1e6 get a proportionally larger
slack — an absolute 1e-9 would be smaller than one ulp there and the
comparison would degenerate to raw ``<=``.

All helpers answer *decision* questions, named from the caller's view:

* :func:`gt` — "is ``a`` worse than bound ``b`` beyond drift?" (prune)
* :func:`geq` — "is ``a`` at least ``b`` up to drift?" (prune ties)
* :func:`leq` — "is ``a`` within bound ``b`` up to drift?" (terminate)
* :func:`lt` — "is ``a`` a real improvement over ``b``?" (incumbent)
* :func:`proves_bound` — the §3.3/§3.4 ε-termination test
  ``incumbent ≤ (1+ε) · min_f`` with the drift on the proving side.
"""

from __future__ import annotations

__all__ = ["REL_TOL", "tolerance", "leq", "lt", "geq", "gt", "proves_bound"]

#: Relative comparison tolerance; ~1e-9 of the operand magnitude.
REL_TOL = 1e-9


def tolerance(a: float, b: float) -> float:
    """The drift allowance for comparing ``a`` with ``b``.

    ``REL_TOL`` times the larger magnitude, floored at ``REL_TOL``
    itself so near-zero costs still get an absolute slack.
    """
    m = abs(a)
    mb = abs(b)
    if mb > m:
        m = mb
    if m < 1.0:
        m = 1.0
    return REL_TOL * m


def leq(a: float, b: float) -> bool:
    """True when ``a <= b`` up to drift (``a`` may exceed by tolerance)."""
    return a <= b + tolerance(a, b)


def lt(a: float, b: float) -> bool:
    """True when ``a < b`` by more than drift — a *real* improvement."""
    return a < b - tolerance(a, b)


def geq(a: float, b: float) -> bool:
    """True when ``a >= b`` up to drift (``a`` may fall short by tolerance)."""
    return a >= b - tolerance(a, b)


def gt(a: float, b: float) -> bool:
    """True when ``a > b`` by more than drift — a *real* excess."""
    return a > b + tolerance(a, b)


def proves_bound(incumbent: float, epsilon: float, min_f: float) -> bool:
    """The ε-termination test: ``incumbent ≤ (1+ε) · min_f`` with drift.

    For ε = 0 this is exactly "the incumbent matches the best possible
    remaining ``f``" — the serial-A* optimality condition evaluated
    across distributed OPEN lists.  ``min_f = inf`` (all OPEN lists
    empty) always proves the bound.
    """
    if min_f == float("inf"):
        return True
    return leq(incumbent, (1.0 + epsilon) * min_f)
