"""Deterministic random-number streams.

Experiments must be exactly reproducible: the same seed must generate the
same task graphs, the same tie-breaks, and therefore the same tables.
``RngStream`` wraps :class:`numpy.random.Generator` seeded through
``numpy.random.SeedSequence`` so independent components (graph generator,
search tie-breaking, workload suite) get provably independent streams
derived from one master seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStream", "spawn_streams"]


class RngStream:
    """A named, seeded random stream with the draws the library needs.

    Thin convenience facade over :class:`numpy.random.Generator` adding
    integer-friendly helpers (the paper's costs are integral).
    """

    __slots__ = ("name", "seed", "_gen")

    def __init__(self, seed: int | np.random.SeedSequence, name: str = "rng") -> None:
        if isinstance(seed, np.random.SeedSequence):
            self.seed = seed.entropy
            self._gen = np.random.Generator(np.random.PCG64(seed))
        else:
            self.seed = int(seed)
            self._gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(self.seed)))
        self.name = name

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for bulk vectorised draws)."""
        return self._gen

    def uniform_int_mean(self, mean: float, low_frac: float = 0.0) -> int:
        """Draw a positive integer ~ U[low, high] with the requested mean.

        The paper draws costs "from a uniform distribution with mean equal
        to 40"; it does not state the range.  We use the symmetric integer
        range ``[low, 2*mean - low]`` where ``low = max(1, low_frac*mean)``,
        which has the stated mean and always yields at least 1.
        """
        low = max(1, int(round(low_frac * mean)))
        high = max(low, int(round(2 * mean)) - low)
        return int(self._gen.integers(low, high + 1))

    def uniform_ints_mean(self, mean: float, size: int, low_frac: float = 0.0) -> np.ndarray:
        """Vectorised :meth:`uniform_int_mean`."""
        low = max(1, int(round(low_frac * mean)))
        high = max(low, int(round(2 * mean)) - low)
        return self._gen.integers(low, high + 1, size=size)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return int(self._gen.integers(low, high + 1))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def choice(self, seq, size=None, replace: bool = True):
        """Uniform choice from a sequence."""
        return self._gen.choice(seq, size=size, replace=replace)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle of a list."""
        self._gen.shuffle(seq)

    def spawn(self, name: str) -> "RngStream":
        """Derive an independent child stream (stable under call order)."""
        child_seed = np.random.SeedSequence([self.seed if isinstance(self.seed, int) else 0,
                                             _stable_hash(name)])
        return RngStream(child_seed, name=f"{self.name}/{name}")


def spawn_streams(master_seed: int, names: list[str]) -> dict[str, RngStream]:
    """Create independent named streams from one master seed.

    The mapping from ``(master_seed, name)`` to stream is stable across
    processes and Python versions (no use of builtin ``hash``).
    """
    return {
        name: RngStream(
            np.random.SeedSequence([master_seed, _stable_hash(name)]), name=name
        )
        for name in names
    }


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash of a string (FNV-1a)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF
