"""Priority queues used by the search algorithms.

Two flavours are provided:

``LazyPQ``
    A thin wrapper over :mod:`heapq` with *lazy deletion*: superseded or
    removed entries stay in the heap marked dead and are skipped on pop.
    This is the classic approach for A* OPEN lists where decrease-key is
    rare and the constant factor matters.

``AddressablePQ``
    A binary heap with a position index supporting true ``decrease_key``
    and ``remove`` in O(log n).  Used where the OPEN list must be
    enumerated or resized exactly (e.g. the FOCAL sublist of Aε* and the
    load-balancing donor selection of the parallel machine).

Both queues order entries by a ``(priority, tiebreak)`` pair; the
tiebreak is a monotonically increasing insertion counter so that equal
priorities pop FIFO, which keeps searches deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator
from typing import Any, Generic, TypeVar

T = TypeVar("T")

__all__ = ["LazyPQ", "AddressablePQ"]

_REMOVED = object()


class LazyPQ(Generic[T]):
    """Heap-based priority queue with lazy deletion.

    Entries are ``[priority, counter, item]`` lists; removal marks the
    item slot with a sentinel.  ``len()`` reports only live entries.
    """

    __slots__ = ("_heap", "_entry_finder", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[list[Any]] = []
        self._entry_finder: dict[Any, list[Any]] = {}
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, item: T, priority: Any) -> None:
        """Insert ``item`` with ``priority``.

        Items need not be unique; pushing an item already present adds a
        second independent entry (use :meth:`replace` for keyed updates).
        """
        entry = [priority, next(self._counter), item]
        heapq.heappush(self._heap, entry)
        self._live += 1

    def push_keyed(self, key: Any, item: T, priority: Any) -> None:
        """Insert ``item`` under ``key``, replacing any existing entry."""
        if key in self._entry_finder:
            self.remove_keyed(key)
        entry = [priority, next(self._counter), item]
        self._entry_finder[key] = entry
        heapq.heappush(self._heap, entry)
        self._live += 1

    def remove_keyed(self, key: Any) -> None:
        """Remove the entry stored under ``key`` (no-op if absent)."""
        entry = self._entry_finder.pop(key, None)
        if entry is not None and entry[2] is not _REMOVED:
            entry[2] = _REMOVED
            self._live -= 1

    def pop(self) -> tuple[T, Any]:
        """Remove and return ``(item, priority)`` of the minimum entry.

        Raises
        ------
        IndexError
            When the queue holds no live entries.
        """
        heap = self._heap
        while heap:
            priority, _count, item = heapq.heappop(heap)
            if item is not _REMOVED:
                self._live -= 1
                # Drop the finder link if this was a keyed entry.
                return item, priority
        raise IndexError("pop from empty LazyPQ")

    def peek(self) -> tuple[T, Any]:
        """Return ``(item, priority)`` of the minimum entry without removal."""
        heap = self._heap
        while heap:
            priority, _count, item = heap[0]
            if item is _REMOVED:
                heapq.heappop(heap)
                continue
            return item, priority
        raise IndexError("peek from empty LazyPQ")

    def min_priority(self) -> Any:
        """Priority of the minimum live entry."""
        return self.peek()[1]

    def compact(self) -> None:
        """Rebuild the heap dropping dead entries.

        Useful after heavy keyed-removal churn; O(n) but restores pop cost.
        """
        live = [e for e in self._heap if e[2] is not _REMOVED]
        heapq.heapify(live)
        self._heap = live

    def drain(self) -> Iterator[tuple[T, Any]]:
        """Pop every live entry in priority order."""
        while self._live:
            yield self.pop()


class AddressablePQ(Generic[T]):
    """Binary min-heap with an item→position index.

    Supports ``decrease_key`` (more generally, any-key update via
    :meth:`update`), ``remove`` and membership testing in O(log n).
    Items must be hashable and unique.
    """

    __slots__ = ("_heap", "_pos", "_counter")

    def __init__(self) -> None:
        # Each slot is (priority, counter, item).
        self._heap: list[tuple[Any, int, T]] = []
        self._pos: dict[T, int] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: T) -> bool:
        return item in self._pos

    def push(self, item: T, priority: Any) -> None:
        """Insert a new unique ``item``.

        Raises
        ------
        KeyError
            If ``item`` is already present (use :meth:`update`).
        """
        if item in self._pos:
            raise KeyError(f"item already present: {item!r}")
        self._heap.append((priority, next(self._counter), item))
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def update(self, item: T, priority: Any) -> None:
        """Change the priority of ``item`` (up or down)."""
        pos = self._pos[item]
        old_priority, count, _ = self._heap[pos]
        self._heap[pos] = (priority, count, item)
        if priority < old_priority:
            self._sift_up(pos)
        else:
            self._sift_down(pos)

    def push_or_update(self, item: T, priority: Any) -> None:
        """Insert ``item``, or update its priority when already present."""
        if item in self._pos:
            self.update(item, priority)
        else:
            self.push(item, priority)

    def priority_of(self, item: T) -> Any:
        """Current priority of ``item``."""
        return self._heap[self._pos[item]][0]

    def pop(self) -> tuple[T, Any]:
        """Remove and return ``(item, priority)`` of the minimum entry."""
        if not self._heap:
            raise IndexError("pop from empty AddressablePQ")
        priority, _count, item = self._heap[0]
        self._remove_at(0)
        return item, priority

    def peek(self) -> tuple[T, Any]:
        """Return ``(item, priority)`` of the minimum entry without removal."""
        if not self._heap:
            raise IndexError("peek from empty AddressablePQ")
        priority, _count, item = self._heap[0]
        return item, priority

    def remove(self, item: T) -> None:
        """Remove ``item`` from the queue."""
        self._remove_at(self._pos[item])

    def items(self) -> Iterator[tuple[T, Any]]:
        """Iterate over ``(item, priority)`` in arbitrary (heap) order."""
        for priority, _count, item in self._heap:
            yield item, priority

    # -- internals ---------------------------------------------------------

    def _remove_at(self, pos: int) -> None:
        heap = self._heap
        _, _, item = heap[pos]
        del self._pos[item]
        last = heap.pop()
        if pos < len(heap):
            heap[pos] = last
            self._pos[last[2]] = pos
            # The moved element may need to travel either direction.
            self._sift_up(pos)
            self._sift_down(pos)

    def _sift_up(self, pos: int) -> None:
        heap = self._heap
        entry = heap[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if heap[parent][:2] <= entry[:2]:
                break
            heap[pos] = heap[parent]
            self._pos[heap[pos][2]] = pos
            pos = parent
        heap[pos] = entry
        self._pos[entry[2]] = pos

    def _sift_down(self, pos: int) -> None:
        heap = self._heap
        n = len(heap)
        entry = heap[pos]
        while True:
            child = 2 * pos + 1
            if child >= n:
                break
            right = child + 1
            if right < n and heap[right][:2] < heap[child][:2]:
                child = right
            if entry[:2] <= heap[child][:2]:
                break
            heap[pos] = heap[child]
            self._pos[heap[pos][2]] = pos
            pos = child
        heap[pos] = entry
        self._pos[entry[2]] = pos
