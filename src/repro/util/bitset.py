"""Bitmask helpers for dense integer node sets.

Search states represent the set of already-scheduled task indices as a
plain Python ``int`` used as a bitmask.  Python integers are arbitrary
precision, hash in O(words) and compare fast, which makes them an ideal
compact set representation for graphs of up to a few hundred nodes — far
beyond what exhaustive search can handle anyway.

All functions are pure and allocation-light; the hot ones are simple
enough that the interpreter overhead dominates, so we keep them trivial
and inline-able by callers that need the last bit of speed (callers may
use ``mask & (1 << i)`` directly; these helpers are the readable API).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bits_from_iterable",
    "bit_indices",
    "bit_count",
    "has_bit",
    "first_set_bit",
]


def bits_from_iterable(indices: Iterable[int]) -> int:
    """Build a bitmask with the given bit positions set.

    >>> bits_from_iterable([0, 2, 5])
    37
    """
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in increasing order.

    >>> list(bit_indices(37))
    [0, 2, 5]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_count(mask: int) -> int:
    """Number of set bits (population count)."""
    return mask.bit_count()


def has_bit(mask: int, index: int) -> bool:
    """True when bit ``index`` is set in ``mask``."""
    return (mask >> index) & 1 == 1


def first_set_bit(mask: int) -> int:
    """Position of the lowest set bit; -1 for an empty mask.

    >>> first_set_bit(0b1010)
    1
    >>> first_set_bit(0)
    -1
    """
    if mask == 0:
        return -1
    return (mask & -mask).bit_length() - 1
