"""Timers and search budgets.

``Timer`` is a context-manager stopwatch; ``Budget`` bounds a search by
wall-clock time, states expanded and/or states generated, so the
exponential algorithms in this library always terminate in bounded time
during experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Budget"]


class Timer:
    """Stopwatch usable as a context manager.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("start", "end")

    def __init__(self) -> None:
        self.start: float | None = None
        self.end: float | None = None

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.end = None
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed (running total if still inside the context)."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start


@dataclass
class Budget:
    """Resource limits for a search run.

    ``None`` disables the corresponding limit.  ``check`` functions are
    cheap and designed to be called in inner loops; wall-clock is only
    consulted every ``time_check_interval`` expansions to avoid syscall
    overhead in the hot path.
    """

    max_expanded: int | None = None
    max_generated: int | None = None
    max_seconds: float | None = None
    time_check_interval: int = 256
    _start: float = field(default=0.0, repr=False)
    _checks: int = field(default=0, repr=False)

    def start(self) -> None:
        """Arm the wall-clock limit (call once at search start)."""
        self._start = time.perf_counter()
        self._checks = 0

    def expansions_exhausted(self, expanded: int) -> bool:
        """True when the expansion budget is spent."""
        return self.max_expanded is not None and expanded >= self.max_expanded

    def generations_exhausted(self, generated: int) -> bool:
        """True when the generation budget is spent."""
        return self.max_generated is not None and generated >= self.max_generated

    def time_exhausted(self) -> bool:
        """True when the wall-clock budget is spent (sampled).

        The *first* call always consults the clock: a stage handed an
        already-expired (or zero/negative) remainder of a deadline must
        trip immediately, not after ``time_check_interval`` expansions
        of overrun.  Subsequent calls sample every
        ``time_check_interval``-th check as before.
        """
        if self.max_seconds is None:
            return False
        self._checks += 1
        if self._checks != 1 and self._checks % self.time_check_interval:
            return False
        return (time.perf_counter() - self._start) >= self.max_seconds

    def exhausted(self, expanded: int, generated: int) -> bool:
        """Combined check used by the search main loops."""
        return (
            self.expansions_exhausted(expanded)
            or self.generations_exhausted(generated)
            or self.time_exhausted()
        )

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never trips."""
        return cls()
