"""Timers and search budgets.

``Timer`` is a context-manager stopwatch; ``Budget`` bounds a search by
wall-clock time, states expanded, states generated, tracked search
footprint and/or process RSS, so the exponential algorithms in this
library always terminate in bounded time *and* bounded memory during
experiments and in the daemon.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Budget", "process_rss_mb"]

_PAGE_SIZE = None


def process_rss_mb() -> float:
    """Resident set size of this process in MiB (best effort).

    Reads ``/proc/self/statm`` where available (Linux — one cheap read,
    no dependencies); falls back to ``resource.getrusage`` peak RSS
    elsewhere.  Returns ``0.0`` when neither source is usable, which
    disables RSS-based ceilings rather than crashing the search.
    """
    global _PAGE_SIZE
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        if _PAGE_SIZE is None:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        return int(fields[1]) * _PAGE_SIZE / (1024 * 1024)
    # Documented fallback chain: /proc may not exist (macOS, sandboxes);
    # the resource-module path below then runs, and total failure means
    # "RSS unknown -> ceilings disabled", per the docstring.
    # repro: ignore[swallowed-error]
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        if sys.platform == "darwin":
            return peak / (1024 * 1024)
        return peak / 1024
    except (ImportError, OSError, ValueError):
        return 0.0


class Timer:
    """Stopwatch usable as a context manager.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("start", "end")

    def __init__(self) -> None:
        self.start: float | None = None
        self.end: float | None = None

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.end = None
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed (running total if still inside the context)."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start


@dataclass
class Budget:
    """Resource limits for a search run.

    ``None`` disables the corresponding limit.  ``check`` functions are
    cheap and designed to be called in inner loops; wall-clock is only
    consulted every ``time_check_interval`` expansions and RSS every
    ``memory_check_interval`` checks to avoid syscall overhead in the
    hot path.

    After ``exhausted`` returns True, :attr:`reason` names which limit
    tripped (``"expansions"``, ``"generations"``, ``"time"``,
    ``"memory"`` or ``"interrupt"``) so engines can report *why* they
    stopped in the anytime result they hand back.
    """

    max_expanded: int | None = None
    max_generated: int | None = None
    max_seconds: float | None = None
    max_memory_mb: float | None = None
    max_tracked_states: int | None = None
    time_check_interval: int = 256
    memory_check_interval: int = 2048
    _start: float = field(default=0.0, repr=False)
    _checks: int = field(default=0, repr=False)
    _mem_checks: int = field(default=0, repr=False)
    _reason: str | None = field(default=None, repr=False)
    _interrupted: bool = field(default=False, repr=False)

    def start(self) -> None:
        """Arm the wall-clock limit (call once at search start)."""
        self._start = time.perf_counter()
        self._checks = 0
        self._mem_checks = 0
        self._reason = None
        self._interrupted = False

    def interrupt(self, reason: str = "interrupt") -> None:
        """Cooperatively stop the search at its next budget check.

        Used by signal handlers and supervisors: the engine observes the
        flag at its next ``exhausted`` call and returns its incumbent.
        """
        self._interrupted = True
        self._reason = reason

    @property
    def reason(self) -> str | None:
        """Which limit tripped (set by the first failing check)."""
        return self._reason

    def remaining_seconds(self) -> float | None:
        """Wall-clock budget left, or ``None`` when untimed.

        Clamped at zero so callers can hand the remainder straight to a
        follow-up stage's ``max_seconds``.
        """
        if self.max_seconds is None:
            return None
        return max(0.0, self.max_seconds - (time.perf_counter() - self._start))

    def expansions_exhausted(self, expanded: int) -> bool:
        """True when the expansion budget is spent."""
        return self.max_expanded is not None and expanded >= self.max_expanded

    def generations_exhausted(self, generated: int) -> bool:
        """True when the generation budget is spent."""
        return self.max_generated is not None and generated >= self.max_generated

    def time_exhausted(self) -> bool:
        """True when the wall-clock budget is spent (sampled).

        The *first* call always consults the clock: a stage handed an
        already-expired (or zero/negative) remainder of a deadline must
        trip immediately, not after ``time_check_interval`` expansions
        of overrun.  Subsequent calls sample every
        ``time_check_interval``-th check as before.
        """
        if self.max_seconds is None:
            return False
        self._checks += 1
        if self._checks != 1 and self._checks % self.time_check_interval:
            return False
        return (time.perf_counter() - self._start) >= self.max_seconds

    def memory_exhausted(self, tracked: int = 0) -> bool:
        """True when the memory ceiling is hit.

        Two guards, either of which trips the same ``"memory"`` reason:

        * ``max_tracked_states`` — a deterministic count of live search
          states (open + closed) the engine reports; checked every call
          because it is a plain comparison.
        * ``max_memory_mb`` — actual process RSS, sampled every
          ``memory_check_interval``-th call (the first call always
          samples, so an already-over-ceiling process trips at once).
        """
        if (
            self.max_tracked_states is not None
            and tracked >= self.max_tracked_states
        ):
            return True
        if self.max_memory_mb is None:
            return False
        self._mem_checks += 1
        if self._mem_checks != 1 and self._mem_checks % self.memory_check_interval:
            return False
        return process_rss_mb() >= self.max_memory_mb

    def exhausted(self, expanded: int, generated: int, tracked: int = 0) -> bool:
        """Combined check used by the search main loops.

        Records the tripping limit in :attr:`reason` so the caller can
        label its anytime result.
        """
        if self._interrupted:
            return True
        if self.expansions_exhausted(expanded):
            self._reason = "expansions"
            return True
        if self.generations_exhausted(generated):
            self._reason = "generations"
            return True
        if self.memory_exhausted(tracked):
            self._reason = "memory"
            return True
        if self.time_exhausted():
            self._reason = "time"
            return True
        return False

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never trips."""
        return cls()
