"""Shared 64-bit mixing primitives.

One home for the splitmix64 finalizer and its companion odd constants,
used by the search states' Zobrist placement keys
(:func:`repro.schedule.partial.placement_key`) and the schedule layer's
canonical fingerprints (:mod:`repro.schedule.fingerprint`).

NOTE: :meth:`PartialSchedule.child_signature` keeps a hand-inlined copy
of :func:`splitmix64` — it runs once per expansion candidate and the
call overhead is measurable.  That copy must stay bit-identical to this
function (regression-tested via
``tests/property/test_state_equivalence.py``).
"""

from __future__ import annotations

__all__ = ["MASK64", "PHI64", "PE64", "splitmix64"]

MASK64 = (1 << 64) - 1
PHI64 = 0x9E3779B97F4A7C15
PE64 = 0xC2B2AE3D27D4EB4F


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: full avalanche over the 64-bit lane."""
    x &= MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & MASK64
    x ^= x >> 31
    return x
