"""Summary statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["OnlineStats", "summarize", "Summary", "geometric_mean"]


class OnlineStats:
    """Welford online mean/variance accumulator.

    Numerically stable single-pass mean and variance; used by the
    experiment runners to aggregate per-graph measurements without keeping
    every sample alive.
    """

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many samples."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for n < 2)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest sample seen (+inf when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest sample seen (-inf when empty)."""
        return self._max


@dataclass(frozen=True)
class Summary:
    """Immutable summary of a sample: n, mean, stdev, min, max."""

    n: int
    mean: float
    stdev: float
    min: float
    max: float


def summarize(xs: Iterable[float]) -> Summary:
    """One-shot summary of an iterable of numbers."""
    acc = OnlineStats()
    acc.extend(xs)
    return Summary(n=acc.n, mean=acc.mean, stdev=acc.stdev, min=acc.min, max=acc.max)


def geometric_mean(xs: Iterable[float]) -> float:
    """Geometric mean of positive samples (0.0 when empty).

    Speedup ratios are averaged geometrically, as is standard for
    normalized performance numbers.
    """
    total = 0.0
    n = 0
    for x in xs:
        if x <= 0:
            raise ValueError("geometric mean requires positive samples")
        total += math.log(x)
        n += 1
    return math.exp(total / n) if n else 0.0
