"""Application-kernel workload suite (extension experiment E7).

The paper evaluates on §4.1 random graphs only; the scheduling
literature (including the authors' companion papers) also evaluates on
task graphs of numerical kernels, whose regular structure exercises the
pruning rules very differently — e.g. FFT butterflies are rich in
Definition-3 node equivalences, wavefronts in deep chains.  This suite
packages those instances at controlled CCRs for the kernel benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graph.generators.kernels import (
    divide_and_conquer_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
)
from repro.graph.taskgraph import TaskGraph
from repro.graph.transform import scale_to_ccr
from repro.system.processors import ProcessorSystem
from repro.workloads.suite import WorkloadInstance, WorkloadSuite

__all__ = ["kernel_suite", "KERNEL_FAMILIES"]

#: Kernel families: name -> builder(scale) with modest default sizes.
KERNEL_FAMILIES: dict[str, Callable[[int], TaskGraph]] = {
    "gauss": lambda scale: gaussian_elimination_graph(scale + 2, comp=40),
    "fft": lambda scale: fft_graph(scale, comp=40),
    "laplace": lambda scale: laplace_graph(scale + 1, comp=40),
    "dnc": lambda scale: divide_and_conquer_graph(scale, comp=40),
}


def kernel_suite(
    *,
    families: tuple[str, ...] = ("gauss", "fft", "laplace", "dnc"),
    scales: tuple[int, ...] = (1, 2),
    ccrs: tuple[float, ...] = (0.1, 1.0),
    num_pes: int = 4,
) -> WorkloadSuite:
    """Build kernel instances at exact sample CCRs.

    Each kernel graph is generated with unit communication scale and
    then rescaled so its *sample* CCR matches the requested value
    (:func:`repro.graph.transform.scale_to_ccr`), making CCR a
    controlled variable rather than a distribution parameter.
    """
    system = ProcessorSystem.fully_connected(num_pes)
    instances: list[WorkloadInstance] = []
    for name in families:
        builder = KERNEL_FAMILIES[name]
        for scale in scales:
            base = builder(scale)
            for ccr in ccrs:
                graph = scale_to_ccr(base, ccr)
                graph = TaskGraph(
                    graph.weights,
                    graph.edges,
                    graph.labels,
                    name=f"{name}-s{scale}-ccr{ccr}",
                )
                instances.append(
                    WorkloadInstance(
                        ccr=ccr,
                        size=graph.num_nodes,
                        seed=0,
                        graph=graph,
                        system=system,
                    )
                )
    return WorkloadSuite(instances=tuple(instances))
