"""Workload suites for the paper's experiments (§4.1)."""

from repro.workloads.suite import (
    WorkloadInstance,
    WorkloadSuite,
    paper_suite,
    paper_target_system,
)

__all__ = [
    "WorkloadInstance",
    "WorkloadSuite",
    "paper_suite",
    "paper_target_system",
]
