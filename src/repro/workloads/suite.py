"""The §4.1 experimental workload.

Three sets of random task graphs, one per CCR ∈ {0.1, 1.0, 10.0}; each
set sweeps v = 10, 12, …, 32 (12 graphs per set).  Node costs are
uniform with mean 40, out-degrees uniform with mean v/10, edge costs
uniform with mean 40·CCR.  The algorithms are given O(v) target
processors (we use a fully-connected homogeneous system with v PEs —
the processor-isomorphism rule keeps the effective branching far
smaller, which is exactly the paper's observation that "the algorithms
used far less than v TPEs").

A 1998 Paragon node spent up to days on the largest instances; a
single-threaded Python reproduction must budget accordingly.  The
default suite therefore stops at v = 20 and experiment runners accept
budgets; ``full=True`` reproduces the complete 10…32 sweep for patient
runs.  EXPERIMENTS.md records which points ran to proven optimality.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import WorkloadError
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.graph.taskgraph import TaskGraph
from repro.schedule.fingerprint import instance_fingerprint
from repro.system.processors import ProcessorSystem

__all__ = [
    "WorkloadInstance",
    "WorkloadSuite",
    "paper_suite",
    "paper_target_system",
]

PAPER_CCRS = (0.1, 1.0, 10.0)
PAPER_SIZES = tuple(range(10, 33, 2))
DEFAULT_SIZES = tuple(range(10, 21, 2))


@lru_cache(maxsize=1024)
def _cached_fingerprint(graph: TaskGraph, system: ProcessorSystem) -> str:
    return instance_fingerprint(graph, system)


@dataclass(frozen=True)
class WorkloadInstance:
    """One problem instance of the suite."""

    ccr: float
    size: int
    seed: int
    graph: TaskGraph = field(compare=False)
    system: ProcessorSystem = field(compare=False)

    @property
    def fingerprint(self) -> str:
        """Canonical 128-bit instance fingerprint (see
        :mod:`repro.schedule.fingerprint`); relabeling-invariant, so two
        suite points that generate the same problem share cached results.
        Memoized per (graph, system) — the WL canonicalization is not
        free."""
        return _cached_fingerprint(self.graph, self.system)

    @property
    def key(self) -> str:
        """Stable identity string used for caching results.

        Human-readable sweep coordinates plus the canonical fingerprint,
        so experiment caches keyed on it dedupe identical instances even
        across differently-parameterized sweeps.
        """
        return f"v{self.size}-ccr{self.ccr}-{self.fingerprint[:12]}"


@dataclass(frozen=True)
class WorkloadSuite:
    """A generated workload: instances indexed by (ccr, size)."""

    instances: tuple[WorkloadInstance, ...]

    def __iter__(self) -> Iterator[WorkloadInstance]:
        return iter(self.instances)

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def ccrs(self) -> tuple[float, ...]:
        """Distinct CCR values, ascending."""
        return tuple(sorted({inst.ccr for inst in self.instances}))

    @property
    def sizes(self) -> tuple[int, ...]:
        """Distinct graph sizes, ascending."""
        return tuple(sorted({inst.size for inst in self.instances}))

    def by_ccr(self, ccr: float) -> tuple[WorkloadInstance, ...]:
        """Instances of one CCR set, ordered by size."""
        out = tuple(
            sorted(
                (inst for inst in self.instances if inst.ccr == ccr),
                key=lambda inst: inst.size,
            )
        )
        if not out:
            raise WorkloadError(f"no instances with CCR {ccr}")
        return out

    def get(self, ccr: float, size: int) -> WorkloadInstance:
        """The instance for one (ccr, size) point."""
        for inst in self.instances:
            if inst.ccr == ccr and inst.size == size:
                return inst
        raise WorkloadError(f"no instance with CCR {ccr}, size {size}")


def paper_target_system(num_nodes: int, *, max_pes: int | None = None) -> ProcessorSystem:
    """The target system for a v-node instance: fully-connected, O(v) PEs.

    ``max_pes`` caps the PE count (useful for heavily budgeted runs);
    the cap never affects optimality when ≥ the width of the DAG, and
    the experiment drivers only use it where the paper's "minimum TPEs"
    observation applies.
    """
    pes = num_nodes if max_pes is None else min(num_nodes, max_pes)
    return ProcessorSystem.fully_connected(pes, name=f"clique-{pes}")


def paper_suite(
    *,
    ccrs: tuple[float, ...] = PAPER_CCRS,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    base_seed: int = 19980810,  # ICPP'98 dates: 10-14 August 1998
    full: bool = False,
    max_pes: int | None = None,
) -> WorkloadSuite:
    """Generate the §4.1 workload.

    Parameters
    ----------
    ccrs, sizes:
        Sweep points; ``full=True`` overrides ``sizes`` with the paper's
        complete 10…32 range.
    base_seed:
        Master seed; each (ccr, size) point derives a unique child seed.
    max_pes:
        Optional PE cap passed to :func:`paper_target_system`.
    """
    if full:
        sizes = PAPER_SIZES
    instances: list[WorkloadInstance] = []
    for ccr in ccrs:
        for size in sizes:
            seed = base_seed + size * 1009 + int(ccr * 1000) * 9176
            spec = PaperGraphSpec(num_nodes=size, ccr=ccr, seed=seed)
            graph = paper_random_graph(spec)
            instances.append(
                WorkloadInstance(
                    ccr=ccr,
                    size=size,
                    seed=seed,
                    graph=graph,
                    system=paper_target_system(size, max_pes=max_pes),
                )
            )
    return WorkloadSuite(instances=tuple(instances))
