"""List scheduling: the paper's linear-time upper-bound heuristic.

§3.2 ("Upper-Bound Solution Cost") describes the two-step heuristic of
ref. [14] used to obtain the pruning bound ``U``:

    (1) Construct a list of tasks ordered in decreasing priorities.
    (2) Schedule the nodes on the list one by one to the processor that
        allows the earliest start time.

:func:`list_schedule` implements exactly that with a pluggable priority
scheme; :func:`fast_upper_bound_schedule` is the concrete instantiation
used for ``U`` (b-level priority, the standard choice for the FAST
family of algorithms).
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.heuristics.priorities import topological_priority_list
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem

__all__ = ["list_schedule", "fast_upper_bound_schedule"]


def list_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    scheme: str = "b-level",
    order: tuple[int, ...] | None = None,
) -> Schedule:
    """Greedy list scheduling with earliest-start-time PE selection.

    Parameters
    ----------
    graph, system:
        Problem instance.
    scheme:
        Priority scheme used to build the scheduling list (ignored when
        ``order`` is given).
    order:
        Explicit topological scheduling list (advanced use/tests).

    Ties between PEs with equal earliest start break toward the earliest
    *finish* (which only differs on heterogeneous systems), then toward
    the lowest-numbered PE — concentrating work on few processors, the
    behaviour the paper notes ("the algorithms used far less than v
    TPEs").
    """
    if order is None:
        order = topological_priority_list(graph, scheme)
    ps = PartialSchedule.empty(graph, system)
    num_pes = system.num_pes
    for node in order:
        w = graph.weight(node)
        best_pe = 0
        best_start = ps.est(node, 0)
        best_finish = best_start + system.exec_time(w, 0)
        for pe in range(1, num_pes):
            start = ps.est(node, pe)
            finish = start + system.exec_time(w, pe)
            if start < best_start or (start == best_start and finish < best_finish):
                best_start = start
                best_finish = finish
                best_pe = pe
        ps = ps.extend(node, best_pe)
    return ps.to_schedule()


def fast_upper_bound_schedule(graph: TaskGraph, system: ProcessorSystem) -> Schedule:
    """The paper's ``U``-bound heuristic: b-level list + earliest start.

    Runs in O(v log v + (v + e) · p); its length upper-bounds the optimal
    schedule length, which the A* search uses to discard states with
    ``f > U`` (g is monotone increasing, Theorem 1 discussion).
    """
    return list_schedule(graph, system, scheme="b-level")
