"""Upper and lower bounds on the optimal schedule length.

* :func:`upper_bound_cost` — the paper's pruning bound ``U`` (§3.2):
  the length of the linear-time list schedule, optionally tightened by
  the insertion-based variant.  Any state with ``f > U`` can never lead
  to an optimal schedule because ``g`` is monotone increasing.
* :func:`makespan_lower_bound` — max of two classic lower bounds:
  the **critical-path bound** (node weights along the longest path must
  execute sequentially, at best on the fastest PE) and the
  **work bound** (total computation divided by aggregate system speed).
  Used by tests to sandwich the optimum and by the experiment reports.
"""

from __future__ import annotations

from repro.graph.analysis import compute_levels
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.insertion import insertion_list_schedule
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.system.processors import ProcessorSystem

__all__ = ["upper_bound_cost", "makespan_lower_bound"]


def upper_bound_cost(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    tighten: bool = True,
) -> float:
    """The paper's upper-bound pruning cost ``U``.

    With ``tighten`` (default), also runs the insertion-based scheduler
    and keeps the smaller of the two lengths — still an upper bound,
    strictly more pruning.  Set ``tighten=False`` for the literal
    two-step heuristic of ref. [14].
    """
    u = fast_upper_bound_schedule(graph, system).length
    if tighten:
        u2 = insertion_list_schedule(graph, system).length
        if u2 < u:
            u = u2
    return u


def makespan_lower_bound(graph: TaskGraph, system: ProcessorSystem) -> float:
    """A valid lower bound on any schedule length.

    ``max(static CP / fastest speed, total work / sum of speeds)``.

    The static critical path ignores communication, so it bounds even
    schedules that co-locate the whole path on the fastest processor;
    the work bound holds because all computation must happen somewhere.
    """
    levels = compute_levels(graph)
    fastest = max(system.speeds)
    cp_bound = levels.static_cp_length / fastest
    work_bound = graph.total_computation / sum(system.speeds)
    return max(cp_bound, work_bound)
