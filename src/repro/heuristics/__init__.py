"""Polynomial-time scheduling heuristics.

These serve three roles in the reproduction:

1. the linear-time list heuristic of ref. [14] provides the paper's
   upper-bound pruning cost ``U`` (§3.2, "Upper-Bound Solution Cost");
2. classic list schedulers (b-level, static-level, CP/MISF) are the
   comparison heuristics whose deviation-from-optimal the paper's
   introduction motivates measuring;
3. they provide fast non-optimal fallbacks for budgeted searches.
"""

from repro.heuristics.bounds import makespan_lower_bound, upper_bound_cost
from repro.heuristics.cpmisf import cpmisf_schedule
from repro.heuristics.insertion import insertion_list_schedule
from repro.heuristics.listsched import fast_upper_bound_schedule, list_schedule
from repro.heuristics.priorities import (
    PRIORITY_SCHEMES,
    priority_list,
)

__all__ = [
    "list_schedule",
    "fast_upper_bound_schedule",
    "insertion_list_schedule",
    "cpmisf_schedule",
    "priority_list",
    "PRIORITY_SCHEMES",
    "upper_bound_cost",
    "makespan_lower_bound",
]
