"""CP/MISF: Critical Path / Most Immediate Successors First.

Kasahara & Narita's classic list-scheduling heuristic (the authors of
the pioneering B&B scheduler the paper's related-work section cites).
Priority: longest path to exit (b-level here, since we include
communication in path lengths), ties broken by the number of immediate
successors — nodes unlocking more work go first.
"""

from __future__ import annotations

from repro.graph.analysis import compute_levels
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import list_schedule
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem

__all__ = ["cpmisf_schedule", "cpmisf_priority_order"]


def cpmisf_priority_order(graph: TaskGraph) -> tuple[int, ...]:
    """Topological order by (b-level desc, #successors desc, id asc)."""
    import heapq

    levels = compute_levels(graph)
    b = levels.b_level

    def rank(n: int) -> tuple[float, float, int]:
        return (-b[n], -len(graph.succs(n)), n)

    indeg = [len(graph.preds(n)) for n in range(graph.num_nodes)]
    heap = [(rank(n), n) for n in range(graph.num_nodes) if indeg[n] == 0]
    heapq.heapify(heap)
    out: list[int] = []
    while heap:
        _, n = heapq.heappop(heap)
        out.append(n)
        for s in graph.succs(n):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (rank(s), s))
    return tuple(out)


def cpmisf_schedule(graph: TaskGraph, system: ProcessorSystem) -> Schedule:
    """Schedule with the CP/MISF priority list and earliest-start placement."""
    return list_schedule(graph, system, order=cpmisf_priority_order(graph))
