"""Node priority schemes for list scheduling and search ordering.

The paper (§3.2) assigns priorities by **b-level + t-level** with ties
broken randomly; we break ties deterministically (larger b-level, then
smaller id) so experiments are reproducible.  Other classic schemes are
provided for the heuristic-comparison experiments.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import SearchError
from repro.graph.analysis import compute_levels
from repro.graph.taskgraph import TaskGraph

__all__ = ["priority_list", "PRIORITY_SCHEMES", "topological_priority_list"]

PriorityFn = Callable[[TaskGraph], tuple[float, ...]]


def _blevel(graph: TaskGraph) -> tuple[float, ...]:
    return compute_levels(graph).b_level


def _tlevel_neg(graph: TaskGraph) -> tuple[float, ...]:
    # Small t-level = high priority, so negate for max-first ordering.
    return tuple(-t for t in compute_levels(graph).t_level)


def _static_level(graph: TaskGraph) -> tuple[float, ...]:
    return compute_levels(graph).static_level


def _bl_plus_tl(graph: TaskGraph) -> tuple[float, ...]:
    levels = compute_levels(graph)
    return tuple(b + t for b, t in zip(levels.b_level, levels.t_level))


#: Named priority schemes: name -> callable returning per-node priority
#: (larger = more important).
PRIORITY_SCHEMES: dict[str, PriorityFn] = {
    "b-level": _blevel,
    "t-level": _tlevel_neg,
    "static-level": _static_level,
    "b+t-level": _bl_plus_tl,
}


def priority_list(graph: TaskGraph, scheme: str = "b+t-level") -> tuple[int, ...]:
    """All nodes in decreasing priority under ``scheme``.

    Ties break by larger b-level, then smaller node id.  The returned
    order is **not** necessarily topological; list schedulers must pick
    the highest-priority *ready* node at each step.

    Raises
    ------
    SearchError
        For unknown scheme names.
    """
    try:
        fn = PRIORITY_SCHEMES[scheme]
    except KeyError:
        raise SearchError(
            f"unknown priority scheme {scheme!r}; "
            f"choose from {sorted(PRIORITY_SCHEMES)}"
        ) from None
    prio = fn(graph)
    b = compute_levels(graph).b_level
    return tuple(
        sorted(range(graph.num_nodes), key=lambda n: (-prio[n], -b[n], n))
    )


def topological_priority_list(graph: TaskGraph, scheme: str = "b+t-level") -> tuple[int, ...]:
    """Like :func:`priority_list` but stable-sorted into a topological order.

    Produces a valid static scheduling list: scanning left to right, every
    node appears after all of its predecessors, and among independent
    nodes higher priority comes first.
    """
    prio_rank = {n: r for r, n in enumerate(priority_list(graph, scheme))}
    import heapq

    indeg = [len(graph.preds(n)) for n in range(graph.num_nodes)]
    heap = [(prio_rank[n], n) for n in range(graph.num_nodes) if indeg[n] == 0]
    heapq.heapify(heap)
    out: list[int] = []
    while heap:
        _, n = heapq.heappop(heap)
        out.append(n)
        for s in graph.succs(n):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (prio_rank[s], s))
    return tuple(out)
