"""Insertion-based list scheduling.

The append-only rule used by the search never starts a task before the
last task already on the PE.  Insertion scheduling additionally
considers idle gaps between already-placed tasks (the MCP/ISH family).
It often beats plain list scheduling at equal asymptotic cost and gives
the library a second, stronger heuristic for upper bounds and
comparisons — a tighter ``U`` prunes more states.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.heuristics.priorities import topological_priority_list
from repro.schedule.schedule import Schedule
from repro.system.processors import ProcessorSystem

__all__ = ["insertion_list_schedule"]


def insertion_list_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    scheme: str = "b-level",
    order: tuple[int, ...] | None = None,
) -> Schedule:
    """List scheduling that may insert tasks into idle gaps.

    For each node (in priority order) and each PE, the candidate start is
    the earliest time ≥ the data-ready time at which the PE has an idle
    gap long enough for the task; the PE and gap minimizing the start are
    chosen (ties toward lower PE id).
    """
    if order is None:
        order = topological_priority_list(graph, scheme)

    # Per-PE sorted timelines of (start, finish, node).
    timelines: list[list[tuple[float, float, int]]] = [
        [] for _ in range(system.num_pes)
    ]
    placed: dict[int, tuple[int, float, float]] = {}  # node -> (pe, st, ft)

    for node in order:
        w = graph.weight(node)
        best: tuple[float, int] | None = None  # (start, pe)
        for pe in range(system.num_pes):
            # Data-ready time on this PE.
            drt = 0.0
            for parent, c in graph.pred_edges(node):
                ppe, _, pft = placed[parent]
                arrival = pft + system.comm_time(c, ppe, pe)
                if arrival > drt:
                    drt = arrival
            duration = system.exec_time(w, pe)
            start = _earliest_gap(timelines[pe], drt, duration)
            if best is None or start < best[0]:
                best = (start, pe)
        assert best is not None
        start, pe = best
        duration = system.exec_time(w, pe)
        _insert(timelines[pe], (start, start + duration, node))
        placed[node] = (pe, start, start + duration)

    return Schedule(
        graph, system, {n: (pe, st) for n, (pe, st, _ft) in placed.items()}
    )


def _earliest_gap(
    timeline: list[tuple[float, float, int]], ready: float, duration: float
) -> float:
    """Earliest start ≥ ``ready`` that fits ``duration`` into the timeline."""
    cursor = ready
    for start, finish, _node in timeline:
        if cursor + duration <= start:
            return cursor
        if finish > cursor:
            cursor = finish
    return cursor


def _insert(
    timeline: list[tuple[float, float, int]], entry: tuple[float, float, int]
) -> None:
    """Insert keeping the timeline sorted by start time."""
    import bisect

    bisect.insort(timeline, entry)
