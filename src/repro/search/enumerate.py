"""Exhaustive enumeration of the scheduling state space.

Ground truth for tests: walks *every* (ready node × processor) choice
with no heuristic guidance.  Two modes:

* ``dedup=True`` (default) — explores the state *graph* (duplicate
  placements collapsed), feasible up to ~10 nodes × 3 PEs;
* ``dedup=False`` — explores the full search *tree*, the ``> p^v``
  object the paper's introduction talks about; only for tiny instances
  (the worked example's 3^6 = 729 leaves are counted this way in tests).

Guarded by a hard size limit so a mistyped test cannot wedge the suite.
"""

from __future__ import annotations

import math

from repro.errors import SearchError
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget

__all__ = ["enumerate_optimal", "count_complete_schedules"]

_MAX_NODES = 12
_MAX_TREE_NODES = 8


def enumerate_optimal(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    dedup: bool = True,
    state_cls: type = PartialSchedule,
    budget: Budget | None = None,
    incumbent: Schedule | None = None,
    probe: SearchProbe | None = None,
) -> SearchResult:
    """Exhaustively find an optimal schedule (tiny instances only).

    Duplicate detection here deliberately stays on the *exact*
    ``(mask, pes, starts)`` signature rather than the Zobrist duplicate
    key: this walker is the ground truth the engines are property-tested
    against, so it must not share the (vanishingly unlikely) hash
    failure mode it is meant to catch.

    ``budget``, ``incumbent`` and ``probe`` implement the registry-wide
    anytime contract: a ``budget``-stopped run returns the best complete
    schedule seen (falling back to the ``incumbent`` or a list
    schedule) with ``optimal=False`` and ``interrupted`` set; note an
    interrupted enumeration proves nothing, so ``lower_bound`` stays
    ``0.0`` (enumeration has no admissible floor short of completing).
    The warm-start ``incumbent`` never prunes — enumeration stays
    exhaustive — it only guarantees a feasible answer on early exit.

    Raises
    ------
    SearchError
        When the instance exceeds the hard safety limits
        (v > 12 with dedup, v > 8 without).
    """
    v = graph.num_nodes
    limit = _MAX_NODES if dedup else _MAX_TREE_NODES
    if v > limit:
        raise SearchError(
            f"exhaustive enumeration limited to {limit} nodes "
            f"(got {v}); use astar_schedule instead"
        )
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    stats = SearchStats()
    best_len = incumbent.length if incumbent is not None else math.inf
    best: Schedule | None = incumbent
    seen: set[tuple] = set()

    stack = [state_cls.empty(graph, system)]
    while stack:
        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(stack) + len(seen)):
            if best is None:
                # Nothing complete seen yet: a list schedule is always
                # feasible (the anytime contract promises an answer).
                best = fast_upper_bound_schedule(graph, system)
                best_len = best.length
            if probe is not None:
                probe.finish(stats.states_expanded, len(stack),
                             best_len, 0.0)
            return SearchResult(
                schedule=best, optimal=False, bound=math.inf, stats=stats,
                algorithm=(
                    "enumerate(budget)" if dedup else "enumerate(tree,budget)"
                ),
                lower_bound=0.0,
                interrupted=budget.reason or "budget",
                timeline=probe.timeline() if probe is not None else (),
            )
        state = stack.pop()
        stats.states_expanded += 1
        if probe is not None:
            probe.tick(stats.states_expanded, len(stack), best_len, 0.0)
        if state.is_complete():
            if state.makespan < best_len:
                best_len = state.makespan
                best = state.to_schedule()
            continue
        for node in state.ready_nodes():
            for pe in range(system.num_pes):
                child = state.extend(node, pe)
                if dedup:
                    sig = child.signature
                    if sig in seen:
                        continue
                    seen.add(sig)
                stats.states_generated += 1
                stack.append(child)

    assert best is not None  # every DAG admits at least one schedule
    if probe is not None:
        probe.finish(stats.states_expanded, 0, best_len, best_len)
    return SearchResult(
        schedule=best, optimal=True, bound=1.0, stats=stats,
        algorithm="enumerate" if dedup else "enumerate(tree)",
        lower_bound=best.length,
        interrupted=None,
        timeline=probe.timeline() if probe is not None else (),
    )


def count_complete_schedules(graph: TaskGraph, system: ProcessorSystem) -> int:
    """Count the leaves of the full search tree (no deduplication).

    For a DAG with v nodes on p processors this is ``p^v`` times the
    number of distinct topological orders divided appropriately — the
    paper's "more than p^v possible solutions" remark; tests verify the
    worked example yields at least ``3^6``.
    """
    v = graph.num_nodes
    if v > _MAX_TREE_NODES:
        raise SearchError(
            f"tree counting limited to {_MAX_TREE_NODES} nodes (got {v})"
        )
    p = system.num_pes
    count = 0
    stack = [PartialSchedule.empty(graph, system)]
    while stack:
        state = stack.pop()
        if state.is_complete():
            count += 1
            continue
        for node in state.ready_nodes():
            for pe in range(p):
                stack.append(state.extend(node, pe))
    return count
