"""Exhaustive enumeration of the scheduling state space.

Ground truth for tests: walks *every* (ready node × processor) choice
with no heuristic guidance.  Two modes:

* ``dedup=True`` (default) — explores the state *graph* (duplicate
  placements collapsed), feasible up to ~10 nodes × 3 PEs;
* ``dedup=False`` — explores the full search *tree*, the ``> p^v``
  object the paper's introduction talks about; only for tiny instances
  (the worked example's 3^6 = 729 leaves are counted this way in tests).

Guarded by a hard size limit so a mistyped test cannot wedge the suite.
"""

from __future__ import annotations

import math

from repro.errors import SearchError
from repro.graph.taskgraph import TaskGraph
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem

__all__ = ["enumerate_optimal", "count_complete_schedules"]

_MAX_NODES = 12
_MAX_TREE_NODES = 8


def enumerate_optimal(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    dedup: bool = True,
    state_cls: type = PartialSchedule,
) -> SearchResult:
    """Exhaustively find an optimal schedule (tiny instances only).

    Duplicate detection here deliberately stays on the *exact*
    ``(mask, pes, starts)`` signature rather than the Zobrist duplicate
    key: this walker is the ground truth the engines are property-tested
    against, so it must not share the (vanishingly unlikely) hash
    failure mode it is meant to catch.

    Raises
    ------
    SearchError
        When the instance exceeds the hard safety limits
        (v > 12 with dedup, v > 8 without).
    """
    v = graph.num_nodes
    limit = _MAX_NODES if dedup else _MAX_TREE_NODES
    if v > limit:
        raise SearchError(
            f"exhaustive enumeration limited to {limit} nodes "
            f"(got {v}); use astar_schedule instead"
        )

    stats = SearchStats()
    best_len = math.inf
    best: Schedule | None = None
    seen: set[tuple] = set()

    stack = [state_cls.empty(graph, system)]
    while stack:
        state = stack.pop()
        stats.states_expanded += 1
        if state.is_complete():
            if state.makespan < best_len:
                best_len = state.makespan
                best = state.to_schedule()
            continue
        for node in state.ready_nodes():
            for pe in range(system.num_pes):
                child = state.extend(node, pe)
                if dedup:
                    sig = child.signature
                    if sig in seen:
                        continue
                    seen.add(sig)
                stats.states_generated += 1
                stack.append(child)

    assert best is not None  # every DAG admits at least one schedule
    return SearchResult(
        schedule=best, optimal=True, bound=1.0, stats=stats,
        algorithm="enumerate" if dedup else "enumerate(tree)",
    )


def count_complete_schedules(graph: TaskGraph, system: ProcessorSystem) -> int:
    """Count the leaves of the full search tree (no deduplication).

    For a DAG with v nodes on p processors this is ``p^v`` times the
    number of distinct topological orders divided appropriately — the
    paper's "more than p^v possible solutions" remark; tests verify the
    worked example yields at least ``3^6``.
    """
    v = graph.num_nodes
    if v > _MAX_TREE_NODES:
        raise SearchError(
            f"tree counting limited to {_MAX_TREE_NODES} nodes (got {v})"
        )
    p = system.num_pes
    count = 0
    stack = [PartialSchedule.empty(graph, system)]
    while stack:
        state = stack.pop()
        if state.is_complete():
            count += 1
            continue
        for node in state.ready_nodes():
            for pe in range(p):
                stack.append(state.extend(node, pe))
    return count
