"""Search-tree tracing and rendering (paper Figure 3 / Figure 5 style).

A :class:`SearchTrace` records every expansion and generation event; the
renderers reproduce the paper's annotated search-tree figures in text
form: each state shows the node→PE action and its cost split ``g + h``,
with expansion order numbers on expanded states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedule.partial import PartialSchedule

__all__ = ["SearchTrace", "TraceNode"]


@dataclass
class TraceNode:
    """One state in the recorded search tree."""

    node_id: int
    parent_id: int | None
    action: str  # e.g. "n4 -> PE 0" or "<root>"
    g: float
    h: float
    f: float
    expanded_order: int | None = None
    is_goal: bool = False
    children: list[int] = field(default_factory=list)


class SearchTrace:
    """Recorder passed to the search engines via their ``trace`` argument."""

    def __init__(self) -> None:
        self.nodes: list[TraceNode] = []
        self._by_sig: dict[tuple, int] = {}
        self._expansions = 0

    # -- recording hooks (called by the engines) -----------------------------

    def record_expansion(self, state: PartialSchedule, f: float, g: float, h: float) -> None:
        """Mark a state as expanded (assigns the next expansion number)."""
        nid = self._ensure(state, None, g, h, f)
        if self.nodes[nid].expanded_order is None:
            self.nodes[nid].expanded_order = self._expansions
            self._expansions += 1

    def record_generation(
        self,
        parent: PartialSchedule,
        child: PartialSchedule,
        f: float,
        g: float,
        h: float,
    ) -> None:
        """Record a child state generated from ``parent``."""
        pid = self._by_sig.get(parent.signature)
        cid = self._ensure(child, pid, g, h, f)
        if pid is not None and cid not in self.nodes[pid].children:
            self.nodes[pid].children.append(cid)

    def record_goal(self, state: PartialSchedule, f: float) -> None:
        """Mark the goal state."""
        nid = self._by_sig.get(state.signature)
        if nid is not None:
            self.nodes[nid].is_goal = True
            if self.nodes[nid].expanded_order is None:
                self.nodes[nid].expanded_order = self._expansions
                self._expansions += 1

    # -- queries ----------------------------------------------------------------

    @property
    def num_generated(self) -> int:
        """States recorded (root excluded)."""
        return max(0, len(self.nodes) - 1)

    @property
    def num_expanded(self) -> int:
        """States expanded."""
        return self._expansions

    def to_dot(self) -> str:
        """Render the recorded tree in Graphviz DOT (paper Figure-3 style).

        Expanded states show their expansion order; the goal is doubly
        circled; non-expanded (generated-only) states are grey.
        """
        lines = ["digraph searchtree {", "  node [shape=box, fontsize=10];"]
        for n in self.nodes:
            label = f"{n.action}\\nf = {n.g:g} + {n.h:g}"
            attrs = []
            if n.expanded_order is not None:
                label += f"\\n#{n.expanded_order}"
            else:
                attrs.append('color="grey60", fontcolor="grey40"')
            if n.is_goal:
                attrs.append("peripheries=2")
            attr_str = (", " + ", ".join(attrs)) if attrs else ""
            lines.append(f'  {n.node_id} [label="{label}"{attr_str}];')
        for n in self.nodes:
            for cid in n.children:
                lines.append(f"  {n.node_id} -> {cid};")
        lines.append("}")
        return "\n".join(lines)

    def render(self, max_depth: int | None = None) -> str:
        """ASCII tree: one line per state, ``action  f = g + h`` format."""
        if not self.nodes:
            return "(empty trace)"
        lines: list[str] = []

        def walk(nid: int, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            n = self.nodes[nid]
            marks = []
            if n.expanded_order is not None:
                marks.append(f"#{n.expanded_order}")
            if n.is_goal:
                marks.append("GOAL")
            suffix = ("   [" + ", ".join(marks) + "]") if marks else ""
            lines.append(
                f"{'  ' * depth}{n.action}  f = {n.g:g} + {n.h:g}{suffix}"
            )
            for cid in n.children:
                walk(cid, depth + 1)

        walk(0, 0)
        return "\n".join(lines)

    # -- internals ----------------------------------------------------------------

    def _ensure(
        self,
        state: PartialSchedule,
        parent_id: int | None,
        g: float,
        h: float,
        f: float,
    ) -> int:
        sig = state.signature
        nid = self._by_sig.get(sig)
        if nid is not None:
            return nid
        nid = len(self.nodes)
        action = self._describe_action(state, parent_id)
        self.nodes.append(
            TraceNode(node_id=nid, parent_id=parent_id, action=action, g=g, h=h, f=f)
        )
        self._by_sig[sig] = nid
        return nid

    def _describe_action(self, state: PartialSchedule, parent_id: int | None) -> str:
        if state.num_scheduled == 0:
            return "<initial>"
        if parent_id is None:
            return f"<{state.num_scheduled} placed>"
        parent_sig = None
        for sig, nid in self._by_sig.items():
            if nid == parent_id:
                parent_sig = sig
                break
        if parent_sig is None:
            return f"<{state.num_scheduled} placed>"
        parent_mask = parent_sig[0]
        new_bit = state.mask & ~parent_mask
        node = new_bit.bit_length() - 1
        label = state.graph.label(node)
        return f"{label} -> PE {state.pes[node]}"
