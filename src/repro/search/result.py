"""Search results and statistics shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedule.schedule import Schedule
from repro.search.pruning import PruningStats

__all__ = ["SearchStats", "SearchResult"]


@dataclass
class SearchStats:
    """Machine-independent work counters for one search run.

    The paper's Table 1 reports seconds on the Intel Paragon; these
    counters are the reproducible equivalents — they drive the same
    comparisons without depending on 1998 hardware.
    """

    states_generated: int = 0
    states_expanded: int = 0
    cost_evaluations: int = 0
    max_open_size: int = 0
    duplicate_rate: float = 0.0
    wall_seconds: float = 0.0
    pruning: PruningStats = field(default_factory=PruningStats)

    def as_dict(self) -> dict[str, float]:
        """Flat dict for reports."""
        return {
            "states_generated": self.states_generated,
            "states_expanded": self.states_expanded,
            "cost_evaluations": self.cost_evaluations,
            "max_open_size": self.max_open_size,
            "wall_seconds": self.wall_seconds,
            **self.pruning.as_dict(),
        }


@dataclass
class SearchResult:
    """Outcome of a scheduling search.

    Attributes
    ----------
    schedule:
        The best complete schedule found (``None`` only when a budget
        expired before any goal was reached).
    optimal:
        True when the engine proved optimality (A*/B&B run to
        completion); False for budget-terminated or ε-approximate runs.
    bound:
        For ε-approximate runs, the proven upper bound factor
        ``(1 + ε)`` on the ratio to optimal; 1.0 for exact runs.
    stats:
        Work counters.
    algorithm:
        Engine label for reports.
    """

    schedule: Schedule | None
    optimal: bool
    bound: float
    stats: SearchStats
    algorithm: str

    @property
    def length(self) -> float:
        """Length of the returned schedule (inf when none was found)."""
        return self.schedule.length if self.schedule is not None else float("inf")
