"""Search results and statistics shared by every engine."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.schedule.schedule import Schedule
from repro.search.pruning import PruningStats

__all__ = ["SearchStats", "SearchResult"]


@dataclass
class SearchStats:
    """Machine-independent work counters for one search run.

    The paper's Table 1 reports seconds on the Intel Paragon; these
    counters are the reproducible equivalents — they drive the same
    comparisons without depending on 1998 hardware.
    """

    states_generated: int = 0
    states_expanded: int = 0
    cost_evaluations: int = 0
    max_open_size: int = 0
    wall_seconds: float = 0.0
    pruning: PruningStats = field(default_factory=PruningStats)

    @property
    def duplicate_rate(self) -> float:
        """Fraction of expansion candidates killed by duplicate detection.

        Derived from the counters (it used to be a field nobody set and
        ``as_dict`` dropped).  Every candidate that reaches the
        duplicate check either hits it, gets cut by the generation-time
        upper bound, or is counted as generated — so those three
        counters together are the denominator.
        """
        candidates = (
            self.states_generated
            + self.pruning.duplicate_hits
            + self.pruning.upper_bound_cuts
        )
        return self.pruning.duplicate_hits / candidates if candidates else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict for reports."""
        return {
            "states_generated": self.states_generated,
            "states_expanded": self.states_expanded,
            "cost_evaluations": self.cost_evaluations,
            "max_open_size": self.max_open_size,
            "duplicate_rate": self.duplicate_rate,
            "wall_seconds": self.wall_seconds,
            **self.pruning.as_dict(),
        }

    def merge(self, other: "SearchStats | dict") -> None:
        """Fold another run's counters into this one, in place.

        The single aggregation path for *every* multi-run consumer —
        the portfolio summing its stages, the HDA* coordinator reducing
        worker records (pass the worker's wire dict directly), speedup
        accounting — so new counters only ever need to be added here.

        Work counters add; ``max_open_size`` takes the max (frontiers
        coexist, they don't concatenate); ``wall_seconds`` is *not*
        touched — elapsed time is end-to-end, not a sum over
        possibly-concurrent runs, so the caller owns it.
        """
        if isinstance(other, dict):
            self.states_generated += other.get("states_generated", 0)
            self.states_expanded += other.get("states_expanded", 0)
            self.cost_evaluations += other.get("cost_evaluations", 0)
            self.max_open_size = max(
                self.max_open_size, other.get("max_open_size", 0)
            )
            self.pruning.merge(other.get("pruning", {}))
            return
        self.states_generated += other.states_generated
        self.states_expanded += other.states_expanded
        self.cost_evaluations += other.cost_evaluations
        self.max_open_size = max(self.max_open_size, other.max_open_size)
        self.pruning.merge(other.pruning)


@dataclass
class SearchResult:
    """Outcome of a scheduling search.

    Attributes
    ----------
    schedule:
        The best complete schedule found (``None`` only when a budget
        expired before any goal was reached).
    optimal:
        True when the engine proved optimality (A*/B&B run to
        completion); False for budget-terminated or ε-approximate runs.
    bound:
        For ε-approximate runs, the proven upper bound factor
        ``(1 + ε)`` on the ratio to optimal; 1.0 for exact runs.
    stats:
        Work counters.
    algorithm:
        Engine label for reports.
    lower_bound:
        Tightest *proven* lower bound on the optimal makespan seen
        before the engine stopped.  For proven-optimal runs this equals
        the schedule length; for budget-terminated runs it is the
        engine-specific admissible floor (min f over the unexplored
        frontier, the current IDA* threshold, …) — what turns a
        best-effort incumbent into a *certified-approximate* answer.
    interrupted:
        ``None`` for a run that finished on its own; otherwise the
        budget reason that stopped it (``"expansions"``,
        ``"generations"``, ``"time"``, ``"memory"``, ``"interrupt"``,
        or a backend-specific cause such as ``"worker-failure"``).
    timeline:
        Convergence samples recorded by a
        :class:`repro.obs.probe.SearchProbe` when one was passed to the
        engine (``()`` otherwise).  Each sample is ``(wall_time,
        expansions, open_size, incumbent, lower_bound)`` and the series
        is monotone: wall time and expansions non-decreasing, incumbent
        non-increasing, lower bound non-decreasing.
    """

    schedule: Schedule | None
    optimal: bool
    bound: float
    stats: SearchStats
    algorithm: str
    lower_bound: float = 0.0
    interrupted: str | None = None
    timeline: tuple = ()

    @property
    def length(self) -> float:
        """Length of the returned schedule (inf when none was found)."""
        return self.schedule.length if self.schedule is not None else float("inf")

    @property
    def certificate(self) -> str:
        """What this result proves about its schedule.

        ``"proven"`` — the schedule is optimal; ``"epsilon"`` — within a
        proven factor (:attr:`bound`) of optimal; ``"budget"`` — best
        effort, no guarantee (the search hit its budget).  This is the
        value the service layer's result cache stores and keys staleness
        decisions on.
        """
        if self.optimal:
            return "proven"
        if math.isfinite(self.bound):
            return "epsilon"
        return "budget"
