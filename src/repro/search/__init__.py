"""State-space search schedulers: the paper's primary contribution.

* :mod:`repro.search.costs` — the admissible cost function ``f = g + h``
  of §3.1 (Theorem 1) plus tighter/looser alternatives for ablation.
* :mod:`repro.search.pruning` — the four §3.2 pruning techniques as
  independently-toggleable rules with hit counters.
* :mod:`repro.search.astar` — the serial A* scheduling algorithm.
* :mod:`repro.search.focal` — the approximate Aε* (§3.4, Theorem 2).
* :mod:`repro.search.bnb` — depth-first branch-and-bound on the same
  state space (memory-light alternative).
* :mod:`repro.search.enumerate` — exhaustive enumeration for tiny
  instances (ground truth in tests).
"""

from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.search.costs import (
    COST_FUNCTIONS,
    CostFunction,
    ImprovedCost,
    PaperCost,
    ZeroCost,
    make_cost_function,
)
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.pruning import PruningConfig, PruningStats
from repro.search.result import SearchResult, SearchStats

__all__ = [
    "astar_schedule",
    "focal_schedule",
    "bnb_schedule",
    "idastar_schedule",
    "weighted_astar_schedule",
    "enumerate_optimal",
    "CostFunction",
    "PaperCost",
    "ImprovedCost",
    "ZeroCost",
    "COST_FUNCTIONS",
    "make_cost_function",
    "PruningConfig",
    "PruningStats",
    "SearchResult",
    "SearchStats",
]
