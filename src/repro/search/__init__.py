"""State-space search schedulers: the paper's primary contribution.

* :mod:`repro.search.costs` — the admissible cost function ``f = g + h``
  of §3.1 (Theorem 1) plus tighter/looser alternatives for ablation.
* :mod:`repro.search.pruning` — the four §3.2 pruning techniques as
  independently-toggleable rules with hit counters.
* :mod:`repro.search.astar` — the serial A* scheduling algorithm.
* :mod:`repro.search.focal` — the approximate Aε* (§3.4, Theorem 2).
* :mod:`repro.search.bnb` — depth-first branch-and-bound on the same
  state space (memory-light alternative).
* :mod:`repro.search.enumerate` — exhaustive enumeration for tiny
  instances (ground truth in tests).

:data:`ENGINES` / :func:`get_engine` form the engine registry: every
first-class search backend by name.  Engines living in *higher* layers
register themselves downward via :func:`register_engine` — the
multiprocess HDA* engine in :mod:`repro.parallel.hda` does so at import
(and ``repro/__init__`` imports it eagerly, so the registry is complete
whenever any ``repro.*`` module is).  This package never imports
upward; the ``layering`` lint rule enforces that.  The service layer's
portfolio dispatches through the registry; the CLI keeps its own
argparse choices (engine flags differ per command) but every engine it
offers is registered here.
"""

from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.search.costs import (
    COST_FUNCTIONS,
    CombinedCost,
    CostFunction,
    ImprovedCost,
    LoadBoundCost,
    PaperCost,
    ZeroCost,
    make_cost_function,
)
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.pruning import PruningConfig, PruningStats
from repro.search.result import SearchResult, SearchStats


#: Engine registry: name -> zero-argument loader returning the engine's
#: schedule function.  Every engine takes ``(graph, system, ...)`` and
#: the anytime keywords ``budget=``/``incumbent=``/``probe=``, but
#: signatures differ beyond that (``wastar``/``focal`` require a
#: positional ``epsilon``, ``hda`` adds ``workers=``) — consult each
#: function before generic dispatch;
#: :func:`repro.service.portfolio._run_engine` shows the bindings.
#: Higher layers extend this via :func:`register_engine`.
_ENGINE_LOADERS = {
    "astar": lambda: astar_schedule,
    "bnb": lambda: bnb_schedule,
    "idastar": lambda: idastar_schedule,
    "wastar": lambda: weighted_astar_schedule,
    "focal": lambda: focal_schedule,
    "enumerate": lambda: enumerate_optimal,
}


def register_engine(name: str, loader) -> None:
    """Register (or replace) an engine under ``name``.

    ``loader`` is a zero-argument callable returning the schedule
    function.  This is the hook engines in higher layers use to appear
    in :data:`ENGINES` without this package importing upward —
    :mod:`repro.parallel.hda` registers ``"hda"`` when it is imported
    (which ``repro/__init__`` does eagerly).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"engine name must be a non-empty string, got {name!r}")
    if not callable(loader):
        raise TypeError(f"engine loader for {name!r} must be callable")
    _ENGINE_LOADERS[name] = loader


def unregister_engine(name: str) -> None:
    """Remove a registered engine (test cleanup for custom engines)."""
    _ENGINE_LOADERS.pop(name, None)


def get_engine(name: str):
    """Resolve an engine name from :data:`ENGINES` to its function.

    Raises
    ------
    ValueError
        For unknown names (the message lists the registry).
    """
    try:
        loader = _ENGINE_LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered: "
            f"{', '.join(_ENGINE_LOADERS)}"
        ) from None
    return loader()


def __getattr__(name: str):
    # PEP 562: ENGINES reflects late registrations (e.g. "hda", which
    # repro.parallel.hda adds when it is imported).
    if name == "ENGINES":
        return tuple(_ENGINE_LOADERS)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ENGINES",
    "get_engine",
    "register_engine",
    "unregister_engine",
    "astar_schedule",
    "focal_schedule",
    "bnb_schedule",
    "idastar_schedule",
    "weighted_astar_schedule",
    "enumerate_optimal",
    "CostFunction",
    "PaperCost",
    "ImprovedCost",
    "ZeroCost",
    "LoadBoundCost",
    "CombinedCost",
    "COST_FUNCTIONS",
    "make_cost_function",
    "PruningConfig",
    "PruningStats",
    "SearchResult",
    "SearchStats",
]
