"""State-space search schedulers: the paper's primary contribution.

* :mod:`repro.search.costs` — the admissible cost function ``f = g + h``
  of §3.1 (Theorem 1) plus tighter/looser alternatives for ablation.
* :mod:`repro.search.pruning` — the four §3.2 pruning techniques as
  independently-toggleable rules with hit counters.
* :mod:`repro.search.astar` — the serial A* scheduling algorithm.
* :mod:`repro.search.focal` — the approximate Aε* (§3.4, Theorem 2).
* :mod:`repro.search.bnb` — depth-first branch-and-bound on the same
  state space (memory-light alternative).
* :mod:`repro.search.enumerate` — exhaustive enumeration for tiny
  instances (ground truth in tests).

:data:`ENGINES` / :func:`get_engine` form the engine registry: every
first-class search backend by name, including the multiprocess HDA*
engine that lives in :mod:`repro.parallel` (resolved lazily to keep
this package import-light and cycle-free).  The service layer's
portfolio dispatches through it; the CLI keeps its own argparse
choices (engine flags differ per command) but every engine it offers
is registered here.
"""

from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.search.costs import (
    COST_FUNCTIONS,
    CombinedCost,
    CostFunction,
    ImprovedCost,
    LoadBoundCost,
    PaperCost,
    ZeroCost,
    make_cost_function,
)
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.pruning import PruningConfig, PruningStats
from repro.search.result import SearchResult, SearchStats


def _load_hda():
    # Deferred: repro.parallel.hda imports back into repro.search; a
    # top-level import here would create a package cycle.
    from repro.parallel.hda import hda_astar_schedule

    return hda_astar_schedule


#: Engine registry: name -> zero-argument loader returning the engine's
#: schedule function.  Every engine takes ``(graph, system, ...)``, but
#: signatures differ beyond that (``wastar``/``focal`` require a
#: positional ``epsilon``, ``hda`` adds ``workers=``, ``enumerate``
#: takes no budget) — consult each function before generic dispatch;
#: :func:`repro.service.portfolio._run_engine` shows the bindings.
_ENGINE_LOADERS = {
    "astar": lambda: astar_schedule,
    "bnb": lambda: bnb_schedule,
    "idastar": lambda: idastar_schedule,
    "wastar": lambda: weighted_astar_schedule,
    "focal": lambda: focal_schedule,
    "enumerate": lambda: enumerate_optimal,
    "hda": _load_hda,
}

#: The registered engine names, in registry order.
ENGINES = tuple(_ENGINE_LOADERS)


def get_engine(name: str):
    """Resolve an engine name from :data:`ENGINES` to its function.

    Raises
    ------
    ValueError
        For unknown names (the message lists the registry).
    """
    try:
        loader = _ENGINE_LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered: {', '.join(ENGINES)}"
        ) from None
    return loader()


__all__ = [
    "ENGINES",
    "get_engine",
    "astar_schedule",
    "focal_schedule",
    "bnb_schedule",
    "idastar_schedule",
    "weighted_astar_schedule",
    "enumerate_optimal",
    "CostFunction",
    "PaperCost",
    "ImprovedCost",
    "ZeroCost",
    "LoadBoundCost",
    "CombinedCost",
    "COST_FUNCTIONS",
    "make_cost_function",
    "PruningConfig",
    "PruningStats",
    "SearchResult",
    "SearchStats",
]
