"""State expansion shared by every search engine.

Expanding a state (paper §3.1) exhaustively matches every ready node to
every candidate processor; each match is one child state.  The §3.2
pruning rules act here:

* node-equivalence filters the ready list;
* priority ordering sorts it;
* processor isomorphism filters the candidate PE list per state.

The expander owns all per-instance precomputation (levels, priority
ranks, node-equivalence classes, PE isomorphism classes) so the
per-expansion work is pure array traffic.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.graph.analysis import compute_levels
from repro.graph.taskgraph import TaskGraph
from repro.schedule.partial import PartialSchedule

# Definition 3 lives with the other graph transformations in the
# preprocessing module (its canonical home since the preprocess pass can
# merge classes); re-exported here because every engine reaches it
# through the expander.
from repro.schedule.preprocess import node_equivalence_classes
from repro.search.dedup import SignatureSet
from repro.search.pruning import PruningConfig, PruningStats
from repro.system.isomorphism import isomorphism_classes
from repro.system.processors import ProcessorSystem

__all__ = ["StateExpander", "node_equivalence_classes"]


class StateExpander:
    """Generates the children of a partial schedule under a pruning config."""

    def __init__(
        self,
        graph: TaskGraph,
        system: ProcessorSystem,
        config: PruningConfig,
        stats: PruningStats | None = None,
    ) -> None:
        self.graph = graph
        self.system = system
        self.config = config
        self.stats = stats if stats is not None else PruningStats()

        levels = compute_levels(graph)
        # Priority = b-level + t-level, larger first (§3.2).  Precomputed
        # as a rank so sorting the ready list is a cheap key lookup.
        order = sorted(
            range(graph.num_nodes),
            key=lambda n: (
                -(levels.b_level[n] + levels.t_level[n]),
                -levels.b_level[n],
                n,
            ),
        )
        self._prio_rank = [0] * graph.num_nodes
        for rank, n in enumerate(order):
            self._prio_rank[n] = rank

        # node -> equivalence-class id, and class id -> members.
        self._equiv_classes = node_equivalence_classes(graph)
        self._equiv_id = [0] * graph.num_nodes
        for cid, members in enumerate(self._equiv_classes):
            for n in members:
                self._equiv_id[n] = cid

        # PE isomorphism classes (structural part of Definition 2).
        self._pe_classes = isomorphism_classes(system)

        # Per-node predecessor bitmasks: the commutation rule's "is the
        # last-placed node a parent of this candidate?" test becomes a
        # single shift-and-mask instead of a tuple `in` scan.
        self._pred_masks = graph.pred_masks

        # Fixed-task-order precomputation: per node, the single parent /
        # child id (-1 = none, -2 = more than one) and the in/out edge
        # communication costs.  The exchange argument behind the rule
        # swaps task positions across PEs, so it requires PE-independent
        # execution and communication times: homogeneous speeds and
        # non-distance-scaled links.
        self._fto_applicable = (
            config.fixed_task_order
            and system.is_homogeneous
            and not system.distance_scaled
        )

        # Processor-symmetry normalization self-gates exactly like FTO:
        # its justifying permutation swaps empty PEs, which only
        # preserves schedules when execution times are PE-independent
        # (homogeneous) and communication ignores topology (uniform).
        self._sym_applicable = (
            config.root_symmetry
            and system.is_homogeneous
            and not system.distance_scaled
        )
        if self._fto_applicable:
            single_parent: list[int] = []
            single_child: list[int] = []
            in_cost: list[float] = []
            out_cost: list[float] = []
            for n in range(graph.num_nodes):
                pe_edges = tuple(graph.pred_edges(n))
                se_edges = tuple(graph.succ_edges(n))
                single_parent.append(
                    -1 if not pe_edges
                    else pe_edges[0][0] if len(pe_edges) == 1 else -2
                )
                single_child.append(
                    -1 if not se_edges
                    else se_edges[0][0] if len(se_edges) == 1 else -2
                )
                in_cost.append(pe_edges[0][1] if len(pe_edges) == 1 else 0.0)
                out_cost.append(se_edges[0][1] if len(se_edges) == 1 else 0.0)
            self._fto_single_parent = single_parent
            self._fto_single_child = single_child
            self._fto_in_cost = in_cost
            self._fto_out_cost = out_cost

    # -- candidate selection ---------------------------------------------------

    def candidate_nodes(self, ps: PartialSchedule) -> list[int]:
        """Ready nodes, equivalence-filtered and priority-ordered."""
        ready = ps.ready_nodes()
        if self.config.node_equivalence and len(ready) > 1:
            seen_classes: set[int] = set()
            filtered: list[int] = []
            equiv_id = self._equiv_id
            for n in ready:  # ascending id: keeps lowest member per class
                cid = equiv_id[n]
                if cid in seen_classes:
                    self.stats.equivalence_skips += 1
                    continue
                seen_classes.add(cid)
                filtered.append(n)
            ready = filtered
        if self.config.priority_ordering and len(ready) > 1:
            rank = self._prio_rank
            ready.sort(key=lambda n: rank[n])
        return ready

    def fixed_order_head(self, nodes: list[int]) -> int | None:
        """The head of the ready chain when fixed task order applies.

        The ready set admits a fixed order (Sinnen's FTO; Akram et al.
        2024) when

        * every ready node has at most one parent and at most one child,
        * either *every* ready node has the same single parent (a fork —
          availability co-varies across PEs: the common parent's finish
          locally, plus each node's own in-edge cost remotely) or *no*
          ready node has a parent (all data-ready at 0 everywhere).
          Mixing the two groups is unsound: a zero-DRT entry task can
          order ahead of a fork task yet displace it by its full weight,
          delaying the fork task's child (found by property testing),
        * symmetrically, either *every* ready node has the same single
          child (a join — the only downstream influence is that child's
          data-ready time) or *no* ready node has a child.  Mixing is
          unsound here too: a childless task can tie with a join task on
          out-communication (both 0) yet win the id tiebreak, and
          delaying the join task delays the shared child by its full
          weight — no message cost needed (also found by property
          testing; the pinned counterexample is two entry tasks feeding
          a join plus one childless entry task),
        * sorting by (data-ready time ascending, out-communication
          descending, node id) leaves the out-communication costs
          non-increasing — i.e. one order is simultaneously earliest-
          available-first and most-urgent-message-first.

        Then an exchange argument gives: some optimal completion
        schedules the head next, so only the head need be branched
        (property-tested against exhaustive enumeration).  With a shared
        parent, data-ready order is entry-tasks-first then in-edge cost
        ascending — no finish times needed.  Returns ``None`` when the
        conditions fail.
        """
        single_parent = self._fto_single_parent
        single_child = self._fto_single_child
        first_parent = single_parent[nodes[0]]
        first_child = single_child[nodes[0]]
        for n in nodes:
            p = single_parent[n]
            if p == -2 or p != first_parent:
                return None
            c = single_child[n]
            if c == -2 or c != first_child:
                return None
        in_cost = self._fto_in_cost
        out_cost = self._fto_out_cost
        # All-fork: data-ready order is the in-edge cost order (the
        # shared parent's finish is a common constant).  All-entry:
        # in_cost is 0.0 across the board, so the sort is pure
        # out-communication order.
        ordered = sorted(
            nodes, key=lambda n: (in_cost[n], -out_cost[n], n)
        )
        prev = math.inf
        for n in ordered:
            oc = out_cost[n]
            if oc > prev:
                return None  # no order serves both criteria at once
            prev = oc
        return ordered[0]

    def candidate_pes(self, ps: PartialSchedule) -> list[int]:
        """Candidate PEs: all busy PEs plus one representative per
        isomorphism class among the empty ones (Definition 2).

        Under processor-symmetry normalization (homogeneous speeds,
        uniform communication) *all* empty PEs collapse to the single
        lowest-numbered one — topology is irrelevant to the cost model,
        so the structural classes merge; at the root this pins the
        first task to PE 0.
        """
        num_pes = self.system.num_pes
        if self._sym_applicable:
            ready_time = ps.ready_time
            pes = [pe for pe in range(num_pes) if ready_time[pe] > 0.0]
            empties = num_pes - len(pes)
            if empties:
                pes.append(min(
                    pe for pe in range(num_pes) if ready_time[pe] == 0.0
                ))
                self.stats.symmetry_skips += empties - 1
            pes.sort()
            return pes
        if not self.config.processor_isomorphism:
            return list(range(num_pes))
        ready_time = ps.ready_time
        pes: list[int] = []
        for members in self._pe_classes:
            rep_taken = False
            for pe in members:
                if ready_time[pe] > 0.0:
                    pes.append(pe)  # busy PEs are always distinct
                elif not rep_taken:
                    pes.append(pe)  # first empty member represents the class
                    rep_taken = True
                else:
                    self.stats.isomorphism_skips += 1
        pes.sort()
        return pes

    def children(
        self, ps: PartialSchedule, seen: SignatureSet | None = None
    ) -> Iterator[PartialSchedule]:
        """Yield every child state of ``ps`` (after node/PE filtering).

        Children are yielded highest-priority node first, lowest PE id
        first — determinism the tests rely on.

        When ``seen`` is given, duplicate placements are filtered *before
        construction*: the child's duplicate key is previewed
        (:meth:`PartialSchedule.child_signature` — one EST plus one
        Zobrist XOR) and only unseen keys are materialized and recorded.
        Profiling showed 80-90% of expansion candidates dying in the
        engines' duplicate checks after paying full construction cost —
        this is the paper's CLOSED-list check, hoisted.  In the table's
        ``verify`` mode the child is constructed first so its exact
        signature can confirm each hash hit.
        """
        pes = self.candidate_pes(ps)
        nodes = self.candidate_nodes(ps)
        if self._fto_applicable and len(nodes) > 1:
            head = self.fixed_order_head(nodes)
            if head is not None:
                # The whole ready chain collapses to its head: the
                # other ready nodes' candidate placements are skipped
                # wholesale (they will be branched, in order, in the
                # head's descendants).
                self.stats.fixed_order_skips += (len(nodes) - 1) * len(pes)
                nodes = [head]
        commut = self.config.commutation and ps.last_node >= 0
        skip_other_pes = False
        if commut:
            last_node = ps.last_node
            last_pe = ps.last_pe
            last_rank = self._prio_rank[last_node]
            rank = self._prio_rank
            pred_masks = self._pred_masks
        verify = seen is not None and seen.verify
        for node in nodes:
            if commut:
                # Partial-order reduction: if `node` was already ready
                # before the last placement (the last node is not its
                # parent) and orders canonically before it, the states
                # reachable by placing `node` on a *different* PE are
                # transpositions of placements explored via the swapped
                # order (or isomorphic/equivalent variants of them).
                skip_other_pes = (
                    rank[node] < last_rank
                    and not (pred_masks[node] >> last_node) & 1
                )
            for pe in pes:
                if skip_other_pes and pe != last_pe:
                    self.stats.commutation_skips += 1
                    continue
                if seen is None:
                    yield ps.extend(node, pe)
                    continue
                key, start = ps.child_signature(node, pe)
                if verify:
                    child = ps.extend(node, pe, _start=start, _sig=key)
                    if seen.check_add(key, lambda c=child: c.signature):
                        self.stats.duplicate_hits += 1
                        continue
                    yield child
                    continue
                if seen.check_add(key):
                    self.stats.duplicate_hits += 1
                    continue
                yield ps.extend(node, pe, _start=start, _sig=key)

    # -- instrumentation -------------------------------------------------------

    @property
    def equivalence_classes(self) -> tuple[tuple[int, ...], ...]:
        """Node equivalence classes (Definition 3) of this instance."""
        return self._equiv_classes

    @property
    def pe_classes(self) -> tuple[tuple[int, ...], ...]:
        """Structural PE isomorphism classes (Definition 2) of this instance."""
        return self._pe_classes
