"""Weighted A*: the other classic bounded-suboptimality scheduler.

Weighted A* (Pohl 1970) inflates the heuristic — ``f_w = g + w·h`` with
``w = 1 + ε`` — instead of keeping a FOCAL list.  With an admissible
``h``, the first goal popped satisfies ``length ≤ w · optimal``: along
any optimal path some state s sits in OPEN with
``g(s) + h(s) ≤ f_opt``, so the popped goal has
``length = f_w(goal) ≤ g(s) + w·h(s) ≤ w·(g(s) + h(s)) ≤ w·f_opt``.

Shipping both WA* and the paper's Aε* lets the benchmark harness compare
the two bounded-suboptimality mechanisms on identical instances — an
ablation the paper leaves open (it only evaluates Aε*).  The practical
difference: WA* distorts the expansion *order* (greedier), while Aε*
keeps the A* frontier and re-prioritises only within the (1+ε) band.
"""

from __future__ import annotations

import heapq
import math
import time

from repro.errors import SearchError
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import CostFunction, make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = ["weighted_astar_schedule"]


def weighted_astar_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    epsilon: float,
    *,
    pruning: PruningConfig | None = None,
    cost: str | CostFunction = "paper",
    budget: Budget | None = None,
    state_cls: type = PartialSchedule,
    incumbent: Schedule | None = None,
    probe: SearchProbe | None = None,
) -> SearchResult:
    """Schedule within ``(1 + epsilon)`` of optimal via weighted A*.

    ``epsilon = 0`` reduces exactly to plain A*.  A known-feasible
    ``incumbent`` seeds the upper-bound cut and the budget fallback,
    as in :func:`repro.search.astar.astar_schedule`.

    Raises
    ------
    SearchError
        For negative ``epsilon``.
    """
    if epsilon < 0:
        raise SearchError(f"epsilon must be >= 0, got {epsilon}")
    if pruning is None:
        pruning = PruningConfig.all()
    if isinstance(cost, str):
        cost_fn = make_cost_function(cost, graph, system)
    else:
        cost_fn = cost
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    w = 1.0 + epsilon
    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)
    fallback: Schedule = fast_upper_bound_schedule(graph, system)
    if incumbent is not None and incumbent.length < fallback.length:
        fallback = incumbent
    # The unrelaxed upper bound remains valid (optimal-path states have
    # plain f ≤ f_opt ≤ U and survive), so WA* prunes as hard as A*.
    upper = fallback.length if pruning.upper_bound else math.inf

    t0 = time.perf_counter()
    root = state_cls.empty(graph, system)
    open_heap: list[tuple[float, float, int, PartialSchedule]] = [
        (0.0, 0.0, 0, root)
    ]
    seq = 1
    seen = SignatureSet(verify=pruning.verify_signatures)
    if pruning.duplicate_detection:
        seen.add(root.dedup_key, lambda: root.signature)
    incumbent = None  # rebound: best complete schedule *generated here*
    # Anytime lower bound: an optimal-path state s in OPEN has
    # f_w(s) <= w * f_opt, so every popped f_w / w is a proven floor
    # (same argument as the suboptimality bound, read in reverse).
    lower = 0.0
    dup_on = pruning.duplicate_detection
    ub_on = pruning.upper_bound

    while open_heap:
        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(open_heap) + len(seen)):
            best = incumbent if incumbent is not None else fallback
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            lower = max(lower, open_heap[0][0] / w)
            bound = min(lower, best.length)
            if probe is not None:
                probe.finish(stats.states_expanded, len(open_heap),
                             best.length, bound)
            return SearchResult(
                schedule=best, optimal=False, bound=math.inf,
                stats=stats, algorithm=f"wastar(eps={epsilon},budget)",
                lower_bound=bound,
                interrupted=budget.reason or "budget",
                timeline=probe.timeline() if probe is not None else (),
            )
        fw, h, _s, state = heapq.heappop(open_heap)
        if fw / w > lower:
            lower = fw / w
        if state.is_complete():
            stats.states_expanded += 1
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            goal = state.to_schedule()
            if probe is not None:
                probe.finish(stats.states_expanded, len(open_heap),
                             goal.length, min(lower, goal.length))
            return SearchResult(
                schedule=goal,
                optimal=(epsilon == 0.0),
                bound=w,
                stats=stats,
                algorithm=f"wastar(eps={epsilon})",
                lower_bound=min(lower, goal.length),
                timeline=probe.timeline() if probe is not None else (),
            )
        stats.states_expanded += 1
        if probe is not None:
            probe.tick(
                stats.states_expanded, len(open_heap),
                incumbent.length if incumbent is not None else math.inf,
                min(lower,
                    incumbent.length if incumbent is not None else math.inf),
            )
        for child in expander.children(state, seen if dup_on else None):
            ch = cost_fn.h(child)
            plain_f = child.makespan + ch
            if ub_on and tol.gt(plain_f, upper):
                stats.pruning.upper_bound_cuts += 1
                continue
            stats.states_generated += 1
            if child.is_complete() and (
                incumbent is None or child.makespan < incumbent.length
            ):
                incumbent = child.to_schedule()
            heapq.heappush(
                open_heap, (child.makespan + w * ch, ch, seq, child)
            )
            seq += 1
        if len(open_heap) > stats.max_open_size:
            stats.max_open_size = len(open_heap)

    stats.wall_seconds = time.perf_counter() - t0
    stats.cost_evaluations = cost_fn.evaluations
    best = incumbent if incumbent is not None else fallback
    bound = min(max(lower, best.length / w), best.length)
    if probe is not None:
        probe.finish(stats.states_expanded, 0, best.length, bound)
    return SearchResult(
        schedule=best, optimal=False, bound=w,
        stats=stats, algorithm=f"wastar(eps={epsilon},exhausted)",
        lower_bound=bound,
        timeline=probe.timeline() if probe is not None else (),
    )
