"""The approximate Aε* algorithm (paper §3.4, after Pearl & Kim).

Aε* keeps, next to OPEN, a FOCAL list holding the states whose cost is
within a factor ``(1 + ε)`` of the minimum cost in OPEN:

    ``FOCAL = { s' : f(s') ≤ (1 + ε) · min_{s ∈ OPEN} f(s) }``

and always expands from FOCAL, choosing by a *secondary* heuristic —
here the number of unscheduled nodes, so deeper states (closer to a
complete schedule) are preferred and goals are reached quickly.

Theorem 2 (ε-admissibility): when a goal is popped from FOCAL,
``f(goal) ≤ (1+ε)·f_min ≤ (1+ε)·f_opt`` because OPEN always contains a
state on an optimal path with ``f ≤ f_opt`` (admissibility of ``h``).
The returned schedule is therefore within ``(1 + ε)`` of optimal.

Implementation: three heaps sharing lazily-invalidated entries —

* ``all_by_f``   — every live state, ordered by ``f`` (tracks f_min);
* ``focal``      — the FOCAL subset, ordered by ``(unscheduled, f)``;
* ``non_focal``  — the rest, ordered by ``f`` (admission queue).

Because the paper's ``h`` is admissible but not consistent, ``f_min``
may temporarily *decrease*; FOCAL entries are therefore re-validated
against the current bound at pop time (stale ones are demoted back to
``non_focal``).
"""

from __future__ import annotations

import heapq
import math
import time

from repro.errors import SearchError
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import CostFunction, make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = ["focal_schedule"]


def focal_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    epsilon: float,
    *,
    pruning: PruningConfig | None = None,
    cost: str | CostFunction = "paper",
    budget: Budget | None = None,
    state_cls: type = PartialSchedule,
    incumbent: Schedule | None = None,
    probe: SearchProbe | None = None,
) -> SearchResult:
    """Find a schedule within ``(1 + epsilon)`` of optimal via Aε*.

    Parameters mirror :func:`repro.search.astar.astar_schedule`
    (including the ``incumbent`` warm start); ``epsilon = 0`` reduces
    to plain A* (with extra bookkeeping).

    Raises
    ------
    SearchError
        For negative ``epsilon``.
    """
    if epsilon < 0:
        raise SearchError(f"epsilon must be >= 0, got {epsilon}")
    if pruning is None:
        pruning = PruningConfig.all()
    if isinstance(cost, str):
        cost_fn = make_cost_function(cost, graph, system)
    else:
        cost_fn = cost
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)
    fallback: Schedule = fast_upper_bound_schedule(graph, system)
    if incumbent is not None and incumbent.length < fallback.length:
        fallback = incumbent
    # The *unrelaxed* upper bound stays valid for Aε*: states on an
    # optimal path have f ≤ f_opt ≤ U and therefore survive the cut, so
    # the termination argument (a goal within (1+ε)·f_min pops) is
    # untouched — and OPEN stays as small as exact A*'s.
    upper = fallback.length if pruning.upper_bound else math.inf

    t0 = time.perf_counter()
    v = graph.num_nodes
    root = state_cls.empty(graph, system)

    # seq -> (state, f); dead seqs are skipped lazily in all heaps.
    store: dict[int, tuple[PartialSchedule, float]] = {0: (root, 0.0)}
    dead: set[int] = set()
    all_by_f: list[tuple[float, int]] = [(0.0, 0)]
    focal: list[tuple[int, float, int]] = [(v, 0.0, 0)]  # (unscheduled, f, seq)
    non_focal: list[tuple[float, int]] = []
    in_focal: set[int] = {0}
    next_seq = 1
    seen = SignatureSet(verify=pruning.verify_signatures)
    if pruning.duplicate_detection:
        seen.add(root.dedup_key, lambda: root.signature)
    incumbent = None  # rebound: best complete schedule *generated here*

    def f_min() -> float:
        while all_by_f:
            f, s = all_by_f[0]
            if s in dead:
                heapq.heappop(all_by_f)
                continue
            return f
        return math.inf

    dup_on = pruning.duplicate_detection
    ub_on = pruning.upper_bound
    # Anytime lower bound: f_min over OPEN never exceeds f_opt
    # (Theorem 2's premise), so its running max survives budget aborts
    # as a certified floor.
    lower = 0.0

    while True:
        fmin = f_min()
        if fmin is math.inf or (not focal and not non_focal):
            break
        if fmin > lower:
            lower = fmin
        # Drift-aware FOCAL admission (repro.util.tolerance): a state
        # that ties (1+ε)·f_min up to rounding belongs in FOCAL.
        bound = (1.0 + epsilon) * fmin

        # Admit newly-qualifying states into FOCAL.
        while non_focal:
            f, s = non_focal[0]
            if s in dead:
                heapq.heappop(non_focal)
                continue
            if tol.leq(f, bound):
                heapq.heappop(non_focal)
                state, _ = store[s]
                heapq.heappush(focal, (v - state.num_scheduled, f, s))
                in_focal.add(s)
            else:
                break

        # Pop the FOCAL state with fewest unscheduled nodes, re-validating
        # against the current bound (f_min may have decreased).
        chosen: int | None = None
        while focal:
            _d, f, s = heapq.heappop(focal)
            if s in dead or s not in in_focal:
                continue
            in_focal.discard(s)
            if tol.gt(f, bound):
                heapq.heappush(non_focal, (f, s))
                continue
            chosen = s
            break
        if chosen is None:
            # FOCAL drained by demotions; loop to re-admit (f_min state
            # always qualifies, so progress is guaranteed).
            continue

        state, f = store.pop(chosen)
        dead.add(chosen)

        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(store) + len(seen)):
            best = incumbent if incumbent is not None else fallback
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            lb = min(lower, best.length)
            if probe is not None:
                probe.finish(stats.states_expanded, len(store),
                             best.length, lb)
            return SearchResult(
                schedule=best, optimal=False, bound=math.inf,
                stats=stats, algorithm=f"focal(eps={epsilon},budget)",
                lower_bound=lb,
                interrupted=budget.reason or "budget",
                timeline=probe.timeline() if probe is not None else (),
            )

        if state.is_complete():
            stats.states_expanded += 1
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            goal = state.to_schedule()
            if probe is not None:
                probe.finish(stats.states_expanded, len(store),
                             goal.length, min(lower, goal.length))
            return SearchResult(
                schedule=goal,
                optimal=(epsilon == 0.0),
                bound=1.0 + epsilon,
                stats=stats,
                algorithm=f"focal(eps={epsilon})",
                lower_bound=min(lower, goal.length),
                timeline=probe.timeline() if probe is not None else (),
            )

        stats.states_expanded += 1
        if probe is not None:
            probe.tick(
                stats.states_expanded, len(store),
                incumbent.length if incumbent is not None else math.inf,
                min(lower,
                    incumbent.length if incumbent is not None else math.inf),
            )
        for child in expander.children(state, seen if dup_on else None):
            ch = cost_fn.h(child)
            cf = child.makespan + ch
            if ub_on and tol.gt(cf, upper):
                stats.pruning.upper_bound_cuts += 1
                continue
            stats.states_generated += 1
            s = next_seq
            next_seq += 1
            store[s] = (child, cf)
            heapq.heappush(all_by_f, (cf, s))
            if tol.leq(cf, bound):
                heapq.heappush(focal, (v - child.num_scheduled, cf, s))
                in_focal.add(s)
            else:
                heapq.heappush(non_focal, (cf, s))
            if child.is_complete() and (
                incumbent is None or child.makespan < incumbent.length
            ):
                incumbent = child.to_schedule()
        live = len(store)
        if live > stats.max_open_size:
            stats.max_open_size = live

    # State space exhausted below the (1+ε)-loosened bound: the best
    # complete schedule seen is within the guarantee.
    stats.wall_seconds = time.perf_counter() - t0
    stats.cost_evaluations = cost_fn.evaluations
    best = incumbent if incumbent is not None else fallback
    lb = min(max(lower, best.length / (1.0 + epsilon)), best.length)
    if probe is not None:
        probe.finish(stats.states_expanded, 0, best.length, lb)
    return SearchResult(
        schedule=best, optimal=False, bound=1.0 + epsilon,
        stats=stats, algorithm=f"focal(eps={epsilon},exhausted)",
        lower_bound=lb,
        timeline=probe.timeline() if probe is not None else (),
    )
