"""The four state-space pruning techniques of §3.2.

Each rule is independently toggleable so the Table-1 middle column
("A* without pruning") and the per-rule ablation (E4) run on one engine:

* **Processor isomorphism** (Definition 2): when expanding a ready node,
  among structurally-isomorphic PEs that are still empty only the
  lowest-numbered representative is tried.  Sound because swapping two
  empty PEs with identical neighbourhoods (and speeds) is an
  automorphism of the processor graph that fixes every busy PE.
* **Node equivalence** (Definition 3): two ready nodes with identical
  parents, children, weight and identical communication costs to those
  parents/children lead to equal-length schedules whichever is placed
  first, so only the lowest-numbered ready member of each equivalence
  class generates states.
* **Priority ordering**: ready nodes are considered in decreasing
  ``b-level + t-level`` so the more promising sub-trees enter OPEN first
  (FIFO tie-breaking then expands them first), causing later
  re-generations of the same placements to die in duplicate detection.
* **Upper-bound cost**: states with ``f > U`` (the linear-time list
  schedule length, §3.2) can never improve on a schedule we can already
  construct, because ``g`` is monotone increasing and ``h`` admissible.
* **Duplicate detection**: two expansion orders reaching the *same*
  placement collide on the canonical signature and the second is
  discarded (the "visited before" rule of the Figure-3 walk-through).

Two extensions beyond the paper (both off by default, both
property-tested against exhaustive enumeration): **commutation**, a
partial-order reduction over the last placement, and **fixed task
order** (Sinnen; Akram et al. 2024), which collapses the node branching
factor to 1 whenever the ready set forms a fork/join chain admitting a
total order.  See :class:`PruningConfig` for the exact conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SearchError

__all__ = ["PruningConfig", "PruningStats"]


@dataclass(frozen=True)
class PruningConfig:
    """On/off switches for each §3.2 technique.

    ``duplicate_detection`` is listed with the pruning rules because the
    paper's no-pruning baseline still needs *some* CLOSED-list check to
    terminate on graphs with many transpositions; set it False only for
    the exhaustive-tree baseline.
    """

    processor_isomorphism: bool = True
    node_equivalence: bool = True
    priority_ordering: bool = True
    upper_bound: bool = True
    duplicate_detection: bool = True
    #: Extension beyond the paper (off by default): skip candidate
    #: placements that commute with the state's most recent placement —
    #: two simultaneously-ready nodes placed on *different* PEs produce
    #: the same partial schedule in either order, so only the canonical
    #: order is generated.  A partial-order reduction that avoids even
    #: *constructing* most transposition duplicates; optimality is
    #: preserved (property-tested against exhaustive enumeration).
    commutation: bool = False
    #: Extension beyond the paper (off by default): **fixed task order**
    #: (Sinnen's FTO, engineered by Akram et al. 2024).  When the ready
    #: set forms a fork/join chain — every ready node has at most one
    #: parent and at most one child, parented ready nodes share the one
    #: parent, childed ready nodes share the one child, and sorting by
    #: (data-ready time ascending, out-communication descending) leaves
    #: the out-communication non-increasing — only the chain's head is
    #: branched, collapsing the node branching factor to 1.  Applied
    #: only on homogeneous-speed, non-distance-scaled systems (the
    #: exchange argument swaps task positions across PEs).  Mutually
    #: exclusive with ``commutation``: each rule's soundness argument
    #: assumes the sibling orders the *other* rule prunes were explored,
    #: so composing them can lose optimal completions.
    fixed_task_order: bool = False
    #: Extension beyond the paper (off by default): **processor-symmetry
    #: normalization**.  On homogeneous-speed, non-distance-scaled
    #: systems the communication cost ignores the processor topology
    #: entirely, so *every* empty PE is interchangeable — not just the
    #: structurally-isomorphic ones Definition 2 groups — and each state
    #: needs only the lowest-numbered empty PE as a candidate.  At the
    #: root this pins the first task to PE 0 (the normalization
    #: :mod:`repro.schedule.preprocess` detects eligibility for).
    #: Self-gates off on heterogeneous or distance-scaled systems,
    #: where distinct empty PEs genuinely differ; composes freely with
    #: the other rules (the justifying PE permutation fixes every busy
    #: PE, the same shape as Definition 2's soundness argument).
    root_symmetry: bool = False
    #: Diagnostic switch (off by default): re-verify every duplicate-
    #: detection hash hit against the exact ``(mask, pes, starts)``
    #: signature, admitting (never pruning) true Zobrist collisions.
    #: Restores the old per-probe O(v) cost — used by the equivalence
    #: property tests and for paranoid runs; see
    #: :class:`repro.search.dedup.SignatureSet`.
    verify_signatures: bool = False

    def __post_init__(self) -> None:
        if self.commutation and self.fixed_task_order:
            raise SearchError(
                "commutation and fixed_task_order are mutually exclusive: "
                "each partial-order reduction assumes the expansion orders "
                "the other prunes were explored"
            )

    @classmethod
    def all(cls) -> "PruningConfig":
        """Every paper technique enabled (the paper's "A*" column).

        The commutation extension stays off so this config reproduces
        the paper's algorithm exactly; use :meth:`extended` to add it.
        """
        return cls()

    @classmethod
    def extended(cls) -> "PruningConfig":
        """Every paper technique plus the commutation extension."""
        return cls(commutation=True)

    @classmethod
    def with_fixed_order(cls) -> "PruningConfig":
        """Every paper technique plus the fixed-task-order extension."""
        return cls(fixed_task_order=True)

    @classmethod
    def with_symmetry(cls) -> "PruningConfig":
        """Every paper technique plus processor-symmetry normalization."""
        return cls(root_symmetry=True)

    @classmethod
    def none(cls) -> "PruningConfig":
        """No §3.2 techniques (the paper's "A* w/o pruning" column).

        Duplicate detection stays on — without it the search tree, not
        graph, is explored and even 12-node instances become infeasible;
        the paper's baseline likewise retains the CLOSED list.
        """
        return cls(
            processor_isomorphism=False,
            node_equivalence=False,
            priority_ordering=False,
            upper_bound=False,
            duplicate_detection=True,
        )

    @classmethod
    def only(cls, **enabled: bool) -> "PruningConfig":
        """Start from :meth:`none` and switch on the given rules.

        >>> PruningConfig.only(upper_bound=True).upper_bound
        True
        """
        base = cls.none()
        return cls(
            processor_isomorphism=enabled.get(
                "processor_isomorphism", base.processor_isomorphism
            ),
            node_equivalence=enabled.get("node_equivalence", base.node_equivalence),
            priority_ordering=enabled.get("priority_ordering", base.priority_ordering),
            upper_bound=enabled.get("upper_bound", base.upper_bound),
            duplicate_detection=enabled.get(
                "duplicate_detection", base.duplicate_detection
            ),
            commutation=enabled.get("commutation", base.commutation),
            fixed_task_order=enabled.get(
                "fixed_task_order", base.fixed_task_order
            ),
            root_symmetry=enabled.get("root_symmetry", base.root_symmetry),
            verify_signatures=enabled.get(
                "verify_signatures", base.verify_signatures
            ),
        )

    def describe(self) -> str:
        """Short human-readable switch summary."""
        flags = [
            ("iso", self.processor_isomorphism),
            ("equiv", self.node_equivalence),
            ("prio", self.priority_ordering),
            ("ub", self.upper_bound),
            ("dup", self.duplicate_detection),
            ("comm", self.commutation),
            ("fto", self.fixed_task_order),
            ("sym", self.root_symmetry),
            ("vsig", self.verify_signatures),
        ]
        return "+".join(name for name, on in flags if on) or "none"


@dataclass
class PruningStats:
    """Hit counters: how many candidate states each rule discarded."""

    isomorphism_skips: int = 0
    equivalence_skips: int = 0
    upper_bound_cuts: int = 0
    duplicate_hits: int = 0
    commutation_skips: int = 0
    fixed_order_skips: int = 0
    symmetry_skips: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total candidate states discarded by all rules."""
        return (
            self.isomorphism_skips
            + self.equivalence_skips
            + self.upper_bound_cuts
            + self.duplicate_hits
            + self.commutation_skips
            + self.fixed_order_skips
            + self.symmetry_skips
        )

    def as_dict(self) -> dict[str, int]:
        """Flat dict for reports."""
        return {
            "isomorphism_skips": self.isomorphism_skips,
            "equivalence_skips": self.equivalence_skips,
            "upper_bound_cuts": self.upper_bound_cuts,
            "duplicate_hits": self.duplicate_hits,
            "commutation_skips": self.commutation_skips,
            "fixed_order_skips": self.fixed_order_skips,
            "symmetry_skips": self.symmetry_skips,
            **self.extra,
        }

    _FIELDS = (
        "isomorphism_skips",
        "equivalence_skips",
        "upper_bound_cuts",
        "duplicate_hits",
        "commutation_skips",
        "fixed_order_skips",
        "symmetry_skips",
    )

    def merge(self, other: "PruningStats | dict") -> None:
        """Fold another run's hit counters into this one, in place.

        Accepts either a :class:`PruningStats` or its :meth:`as_dict`
        wire form (HDA* workers ship the dict over the results queue);
        unknown dict keys land in :attr:`extra` so backend-specific
        counters survive the reduce.
        """
        if isinstance(other, dict):
            for key, value in other.items():
                if key in self._FIELDS:
                    setattr(self, key, getattr(self, key) + value)
                else:
                    self.extra[key] = self.extra.get(key, 0) + value
            return
        for key in self._FIELDS:
            setattr(self, key, getattr(self, key) + getattr(other, key))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
