"""The serial A* scheduling algorithm (paper §3.1-3.2).

Algorithm (paper, "THE SERIAL A* SCHEDULING ALGORITHM"):

1. Put the initial (empty) state in OPEN with ``f(Φ) = 0``.
2. Remove from OPEN the state with the smallest ``f``; move it to CLOSED.
3. If it is a goal state (complete schedule) — stop: the schedule is
   optimal (Theorem 1: ``h`` admissible).
4. Otherwise expand it by exhaustively matching ready nodes to
   processors (filtered by the §3.2 pruning rules), compute
   ``f = g + h`` for each child, insert into OPEN, go to 2.

Implementation notes:

* OPEN is a binary heap ordered by ``(f, h, seq)`` — the ``h``
  tie-break prefers states closer to a goal, ``seq`` makes equal
  entries FIFO and the whole search deterministic.
* OPEN/CLOSED duplicate detection share one signature set: a state's
  signature fully determines ``g`` and ``h``, so a duplicate can never
  need re-opening — the first copy always has the same ``f``.
* States whose ``f`` exceeds the upper bound ``U`` (linear-time list
  schedule, §3.2) are discarded at generation time.
* On budget exhaustion the best complete schedule seen so far (or the
  ``U`` heuristic schedule) is returned with ``optimal=False``.
"""

from __future__ import annotations

import heapq
import math
import time

from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import CostFunction, make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.diagnostics import SearchTrace
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = ["astar_schedule"]


def astar_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    pruning: PruningConfig | None = None,
    cost: str | CostFunction = "paper",
    budget: Budget | None = None,
    trace: SearchTrace | None = None,
    state_cls: type = PartialSchedule,
    incumbent: Schedule | None = None,
    probe: SearchProbe | None = None,
) -> SearchResult:
    """Find an optimal schedule of ``graph`` on ``system`` via A*.

    Parameters
    ----------
    graph, system:
        The problem instance.
    pruning:
        §3.2 technique switches; defaults to all enabled.
    cost:
        Cost-function name (``"paper"``, ``"improved"``, ``"zero"``) or a
        pre-built :class:`CostFunction`.
    budget:
        Optional resource limits; on exhaustion the best schedule seen so
        far is returned with ``optimal=False``.
    trace:
        Optional :class:`SearchTrace` recording the search tree (used by
        the worked-example scripts).
    state_cls:
        Search-state implementation (default: the delta-encoded
        :class:`PartialSchedule`; the equivalence tests pass the
        tuple-based reference class).
    incumbent:
        Optional known-feasible schedule (e.g. from an earlier portfolio
        stage); when shorter than the internal list-schedule bound it
        seeds the upper-bound cut ``U`` and the budget fallback.
    probe:
        Optional :class:`SearchProbe` sampling ``(wall_time,
        expansions, open_size, incumbent, lower_bound)`` every N
        expansions onto ``result.timeline``.

    Returns
    -------
    SearchResult
        ``result.optimal`` is True iff the search ran to completion, in
        which case ``result.schedule`` has provably minimal length.
    """
    if pruning is None:
        pruning = PruningConfig.all()
    if isinstance(cost, str):
        cost_fn = make_cost_function(cost, graph, system)
    else:
        cost_fn = cost
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)

    # Upper-bound pruning cost U (§3.2) and fallback schedule.
    fallback: Schedule = fast_upper_bound_schedule(graph, system)
    if incumbent is not None and incumbent.length < fallback.length:
        fallback = incumbent
    upper = fallback.length if pruning.upper_bound else math.inf

    t0 = time.perf_counter()
    root = state_cls.empty(graph, system)
    # OPEN heap entries: (f, h, seq, state).
    open_heap: list[tuple[float, float, int, PartialSchedule]] = [
        (0.0, 0.0, 0, root)
    ]
    seq = 1
    seen = SignatureSet(verify=pruning.verify_signatures)
    if pruning.duplicate_detection:
        seen.add(root.dedup_key, lambda: root.signature)
    incumbent: Schedule | None = None  # best complete schedule *generated*
    # Anytime lower bound: every time a state is popped, min-f over OPEN
    # equals its f, and (g exact per signature, h admissible) some state
    # on an optimal path sits in OPEN with f <= f* — so each popped f is
    # a certified floor on the optimum, and their running max survives
    # budget aborts as the tightest proven lower bound.
    lower = 0.0

    dup_on = pruning.duplicate_detection
    ub_on = pruning.upper_bound

    while open_heap:
        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(open_heap) + len(seen)):
            best = incumbent if incumbent is not None else fallback
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            lower = max(lower, open_heap[0][0])
            bound = min(lower, best.length)
            if probe is not None:
                probe.finish(stats.states_expanded, len(open_heap),
                             best.length, bound)
            return SearchResult(
                schedule=best, optimal=False, bound=math.inf,
                stats=stats, algorithm="astar(budget)",
                lower_bound=bound,
                interrupted=budget.reason or "budget",
                timeline=probe.timeline() if probe is not None else (),
            )
        f, h, _s, state = heapq.heappop(open_heap)
        if f > lower:
            lower = f

        if state.is_complete():
            # Goal popped with minimal f: optimal (Theorem 1).
            stats.states_expanded += 1
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            if trace is not None:
                trace.record_goal(state, f)
            goal = state.to_schedule()
            if probe is not None:
                probe.finish(stats.states_expanded, len(open_heap),
                             goal.length, goal.length)
            return SearchResult(
                schedule=goal, optimal=True, bound=1.0,
                stats=stats, algorithm="astar", lower_bound=goal.length,
                timeline=probe.timeline() if probe is not None else (),
            )

        stats.states_expanded += 1
        if probe is not None:
            probe.tick(
                stats.states_expanded, len(open_heap),
                incumbent.length if incumbent is not None else math.inf,
                lower,
            )
        if trace is not None:
            trace.record_expansion(state, f, state.makespan, h)

        for child in expander.children(state, seen if dup_on else None):
            ch = cost_fn.h(child)
            cf = child.makespan + ch
            if ub_on and tol.gt(cf, upper):
                stats.pruning.upper_bound_cuts += 1
                continue
            stats.states_generated += 1
            if child.is_complete():
                # Track as incumbent for budget fallbacks and tighten U:
                # a complete state's f equals its length.
                if incumbent is None or child.makespan < incumbent.length:
                    incumbent = child.to_schedule()
                    if ub_on and incumbent.length < upper:
                        upper = incumbent.length
            heapq.heappush(open_heap, (cf, ch, seq, child))
            seq += 1
            if trace is not None:
                trace.record_generation(state, child, cf, child.makespan, ch)
        if len(open_heap) > stats.max_open_size:
            stats.max_open_size = len(open_heap)

    # OPEN exhausted without popping a goal.  With upper-bound pruning
    # enabled this can only happen when every optimal completion ties the
    # heuristic bound exactly and was cut by a float-equal boundary —
    # the drift-aware `tol.gt` cut prevents that; reaching here therefore means the
    # incumbent (or fallback = the list schedule) is optimal.
    stats.wall_seconds = time.perf_counter() - t0
    stats.cost_evaluations = cost_fn.evaluations
    best = incumbent if incumbent is not None else fallback
    if probe is not None:
        probe.finish(stats.states_expanded, 0, best.length, best.length)
    return SearchResult(
        schedule=best, optimal=True, bound=1.0,
        stats=stats, algorithm="astar(exhausted)", lower_bound=best.length,
        timeline=probe.timeline() if probe is not None else (),
    )
