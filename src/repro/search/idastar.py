"""IDA*: iterative-deepening A* for memory-bounded optimal scheduling.

The paper criticises prior branch-and-bound schedulers for their "huge
memory requirement to store the search states"; its own A* stores every
generated state too.  IDA* (Korf 1985) is the classic answer: repeated
depth-first probes with an f-cost threshold equal to the smallest f
value that exceeded the previous threshold.  Memory is O(depth) — here
O(v) — while optimality is preserved for the same admissible cost
functions.

Trade-off: without a CLOSED list, transposition duplicates are re-explored
on every probe, so IDA* re-expands work A* would skip.  An optional
transposition table (bounded, per-probe) recovers most of that at a
memory cost the caller controls — exposing exactly the time/memory dial
the paper's discussion is about.

The §3.2 pruning rules that act at expansion time (processor
isomorphism, node equivalence, priority ordering, upper bound) apply
unchanged; duplicate detection maps onto the transposition table.
"""

from __future__ import annotations

import math
import time

from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import CostFunction, make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = ["idastar_schedule"]


def idastar_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    pruning: PruningConfig | None = None,
    cost: str | CostFunction = "paper",
    budget: Budget | None = None,
    transposition_limit: int = 100_000,
    state_cls: type = PartialSchedule,
    incumbent: Schedule | None = None,
    probe: SearchProbe | None = None,
) -> SearchResult:
    """Find an optimal schedule via iterative-deepening A*.

    Parameters mirror :func:`repro.search.astar.astar_schedule`
    (including the ``incumbent`` warm start, which seeds the upper
    -bound cut and the budget fallback); ``transposition_limit``
    bounds the per-probe duplicate table (``0`` disables it entirely
    for true O(v) memory).

    Returns the same :class:`SearchResult` contract: ``optimal=True``
    iff the search ran to completion.
    """
    if pruning is None:
        pruning = PruningConfig.all()
    if isinstance(cost, str):
        cost_fn = make_cost_function(cost, graph, system)
    else:
        cost_fn = cost
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)
    fallback: Schedule = fast_upper_bound_schedule(graph, system)
    if incumbent is not None and incumbent.length < fallback.length:
        fallback = incumbent
    upper = fallback.length if pruning.upper_bound else math.inf

    t0 = time.perf_counter()
    root = state_cls.empty(graph, system)
    threshold = root.makespan + cost_fn.h(root)
    incumbent = None  # rebound: best complete schedule *found here*
    use_table = transposition_limit > 0 and pruning.duplicate_detection

    while True:
        next_threshold = math.inf
        # Per-probe transposition table of duplicate keys (seen at or
        # below the current threshold).  Rebuilt each probe because the
        # admission condition depends on the threshold.
        table = SignatureSet(verify=pruning.verify_signatures)
        verify = pruning.verify_signatures
        stack: list[tuple[float, PartialSchedule]] = [(threshold, root)]
        goal_found: Schedule | None = None

        while stack:
            if budget.exhausted(stats.states_expanded, stats.states_generated,
                                len(stack) + len(table)):
                best = incumbent if incumbent is not None else fallback
                stats.wall_seconds = time.perf_counter() - t0
                stats.cost_evaluations = cost_fn.evaluations
                # Prior probes exhausted every state with f below the
                # current threshold (and the first threshold is the
                # admissible h(root)), so the threshold itself is a
                # proven floor on the optimum.
                bound = min(threshold, best.length)
                if probe is not None:
                    probe.finish(stats.states_expanded, len(stack),
                                 best.length, bound)
                return SearchResult(
                    schedule=best, optimal=False, bound=math.inf,
                    stats=stats, algorithm="idastar(budget)",
                    lower_bound=bound,
                    interrupted=budget.reason or "budget",
                    timeline=probe.timeline() if probe is not None else (),
                )
            f, state = stack.pop()
            if state.is_complete():
                stats.states_expanded += 1
                if goal_found is None or state.makespan < goal_found.length:
                    goal_found = state.to_schedule()
                    # Also keep it as incumbent for budget exits mid-probe.
                    if incumbent is None or goal_found.length < incumbent.length:
                        incumbent = goal_found
                continue
            stats.states_expanded += 1
            if probe is not None:
                # Prior probes exhausted everything below the current
                # threshold, so the threshold is the running proven floor.
                probe.tick(
                    stats.states_expanded, len(stack),
                    incumbent.length if incumbent is not None else math.inf,
                    min(threshold,
                        incumbent.length if incumbent is not None
                        else math.inf),
                )
            children: list[tuple[float, PartialSchedule]] = []
            for child in expander.children(state):
                cf = child.makespan + cost_fn.h(child)
                if tol.gt(cf, upper):
                    stats.pruning.upper_bound_cuts += 1
                    continue
                if tol.gt(cf, threshold):
                    # Beyond this probe: remember the tightest overshoot.
                    if cf < next_threshold:
                        next_threshold = cf
                    continue
                if use_table:
                    sig = child.dedup_key
                    exact = (lambda c=child: c.signature) if verify else None
                    if table.seen(sig, exact):
                        stats.pruning.duplicate_hits += 1
                        continue
                    if len(table) < transposition_limit:
                        table.add(sig, exact)
                stats.states_generated += 1
                children.append((cf, child))
            children.sort(key=lambda t: -t[0])  # best child on top
            stack.extend(children)
            if len(stack) > stats.max_open_size:
                stats.max_open_size = len(stack)

        if goal_found is not None:
            # The first threshold at which a goal appears is the optimal
            # cost: every state with f below it was exhausted.
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            if probe is not None:
                probe.finish(stats.states_expanded, 0,
                             goal_found.length, goal_found.length)
            return SearchResult(
                schedule=goal_found, optimal=True, bound=1.0,
                stats=stats, algorithm="idastar",
                lower_bound=goal_found.length,
                timeline=probe.timeline() if probe is not None else (),
            )
        if next_threshold is math.inf:
            # Space exhausted below the upper bound: the fallback (or a
            # generated incumbent) is optimal — same reasoning as A*'s
            # OPEN-exhaustion case.
            stats.wall_seconds = time.perf_counter() - t0
            stats.cost_evaluations = cost_fn.evaluations
            best = incumbent if incumbent is not None else fallback
            if probe is not None:
                probe.finish(stats.states_expanded, 0,
                             best.length, best.length)
            return SearchResult(
                schedule=best, optimal=True, bound=1.0,
                stats=stats, algorithm="idastar(exhausted)",
                lower_bound=best.length,
                timeline=probe.timeline() if probe is not None else (),
            )
        threshold = next_threshold
