"""Duplicate-detection tables for the search engines.

The engines' CLOSED check used to be a Python ``set`` of exact
``(mask, pes, starts)`` tuple signatures — O(v) to build and O(v) to
hash on *every* probe.  The delta-encoded states instead carry a
64-bit incrementally-maintained Zobrist hash, and their duplicate key is
the pair ``(scheduled-set mask, zobrist)``:

* the mask component verifies the scheduled node *set* exactly, so two
  states over different node sets can never be confused whatever the
  hash does;
* the Zobrist component fingerprints the ``(node, pe, start)``
  placements, so two states over the same node set collide only with
  probability ~2^-64 per pair (see DESIGN.md for the hashing scheme).

:class:`SignatureSet` wraps the plain-set fast path and adds the
verified-on-collision fallback: in ``verify`` mode every probe is
re-checked against the exact signature, hash collisions are counted in
:attr:`collisions`, and — crucially — a collision does *not* prune the
state, so verified runs are exact whatever the hash quality.  The
equivalence property tests run the engines in this mode to prove the
fast path never diverges on the tested instances.

The table is key-agnostic: the reference tuple-based states use their
exact signature as the key and the same code path works unchanged.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterator

__all__ = ["SignatureSet"]


class SignatureSet:
    """A CLOSED/visited set keyed by state duplicate keys.

    Parameters
    ----------
    verify:
        When True, keep the exact signature of every admitted state and
        re-verify each probe that hits a known key; colliding-but-
        different states are admitted (not pruned) and counted in
        :attr:`collisions`.  Costs the old O(v) per probe — meant for
        tests, diagnostics, and paranoid runs, not the hot path.
    """

    __slots__ = ("_seen", "_exact", "collisions", "verify")

    def __init__(self, verify: bool = False) -> None:
        self._seen: set[Hashable] = set()
        # key -> set of exact signatures admitted under that key.
        self._exact: dict[Hashable, set] | None = {} if verify else None
        self.collisions = 0
        self.verify = verify

    # -- core protocol -------------------------------------------------------

    def check_add(
        self, key: Hashable, exact_fn: Callable[[], Hashable] | None = None
    ) -> bool:
        """Probe-and-admit in one step.

        Returns True when ``key`` identifies an already-seen placement
        (the caller should discard the candidate); otherwise records it
        and returns False.  ``exact_fn`` lazily produces the exact
        signature and is only invoked in ``verify`` mode.
        """
        seen = self._seen
        if key not in seen:
            seen.add(key)
            if self._exact is not None and exact_fn is not None:
                self._exact[key] = {exact_fn()}
            return False
        if self._exact is not None and exact_fn is not None:
            bucket = self._exact.get(key)
            if bucket is None:
                # Key admitted without an exact signature (e.g. via
                # add()); nothing to verify against.
                return True
            sig = exact_fn()
            if sig in bucket:
                return True
            # True hash collision: different placements, same key.
            # Admit the state — correctness over speed.
            self.collisions += 1
            bucket.add(sig)
            return False
        return True

    def seen(self, key: Hashable, exact_fn: Callable[[], Hashable] | None = None) -> bool:
        """Probe without admitting.

        Like :meth:`check_add` but never records anything: returns True
        when ``key`` identifies an already-seen placement.  In ``verify``
        mode a key hit is re-checked against the exact signature and a
        mismatch counts as a collision and reports unseen.  Callers that
        combine this with a later :meth:`add` (bounded tables, imported
        states) must pass the same ``exact_fn`` to both.
        """
        if key not in self._seen:
            return False
        if self._exact is not None and exact_fn is not None:
            bucket = self._exact.get(key)
            if bucket is None:
                return True
            if exact_fn() in bucket:
                return True
            self.collisions += 1
            return False
        return True

    def add(self, key: Hashable, exact_fn: Callable[[], Hashable] | None = None) -> None:
        """Record ``key`` without probing (roots, imported states)."""
        self._seen.add(key)
        if self._exact is not None and exact_fn is not None:
            self._exact.setdefault(key, set()).add(exact_fn())

    def keys(self) -> Iterator[Hashable]:
        """Iterate the admitted keys (the HDA* backend ships the seed
        phase's CLOSED keys to every worker through this)."""
        return iter(self._seen)

    def exact_entries(self) -> Iterator[tuple[Hashable, tuple]]:
        """``(key, exact signatures)`` pairs — verify mode only.

        Lets another table (an HDA* worker's) be pre-loaded *with* the
        exact signatures, so its collision re-verification keeps
        working for the imported keys; keys admitted bare would make
        every later collision read as a duplicate.
        """
        if self._exact is None:
            return
        for key, sigs in self._exact.items():
            yield key, tuple(sigs)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def copy(self) -> "SignatureSet":
        """Independent copy (per-PPE CLOSED lists fork from the seed set)."""
        dup = SignatureSet(verify=self.verify)
        dup._seen = set(self._seen)
        if self._exact is not None:
            dup._exact = {k: set(v) for k, v in self._exact.items()}
        dup.collisions = self.collisions
        return dup

    def __repr__(self) -> str:
        mode = "verify" if self.verify else "fast"
        return f"SignatureSet({len(self._seen)} keys, {mode})"
