"""Cost functions guiding the state-space search.

The paper's function (§3.1):

* ``g(s) = max_i FT(n_i)`` — the length of the partial schedule.
* ``h(s) = max_{n_j ∈ succ(n_max)} sl(n_j)`` — the largest *static
  level* among the successors of the node ``n_max`` that attains the
  maximum finish time; 0 when ``n_max`` has no successors (and for the
  empty state, where ``f(Φ) = 0``).

Theorem 1 (admissibility): every successor ``n_j`` of ``n_max`` starts
no earlier than ``FT(n_max) = g(s)`` because its parent must complete
first, and the longest node-weight-only path from ``n_j`` to an exit
must then execute, so the final makespan is at least
``g(s) + sl(n_j)`` for each such ``n_j``.  Hence ``h ≤ h*``.

When several scheduled nodes tie at the maximum finish time we take the
max over all of them — each tied node yields an admissible bound, so
their maximum is admissible and at least as tight.

For heterogeneous systems the static levels are computed with the
*fastest* processor speed so that the bound stays admissible.

Alternatives provided for the cost-function ablation (the paper's core
argument is that a *cheap* h beats an expensive one in wall-clock —
E1/E4 quantify this):

* :class:`ZeroCost` — ``h = 0``; A* degenerates toward uniform-cost /
  exhaustive enumeration (§3.1: "the search ... then degenerates to an
  exhaustive enumeration of states").
* :class:`ImprovedCost` — a strictly tighter admissible bound that
  scans *all* scheduled nodes with unscheduled successors (O(v + e) per
  evaluation instead of O(v)).
* :class:`LoadBoundCost` — the load-balance lower bound dominant in the
  duplicate-free state-space literature (Orr & Sinnen 2019): remaining
  work cannot finish before the machine capacity beyond each PE's
  committed ready time absorbs it.  O(P log P) per evaluation off the
  state's delta-maintained aggregates — no materialization.
* :class:`CombinedCost` — ``max(paper, load)``: the critical-path-style
  paper bound and the capacity bound fail on complementary instances
  (long chains vs. wide layers), so their maximum dominates both at the
  cost of one extra O(P log P) term (Akram et al. 2024 make the same
  composition their default).
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.graph.analysis import compute_levels
from repro.graph.taskgraph import TaskGraph
from repro.schedule.partial import PartialSchedule
from repro.system.processors import ProcessorSystem

__all__ = [
    "CostFunction",
    "PaperCost",
    "ZeroCost",
    "ImprovedCost",
    "LoadBoundCost",
    "CombinedCost",
    "COST_FUNCTIONS",
    "make_cost_function",
]


class CostFunction:
    """Base class: per-instance precomputation plus a fast ``h``.

    Subclasses must set :attr:`name` and implement :meth:`h`.
    ``f(s) = s.makespan + h(s)`` is assembled by the search engines.
    """

    name = "abstract"

    def __init__(self, graph: TaskGraph, system: ProcessorSystem) -> None:
        self.graph = graph
        self.system = system
        self.evaluations = 0  # instrumentation for Table-1 style reports

    def h(self, ps: PartialSchedule) -> float:
        """Admissible estimate of the remaining schedule length."""
        raise NotImplementedError


class PaperCost(CostFunction):
    """The paper's h: max static level among successors of ``n_max``."""

    name = "paper"

    def __init__(self, graph: TaskGraph, system: ProcessorSystem) -> None:
        super().__init__(graph, system)
        fastest = max(system.speeds)
        levels = compute_levels(graph)
        self._sl = tuple(s / fastest for s in levels.static_level)
        self._succs = tuple(graph.succs(n) for n in range(graph.num_nodes))

    def h(self, ps: PartialSchedule) -> float:
        self.evaluations += 1
        if ps.makespan == 0.0:  # empty state: f(Φ) = 0
            return 0.0
        sl = self._sl
        succs = self._succs
        best = 0.0
        # All nodes attaining the max finish time contribute (tie
        # handling).  The state maintains the argmax-finish set
        # incrementally, so this is O(|ties| · succ) rather than an O(v)
        # scan of the finish array per evaluation.
        for n in ps.max_finish_nodes:
            for j in succs[n]:
                if sl[j] > best:
                    best = sl[j]
        return best


class ZeroCost(CostFunction):
    """``h = 0``: the trivial admissible bound (exhaustive-search ablation)."""

    name = "zero"

    def h(self, ps: PartialSchedule) -> float:
        self.evaluations += 1
        return 0.0


class ImprovedCost(CostFunction):
    """A tighter admissible bound scanning every frontier edge.

    ``h = max(paper-h, max over unscheduled j of EST_lb(j) + sl(j) − g)``
    where ``EST_lb(j)`` is the largest finish time among j's *scheduled*
    parents (0 when none are scheduled).  Any completion must run j no
    earlier than each scheduled parent's finish, then execute j's longest
    static path, so each term lower-bounds the final makespan.

    Strictly dominates :class:`PaperCost` (for ``j ∈ succ(n_max)``,
    ``EST_lb(j) ≥ g``), at ~(v+e)/v times the evaluation cost — the
    trade-off the paper's Table 1 discussion is about.
    """

    name = "improved"

    def __init__(self, graph: TaskGraph, system: ProcessorSystem) -> None:
        super().__init__(graph, system)
        fastest = max(system.speeds)
        levels = compute_levels(graph)
        self._sl = tuple(s / fastest for s in levels.static_level)

    def h(self, ps: PartialSchedule) -> float:
        self.evaluations += 1
        g = ps.makespan
        mask = ps.mask
        # O(v + e) by design: the full finish array is required, so this
        # cost function forces lazy delta states to materialize — the
        # trade-off the paper's Table 1 discussion is about.
        finishes = ps.finishes
        sl = self._sl
        graph = self.graph
        offsets = graph.pred_offsets
        preds = graph.pred_flat
        pmasks = graph.pred_masks
        best = 0.0
        for j in range(len(finishes)):
            if (mask >> j) & 1:
                continue
            pm = pmasks[j]
            scheduled = pm & mask
            if not scheduled:
                # No scheduled parent: EST_lb(j) = 0, no edge scan needed.
                bound = sl[j] - g
                if bound > best:
                    best = bound
                continue
            est = 0.0
            if scheduled == pm:
                # Every parent scheduled: the per-parent membership test
                # is vacuous, so the inner loop is pure max-reduction.
                for i in range(offsets[j], offsets[j + 1]):
                    f = finishes[preds[i]]
                    if f > est:
                        est = f
            else:
                for i in range(offsets[j], offsets[j + 1]):
                    p = preds[i]
                    if (mask >> p) & 1 and finishes[p] > est:
                        est = finishes[p]
            bound = est + sl[j] - g
            if bound > best:
                best = bound
        return best


class LoadBoundCost(CostFunction):
    """The load-balance lower bound, adjusted for per-PE ready times.

    In any completion with makespan ``M``, a task newly placed on PE
    ``p`` starts no earlier than the PE's committed ready time ``RT_p``
    (the append-only EST rule), so PE ``p`` can absorb at most
    ``speed_p · max(0, M − RT_p)`` of the remaining node weight.  The
    bound is the smallest ``M`` whose total capacity

        ``Σ_p speed_p · max(0, M − RT_p)  ≥  W_remaining``

    covers the remaining weight; ``h = max(0, M − g)``.  When every PE
    ends busy past the frontier this closes to the classic
    ``(W_remaining + committed idle) / Σ speeds`` form from Orr &
    Sinnen's duplicate-free state-space work — the ready-time-adjusted
    solve is never looser.

    Communication delays are ignored entirely (pure machine capacity),
    which is exactly why this bound and the critical-path-style
    :class:`PaperCost` fail on complementary instances.  Evaluation is
    O(P log P) off the state's delta-maintained ``remaining_weight`` /
    ``ready_time`` aggregates — no array materialization ever.
    """

    name = "load"

    def __init__(self, graph: TaskGraph, system: ProcessorSystem) -> None:
        super().__init__(graph, system)
        self._speeds = system.speeds

    def h(self, ps: PartialSchedule) -> float:
        self.evaluations += 1
        w_rem = ps.remaining_weight
        if w_rem <= 0.0:
            return 0.0
        # Sweep the ready times in ascending order, opening each PE's
        # capacity as the candidate makespan M passes its ready time.
        # Within the segment [r_k, r_{k+1}) the capacity is linear, so
        # M = (W_rem + Σ_{i≤k} s_i·r_i) / Σ_{i≤k} s_i; the first
        # candidate that lands inside its own segment is the solution
        # (if segment k undershoots, the k+1 candidate provably lands
        # past r_{k+1}).
        items = sorted(zip(ps.ready_time, self._speeds))
        speed_sum = 0.0
        weighted_rt = 0.0
        last = len(items) - 1
        m = 0.0
        for k, (rt, speed) in enumerate(items):
            speed_sum += speed
            weighted_rt += speed * rt
            m = (w_rem + weighted_rt) / speed_sum
            if k == last or m <= items[k + 1][0]:
                break
        g = ps.makespan
        return m - g if m > g else 0.0


class CombinedCost(CostFunction):
    """``max(paper, load)`` — the composite exact-search default.

    The maximum of two admissible bounds is admissible, dominates each
    component state-for-state, and costs one :class:`PaperCost`
    evaluation plus one O(P log P) capacity solve.  The paper bound wins
    on communication-heavy chains, the load bound on wide layers of
    independent work — composing them is what cuts exact-search
    expansions across the whole §4.1 sweep (see
    ``benchmarks/bench_bounds.py``).
    """

    name = "combined"

    def __init__(self, graph: TaskGraph, system: ProcessorSystem) -> None:
        super().__init__(graph, system)
        self._paper = PaperCost(graph, system)
        self._load = LoadBoundCost(graph, system)

    def h(self, ps: PartialSchedule) -> float:
        self.evaluations += 1
        hp = self._paper.h(ps)
        hl = self._load.h(ps)
        return hp if hp >= hl else hl


#: Registry of cost-function constructors by name.
COST_FUNCTIONS: dict[str, type[CostFunction]] = {
    "paper": PaperCost,
    "zero": ZeroCost,
    "improved": ImprovedCost,
    "load": LoadBoundCost,
    "combined": CombinedCost,
}


def make_cost_function(
    name: str, graph: TaskGraph, system: ProcessorSystem
) -> CostFunction:
    """Instantiate a registered cost function.

    Raises
    ------
    SearchError
        For unknown names.
    """
    try:
        cls = COST_FUNCTIONS[name]
    except KeyError:
        raise SearchError(
            f"unknown cost function {name!r}; choose from {sorted(COST_FUNCTIONS)}"
        ) from None
    return cls(graph, system)
