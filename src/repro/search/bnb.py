"""Depth-first branch-and-bound on the scheduling state space.

The memory-light alternative to A*: explores children best-``f``-first
in depth-first order, keeps the best complete schedule found as the
incumbent, and prunes any state whose ``f`` cannot beat it.  With the
admissible cost functions of :mod:`repro.search.costs` the final
incumbent is optimal.

This engine plays two roles in the reproduction:

* a self-check: A* and B&B must agree on the optimal length everywhere
  (integration tests assert this);
* the structural skeleton shared with the Chen & Yu baseline
  (:mod:`repro.baselines.chen_yu`), which differs only in its far more
  expensive underestimate.

Depth-first order finds complete schedules early, so the incumbent
tightens quickly — the classic B&B trade: more expansions than A*, but
O(depth) open memory (plus the optional visited set).
"""

from __future__ import annotations

import math
import time

from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import CostFunction, make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = ["bnb_schedule"]


def bnb_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    pruning: PruningConfig | None = None,
    cost: str | CostFunction = "paper",
    budget: Budget | None = None,
    use_visited: bool = True,
    state_cls: type = PartialSchedule,
    incumbent: Schedule | None = None,
    probe: SearchProbe | None = None,
) -> SearchResult:
    """Find an optimal schedule via depth-first branch-and-bound.

    Parameters mirror :func:`repro.search.astar.astar_schedule`;
    ``use_visited=False`` trades time for O(depth) memory by disabling
    the visited-placement set (the search then re-explores transposition
    duplicates but remains correct).  ``incumbent`` optionally seeds the
    bound with a known-feasible schedule (portfolio stages pass their
    best-so-far), tightening the cut from the first expansion.
    """
    if pruning is None:
        pruning = PruningConfig.all()
    if isinstance(cost, str):
        cost_fn = make_cost_function(cost, graph, system)
    else:
        cost_fn = cost
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)

    best_sched: Schedule = fast_upper_bound_schedule(graph, system)
    if incumbent is not None and incumbent.length < best_sched.length:
        best_sched = incumbent
    best_len = best_sched.length if pruning.upper_bound else math.inf
    proven = True

    t0 = time.perf_counter()
    root = state_cls.empty(graph, system)
    # Stack of (f, state); children pushed worst-first so the best child
    # is explored first (LIFO).
    stack: list[tuple[float, PartialSchedule]] = [(0.0, root)]
    visited = SignatureSet(verify=pruning.verify_signatures)
    dup_on = use_visited and pruning.duplicate_detection

    while stack:
        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(stack) + len(visited)):
            proven = False
            break
        f, state = stack.pop()
        # Re-check against the incumbent: it may have tightened since push.
        # Drift-aware (repro.util.tolerance, shared with parallel_astar):
        # an f that ties the incumbent up to rounding cannot improve it.
        if tol.geq(f, best_len) and not state.is_complete():
            stats.pruning.upper_bound_cuts += 1
            continue

        if state.is_complete():
            stats.states_expanded += 1
            if state.makespan < best_len:
                best_len = state.makespan
                best_sched = state.to_schedule()
            continue

        stats.states_expanded += 1
        if probe is not None:
            # DFS has no cheap running proven floor; the probe's running
            # max keeps the series monotone and the final sample carries
            # the real bound.
            probe.tick(stats.states_expanded, len(stack),
                       best_sched.length, 0.0)
        children: list[tuple[float, PartialSchedule]] = []
        for child in expander.children(state, visited if dup_on else None):
            ch = cost_fn.h(child)
            cf = child.makespan + ch
            if tol.geq(cf, best_len) and not child.is_complete():
                stats.pruning.upper_bound_cuts += 1
                continue
            if child.is_complete() and tol.geq(cf, best_len):
                continue
            stats.states_generated += 1
            children.append((cf, child))
        # Best child on top of the stack.
        children.sort(key=lambda t: -t[0])
        stack.extend(children)
        if len(stack) > stats.max_open_size:
            stats.max_open_size = len(stack)

    stats.wall_seconds = time.perf_counter() - t0
    stats.cost_evaluations = cost_fn.evaluations
    if proven:
        lower = best_sched.length
    else:
        # Every subtree not on the stack was either explored to
        # completion or cut against the incumbent, so the optimum is
        # the incumbent itself or lies below some stacked state: its
        # length is at least min(min stacked f, incumbent length).
        frontier = min((f for f, _ in stack), default=math.inf)
        lower = min(frontier, best_sched.length)
    if probe is not None:
        probe.finish(stats.states_expanded, len(stack),
                     best_sched.length, lower)
    return SearchResult(
        schedule=best_sched,
        optimal=proven,
        bound=1.0 if proven else math.inf,
        stats=stats,
        algorithm="bnb" if proven else "bnb(budget)",
        lower_bound=lower,
        interrupted=None if proven else (budget.reason or "budget"),
        timeline=probe.timeline() if probe is not None else (),
    )
