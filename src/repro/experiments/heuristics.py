"""Heuristic deviation from optimal (experiment E5).

The paper's introduction motivates optimal schedulers partly as a
*reference* for measuring how far polynomial heuristics actually are
from optimal ("in the absence of optimal solutions … the average
performance deviation of these heuristics is unknown").  With the A*
engine producing optima, this driver performs that measurement for the
library's list-scheduling heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.heuristics.cpmisf import cpmisf_schedule
from repro.heuristics.insertion import insertion_list_schedule
from repro.heuristics.listsched import list_schedule
from repro.util.tables import render_table
from repro.workloads.suite import WorkloadSuite, paper_suite

__all__ = ["HeuristicRow", "HeuristicComparison", "run_heuristic_comparison"]

#: Named heuristics measured against the optimum.
HEURISTICS = {
    "list-blevel": lambda g, s: list_schedule(g, s, scheme="b-level"),
    "list-static": lambda g, s: list_schedule(g, s, scheme="static-level"),
    "list-b+t": lambda g, s: list_schedule(g, s, scheme="b+t-level"),
    "insertion": lambda g, s: insertion_list_schedule(g, s),
    "cp-misf": cpmisf_schedule,
}


@dataclass(frozen=True)
class HeuristicRow:
    """Deviation of one heuristic on one instance."""

    ccr: float
    size: int
    heuristic: str
    length: float
    optimal_length: float
    deviation_pct: float
    optimal_proven: bool


@dataclass
class HeuristicComparison:
    """All deviations plus summary rendering."""

    rows: list[HeuristicRow]

    def mean_deviation(self, heuristic: str) -> float:
        """Average % deviation of one heuristic across instances."""
        vals = [r.deviation_pct for r in self.rows if r.heuristic == heuristic]
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        """Heuristic × CCR mean-deviation summary table."""
        ccrs = sorted({r.ccr for r in self.rows})
        names = list(dict.fromkeys(r.heuristic for r in self.rows))
        rows = []
        for name in names:
            row: list[object] = [name]
            for ccr in ccrs:
                vals = [
                    r.deviation_pct
                    for r in self.rows
                    if r.heuristic == name and r.ccr == ccr
                ]
                row.append(sum(vals) / len(vals) if vals else None)
            row.append(self.mean_deviation(name))
            rows.append(row)
        return render_table(
            ["heuristic"] + [f"CCR={c}" for c in ccrs] + ["overall"],
            rows,
            title="Heuristic deviation from optimal (%, mean over sizes)",
            float_fmt="{:.2f}",
        )


def run_heuristic_comparison(
    suite: WorkloadSuite | None = None,
    config: ExperimentConfig | None = None,
    cache: OptimumCache | None = None,
) -> HeuristicComparison:
    """Measure every heuristic against the A* optimum."""
    if suite is None:
        suite = paper_suite()
    if config is None:
        config = ExperimentConfig()
    if cache is None:
        cache = OptimumCache(config=config)

    rows: list[HeuristicRow] = []
    for inst in suite:
        opt = cache.optimal_length(inst)
        proven = cache.is_proven(inst)
        for name, fn in HEURISTICS.items():
            sched = fn(inst.graph, inst.system)
            deviation = 100.0 * (sched.length - opt) / opt if opt > 0 else 0.0
            rows.append(
                HeuristicRow(
                    ccr=inst.ccr,
                    size=inst.size,
                    heuristic=name,
                    length=sched.length,
                    optimal_length=opt,
                    deviation_pct=deviation,
                    optimal_proven=proven,
                )
            )
    return HeuristicComparison(rows=rows)
